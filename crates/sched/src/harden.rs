//! The share-distance scheduler: scrub insertion between share ops.

use sca_isa::{AddrMode, Insn, InsnKind, Program, Reg};
use sca_lint::schedule::{residual_share_hazards, ShareSite};

use crate::relocate::{decode_image, rebuild};
use crate::{SchedError, SharePolicy};

/// Parameters of the share-distance scheduler.
#[derive(Clone, Debug)]
pub struct HardenConfig {
    /// Minimum number of instructions between two share-carrying
    /// instructions (per kind); scrubs are inserted to pad the gap.
    pub min_distance: usize,
    /// Reserved register holding a public value — the data side of the
    /// scrub instructions. The target program must treat it as scratch.
    pub scrub_value: Reg,
    /// Reserved register holding the address of a mapped public cell —
    /// the base of the scrub store.
    pub scrub_base: Reg,
    /// Re-scan the output with `sca-lint`'s share-distance checker and
    /// fail with [`SchedError::ResidualHazard`] if any share pair still
    /// sits closer than `min_distance` — the scheduler proves its own
    /// output clean instead of trusting the insertion scan.
    pub verify: bool,
}

impl Default for HardenConfig {
    /// The contract of `sca-aes`'s masked implementation: `r6` public
    /// zero, `r10` pointing at its SCRUB cell, distance 1 (one scrub
    /// between adjacent share ops), verification on.
    fn default() -> HardenConfig {
        HardenConfig {
            min_distance: 1,
            scrub_value: Reg::R6,
            scrub_base: Reg::R10,
            verify: true,
        }
    }
}

/// What the scheduler did to a program.
#[derive(Clone, Copy, Debug, Default)]
pub struct HardenReport {
    /// Public store+reload scrub pairs inserted between share memory
    /// operations (each pair is two instructions).
    pub mem_scrubs: usize,
    /// Public ALU scrub pairs (`nop` + multiply) inserted between share
    /// register reads (each pair is two instructions).
    pub bus_scrubs: usize,
    /// Instructions in the original image.
    pub original_insns: usize,
    /// Instructions in the hardened image.
    pub hardened_insns: usize,
}

/// A hardened program plus the insertion report.
#[derive(Clone, Debug)]
pub struct Hardened {
    /// The relocated, scrub-padded program.
    pub program: Program,
    /// Insertion statistics.
    pub report: HardenReport,
}

/// The public store+reload scrub pair: the store rewrites the shared
/// operand buses, the LSU IS/EX operand buffers, the MDR and the align
/// buffer; the reload additionally drags the public value through the
/// LSU's *write-back* path (EX/WB buffer and write-back bus), which a
/// store never touches — the path consecutive share loads recombine
/// on.
fn mem_scrub(config: &HardenConfig) -> [Insn; 2] {
    [
        Insn::strb(config.scrub_value, AddrMode::base(config.scrub_base)),
        Insn::ldrb(config.scrub_value, AddrMode::base(config.scrub_base)),
    ]
}

/// The public ALU scrub pair, built from two of the paper's own
/// microarchitectural findings used *constructively*:
///
/// * the `nop` exploits the write-back zeroing behind the paper's `†`
///   boundary leakage: as it retires it resets **both** write-back
///   buses to a public zero, whichever retire slots the neighbouring
///   share reads land in;
/// * the multiply-accumulate (`r6 = r6·r6 + r6`, identically zero for
///   the reserved public zero) is pairing-proof placement: its three
///   register reads exceed the dual-issue read-port budget (Table 1's
///   3-port limit), so the share read *after* it can never be grabbed
///   as the younger of a pair — it issues on the default pipe, whose
///   IS/EX operand buffers the multiply (which always executes on the
///   shifter/multiplier pipe 0) has just rewritten with public values.
///
/// A plain `eor` scrub, by contrast, can dual-issue *with* one of the
/// shares it is meant to separate, re-aligning the pair onto one pipe
/// back to back and creating the very recombination it should prevent.
fn bus_scrub(config: &HardenConfig) -> [Insn; 2] {
    [
        Insn::nop(),
        Insn::mla(
            config.scrub_value,
            config.scrub_value,
            config.scrub_value,
            config.scrub_value,
        ),
    ]
}

/// Whether an instruction counts toward the share-separation distance.
///
/// A branch spends its slot redirecting fetch: it refreshes neither the
/// LSU's memory-data register and align buffer (which only another
/// memory access rewrites) nor the operand buses with a public value,
/// and the instruction that *follows* it in the static stream may also
/// be entered from elsewhere — a call boundary — with no intervening
/// code at all. Counting control flow as separation is exactly the bug
/// `sca-lint` caught on the masked AES: `strb share; bx lr;
/// shiftrows: ldrb share` left the align buffer holding one share when
/// the other arrived, a first-order HD leak the shared output mask
/// cannot blind. Control flow therefore contributes zero distance.
fn counts_as_distance(insn: &Insn) -> bool {
    !matches!(insn.kind, InsnKind::Branch { .. } | InsnKind::Bx { .. })
}

/// Runs the share-distance scheduler over a code-only program.
///
/// Walks the static instruction stream; whenever two share memory
/// operations (per the policy's marked ranges) or two share register
/// reads (per its secret registers) would sit closer than
/// `config.min_distance`, public scrubs are inserted between them. The
/// rewritten program is relocated (branches, entry, symbols, source
/// lines) and remains architecturally equivalent as long as the program
/// honours the reserved-register contract.
///
/// # Errors
///
/// [`SchedError::NotCode`] for images mixing data into the code,
/// [`SchedError::BranchOutOfImage`] for branches escaping the image,
/// and re-encoding failures.
pub fn harden_program(
    program: &Program,
    policy: &SharePolicy,
    config: &HardenConfig,
) -> Result<Hardened, SchedError> {
    let insns = decode_image(program)?;
    let mut inserts: Vec<Vec<Insn>> = vec![Vec::new(); insns.len()];
    let mut report = HardenReport {
        original_insns: insns.len(),
        ..HardenReport::default()
    };

    // Distance (in output instructions) since the last share op of each
    // kind; start beyond the horizon so leading share ops get no scrubs.
    let horizon = config.min_distance + 1;
    let mut since_mem = horizon;
    let mut since_read = horizon;
    for (i, insn) in insns.iter().enumerate() {
        let addr = program.base() + 4 * i as u32;
        let share_mem = policy.is_share_mem(addr, insn);
        let share_read = policy.reads_shares_at(addr, insn);
        let mem_deficit = if share_mem {
            config.min_distance.saturating_sub(since_mem)
        } else {
            0
        };
        let read_deficit = if share_read {
            config.min_distance.saturating_sub(since_read)
        } else {
            0
        };
        let mut pad = 0usize;
        if mem_deficit > 0 {
            // A memory scrub pair rewrites the operand buses too, so it
            // can cover an outstanding bus deficit of a mem+read
            // instruction in the same padding run. Each pair counts as
            // one scrub unit but inserts two instructions (store +
            // reload), so the instruction distance it buys is doubled.
            let units = mem_deficit.max(read_deficit);
            pad = 2 * units;
            for _ in 0..units {
                inserts[i].extend(mem_scrub(config));
            }
            report.mem_scrubs += units;
        } else if read_deficit > 0 {
            pad = 2 * read_deficit;
            for _ in 0..read_deficit {
                inserts[i].extend(bus_scrub(config));
            }
            report.bus_scrubs += read_deficit;
        }
        let step = usize::from(counts_as_distance(insn));
        since_mem = if share_mem {
            0
        } else {
            (since_mem + step + pad).min(horizon)
        };
        since_read = if share_read {
            0
        } else {
            (since_read + step + pad).min(horizon)
        };
    }

    if config.verify {
        verify_output(program, policy, config, &insns, &inserts)?;
    }

    let hardened = rebuild(program, &insns, &inserts)?;
    report.hardened_insns = hardened.words().len();
    Ok(Hardened {
        program: hardened,
        report,
    })
}

/// The post-pass assertion: replay the scrub-padded stream through
/// `sca-lint`'s independent share-distance checker. Scrubs are public
/// datapath instructions (they count as separation, never as shares);
/// original instructions keep their policy classification and their
/// original addresses, so a violation is reported in terms the caller
/// can map back to source.
fn verify_output(
    program: &Program,
    policy: &SharePolicy,
    config: &HardenConfig,
    insns: &[Insn],
    inserts: &[Vec<Insn>],
) -> Result<(), SchedError> {
    let mut stream = Vec::with_capacity(insns.len());
    for (i, insn) in insns.iter().enumerate() {
        let addr = program.base() + 4 * i as u32;
        for _ in &inserts[i] {
            stream.push(ShareSite {
                addr,
                share_mem: false,
                share_read: false,
                step: true,
            });
        }
        stream.push(ShareSite {
            addr,
            share_mem: policy.is_share_mem(addr, insn),
            share_read: policy.reads_shares_at(addr, insn),
            step: counts_as_distance(insn),
        });
    }
    match residual_share_hazards(&stream, config.min_distance)
        .into_iter()
        .next()
    {
        None => Ok(()),
        Some(hazard) => Err(SchedError::ResidualHazard {
            addr_a: hazard.addr_a,
            addr_b: hazard.addr_b,
            witness: hazard.witness,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_isa::{assemble, Interp, Reg};

    /// Two back-to-back share stores get exactly one scrub between them,
    /// and the hardened program computes the same result.
    #[test]
    fn scrubs_consecutive_share_stores() {
        let src = "
start:  mov   r10, #0x200
        mov   r6, #0
        mov   r3, #0x100
copy:   strb  r0, [r3], #1
        strb  r1, [r3], #1
        bx    lr
fin:    halt
        ";
        let program = assemble(src).unwrap();
        let policy = SharePolicy::new().with_function(&program, "copy").unwrap();
        let hardened = harden_program(&program, &policy, &HardenConfig::default()).unwrap();
        assert_eq!(hardened.report.mem_scrubs, 1);
        assert_eq!(
            hardened.report.hardened_insns,
            hardened.report.original_insns + 2,
            "one scrub unit = store + reload"
        );
        for (prog, expect_scrub) in [(&program, false), (&hardened.program, true)] {
            let mut interp = Interp::new(0x1000);
            interp.load(prog).unwrap();
            interp.set_reg(Reg::R0, 0xaa);
            interp.set_reg(Reg::R1, 0xbb);
            interp.set_reg(Reg::LR, prog.symbol("fin").expect("fin label"));
            interp.run(100).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(interp.read_bytes(0x100, 2).unwrap(), &[0xaa, 0xbb]);
            if expect_scrub {
                assert_eq!(interp.read_bytes(0x200, 1).unwrap(), &[0]);
            }
        }
    }

    /// A loop back-edge lands on the scrubs inserted ahead of the loop
    /// head, so the distance guarantee holds on the looped path too:
    /// the hardened run executes one extra (scrub) instruction per
    /// loop entry, not just once.
    #[test]
    fn back_edges_execute_the_loop_head_scrubs() {
        let src = "
start:  mov   r10, #0x200
        mov   r6, #0
        mov   r3, #0x100
        mov   r0, #4
        strb  r1, [r3], #1
body:   strb  r2, [r3], #1
        subs  r0, r0, #1
        bne   body
done:   halt
        ";
        let program = assemble(src).unwrap();
        let policy = SharePolicy::new().with_range(
            program.symbol("body").unwrap() - 4,
            program.symbol("done").unwrap(),
        );
        let hardened = harden_program(&program, &policy, &HardenConfig::default()).unwrap();
        assert_eq!(hardened.report.mem_scrubs, 1, "one scrub before body");
        let run = |prog: &Program| {
            let mut interp = Interp::new(0x1000);
            interp.load(prog).unwrap();
            interp.run(10_000).unwrap()
        };
        let (base_steps, hard_steps) = (run(&program), run(&hardened.program));
        // 4 loop entries (1 fall-through + 3 taken back-edges) each
        // execute the inserted store+reload pair.
        assert_eq!(hard_steps, base_steps + 8, "scrub must run every iteration");
    }

    /// Loop branches survive relocation: a scrubbed loop body still
    /// iterates the right number of times.
    #[test]
    fn relocates_loop_branches() {
        let src = "
start:  mov   r10, #0x200
        mov   r6, #0
        mov   r3, #0x100
        mov   r0, #8
body:   strb  r1, [r3], #1
        strb  r2, [r3], #1
        add   r1, r1, #1
        add   r2, r2, #1
        subs  r0, r0, #1
        bne   body
done:   halt
        ";
        let program = assemble(src).unwrap();
        let policy = SharePolicy::new().with_range(
            program.symbol("body").unwrap(),
            program.symbol("done").unwrap(),
        );
        let hardened = harden_program(&program, &policy, &HardenConfig::default()).unwrap();
        assert!(hardened.report.mem_scrubs >= 1);
        let run = |prog: &Program| {
            let mut interp = Interp::new(0x1000);
            interp.load(prog).unwrap();
            interp.set_reg(Reg::R1, 10);
            interp.set_reg(Reg::R2, 50);
            interp.run(10_000).unwrap();
            interp.read_bytes(0x100, 16).unwrap().to_vec()
        };
        assert_eq!(run(&program), run(&hardened.program));
        // Symbols survive relocation: `body` keeps its position (nothing
        // is inserted ahead of the loop's first store), while `done`
        // moves down past the inserted scrubs.
        assert_eq!(hardened.program.symbol("body"), program.symbol("body"));
        assert_eq!(
            hardened.program.symbol("done").unwrap(),
            program.symbol("done").unwrap() + 8 * hardened.report.mem_scrubs as u32,
        );
    }

    /// Share register reads get bus scrubs.
    #[test]
    fn scrubs_share_register_reads() {
        let src = "
        nop
        eor r2, r0, r4
        eor r3, r1, r5
        nop
        halt
        ";
        let program = assemble(src).unwrap();
        let policy = SharePolicy::new().with_secret_regs([Reg::R0, Reg::R1]);
        let hardened = harden_program(&program, &policy, &HardenConfig::default()).unwrap();
        assert_eq!(hardened.report.bus_scrubs, 1);
        assert_eq!(hardened.report.mem_scrubs, 0);
    }

    /// An instruction that is both a share memory op and a share
    /// register read gets padding covering the larger of the two
    /// deficits (store scrubs rewrite the buses too).
    #[test]
    fn mixed_mem_and_read_share_takes_the_larger_deficit() {
        // The final strb is both a share memory op (mem deficit 1, one
        // eor sits between the stores) and a share register read (read
        // deficit 2, it reads r0 right after the eor did). The padding
        // must cover the larger read deficit — with store scrubs, which
        // rewrite the operand buses as well as the memory path.
        let src = "
s:      strb r5, [r3], #1
        eor  r2, r0, r4
        strb r0, [r3], #1
e:      halt
        ";
        let program = assemble(src).unwrap();
        let policy = SharePolicy::new()
            .with_span(&program, "s", "e")
            .unwrap()
            .with_secret_regs([Reg::R0]);
        let config = HardenConfig {
            min_distance: 2,
            ..HardenConfig::default()
        };
        let hardened = harden_program(&program, &policy, &config).unwrap();
        assert_eq!(hardened.report.mem_scrubs, 2, "read deficit wins");
        assert_eq!(hardened.report.bus_scrubs, 0);
    }

    /// A wider distance inserts more padding.
    #[test]
    fn distance_is_configurable() {
        let src = "
s:      strb r0, [r3], #1
        strb r1, [r3], #1
        halt
        ";
        let program = assemble(src).unwrap();
        let policy = SharePolicy::new().with_function(&program, "s").unwrap();
        let config = HardenConfig {
            min_distance: 3,
            ..HardenConfig::default()
        };
        let hardened = harden_program(&program, &policy, &config).unwrap();
        assert_eq!(hardened.report.mem_scrubs, 3);
    }

    /// Data words in the image are rejected rather than silently moved.
    #[test]
    fn data_in_image_is_rejected() {
        let program = assemble(
            "
        nop
        halt
        .word 0xffffffff
        ",
        )
        .unwrap();
        let policy = SharePolicy::new();
        match harden_program(&program, &policy, &HardenConfig::default()) {
            Err(SchedError::NotCode(8)) => {}
            other => panic!("expected NotCode(8), got {other:?}"),
        }
    }
}
