//! Relocation metadata properties of `harden_program`.
//!
//! The static linter's compiler-style spans (and the audit's source
//! attribution) depend on the scheduler carrying branches, symbols and
//! source lines across its insertions faithfully. These properties
//! exercise that contract on randomized programs: random instruction
//! mixes, a label on every body instruction, random share policies and
//! distances, and an optional counted loop whose back-edge must be
//! relocated.

use proptest::prelude::*;
use sca_isa::{Insn, InsnKind, Interp, Program, Reg};
use sca_sched::{harden_program, HardenConfig, SharePolicy};

/// One body instruction, chosen from a mix of share memory ops, plain
/// ALU traffic, and loads.
fn body_insn(selector: u8) -> &'static str {
    match selector % 6 {
        0 => "strb  r0, [r3], #1",
        1 => "strb  r1, [r3], #1",
        2 => "ldrb  r2, [r3]",
        3 => "add   r1, r1, #3",
        4 => "eor   r2, r0, r4",
        _ => "mov   r5, r2",
    }
}

/// Assembles the randomized program: a fixed prologue establishing the
/// reserved-register contract (`r6` public zero, `r10` scrub cell),
/// a labelled body, and an optional 3-iteration loop over its suffix.
/// The data buffer (0x800) and scrub cell (0xf00) sit far above the
/// largest possible hardened image — scrub insertion grows the program,
/// and a buffer that merely clears the *original* image would let the
/// stores corrupt the hardened one (self-modifying code).
fn build_program(selectors: &[u8], loop_to: Option<usize>) -> Program {
    let mut src = String::from(
        "start:  mov   r10, #0xf00\n        mov   r6, #0\n        mov   r3, #0x800\n        mov   r8, #3\n",
    );
    for (i, &s) in selectors.iter().enumerate() {
        src.push_str(&format!("l{i}:    {}\n", body_insn(s)));
    }
    if let Some(target) = loop_to {
        src.push_str(&format!(
            "        subs  r8, r8, #1\n        bne   l{target}\n"
        ));
    }
    src.push_str("done:   halt\n");
    sca_isa::assemble(&src).expect("generated program assembles")
}

fn run(program: &Program) -> (Vec<u32>, Vec<u8>) {
    let mut interp = Interp::new(0x1000);
    interp.load(program).expect("loads");
    interp.set_reg(Reg::R0, 0xa5);
    interp.set_reg(Reg::R1, 0x3c);
    interp.set_reg(Reg::R2, 0x77);
    interp.set_reg(Reg::R4, 0x0f);
    interp.run(100_000).expect("halts");
    let regs = [Reg::R0, Reg::R1, Reg::R2, Reg::R4, Reg::R5, Reg::R8]
        .iter()
        .map(|&r| interp.reg(r))
        .collect();
    (
        regs,
        interp.read_bytes(0x800, 0x100).expect("memory").to_vec(),
    )
}

/// Branch-free comparison: relocation rewrites branch offsets by
/// design, everything else must survive verbatim.
fn non_branch_kind(insn: Insn) -> Option<InsnKind> {
    (!matches!(insn.kind, InsnKind::Branch { .. })).then_some(insn.kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metadata_survives_harden_round_trips(
        selectors in prop::collection::vec(0u8..6, 1..32),
        with_loop in any::<bool>(),
        loop_frac in 0.0f64..1.0,
        range in (0usize..32, 0usize..32),
        secret_regs in any::<bool>(),
        min_distance in 1usize..4,
    ) {
        let program = build_program(
            &selectors,
            with_loop.then(|| ((selectors.len() - 1) as f64 * loop_frac) as usize),
        );
        let (lo, hi) = (range.0.min(selectors.len() - 1), range.1.min(selectors.len() - 1));
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut policy = SharePolicy::new().with_range(
            program.symbol(&format!("l{lo}")).unwrap(),
            // end-exclusive: one past the last body instruction
            program.symbol(&format!("l{hi}")).unwrap() + 4,
        );
        if secret_regs {
            policy = policy.with_secret_regs([Reg::R0]);
        }
        let config = HardenConfig { min_distance, ..HardenConfig::default() };
        let hardened = harden_program(&program, &policy, &config).expect("hardens and verifies");

        // Size bookkeeping: every scrub unit is exactly two instructions.
        prop_assert_eq!(
            hardened.report.hardened_insns,
            hardened.report.original_insns
                + 2 * (hardened.report.mem_scrubs + hardened.report.bus_scrubs),
        );

        // Symbols survive and still name the same (non-branch)
        // instruction they named before relocation.
        for (name, old_addr) in program.symbols() {
            let new_addr = hardened.program.symbol(name);
            prop_assert!(new_addr.is_some(), "symbol {} vanished", name);
            let old_insn = program.insn_at(old_addr).expect("decodes");
            let new_insn = hardened.program.insn_at(new_addr.unwrap()).expect("decodes");
            if let Some(kind) = non_branch_kind(old_insn) {
                prop_assert_eq!(kind, new_insn.kind, "symbol {} moved off its insn", name);
            }
        }

        // Source lines survive 1:1: the original (line -> insn kind)
        // pairs all reappear in the hardened image (inserted scrubs
        // carry no source lines, so the counts match exactly).
        let collect_lines = |p: &Program| {
            let mut lines: Vec<(usize, String)> = (0..p.words().len())
                .filter_map(|i| {
                    let addr = p.base() + 4 * i as u32;
                    p.source_line(addr).map(|l| {
                        (
                            l,
                            format!("{:?}", non_branch_kind(p.insn_at(addr).expect("decodes"))),
                        )
                    })
                })
                .collect();
            lines.sort();
            lines
        };
        prop_assert_eq!(collect_lines(&program), collect_lines(&hardened.program));

        // Branch relocation preserves the architecture: both programs
        // compute identical register and memory state.
        prop_assert_eq!(run(&program), run(&hardened.program));
    }
}
