//! Execution statistics: CPI and its decomposition.
//!
//! The paper's entire microarchitectural exploration (Section 3.2) rests
//! on the Clock-cycles-Per-Instruction index of crafted kernels; these
//! counters are what the measurement harness in `sca-core` consumes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Why the issue stage failed to issue (or to dual-issue) in a cycle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum StallCause {
    /// Operand not yet forwardable (read-after-write).
    RawHazard,
    /// Flags not yet available for a conditional/carry-consuming op.
    FlagsHazard,
    /// Front end had no instruction ready (refill after a branch, or an
    /// instruction-cache miss).
    Frontend,
    /// Execution resource busy or out of register-file read ports.
    Structural,
}

/// Aggregate run statistics.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ExecStats {
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// Instructions retired (including `nop`s and squashed conditionals).
    pub instructions: u64,
    /// Cycles in which two instructions were issued together.
    pub dual_issue_cycles: u64,
    /// Cycles in which exactly one instruction issued.
    pub single_issue_cycles: u64,
    /// Cycles in which nothing issued, by cause.
    pub raw_stalls: u64,
    /// See [`StallCause::FlagsHazard`].
    pub flags_stalls: u64,
    /// See [`StallCause::Frontend`].
    pub frontend_stalls: u64,
    /// See [`StallCause::Structural`].
    pub structural_stalls: u64,
    /// Taken branches (each costs a front-end refill).
    pub taken_branches: u64,
    /// Branches retired in total.
    pub branches: u64,
    /// Pairs rejected by the dual-issue policy matrix (would otherwise
    /// have been structurally legal).
    pub policy_rejections: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
}

impl ExecStats {
    /// Clock cycles per instruction.
    ///
    /// Returns infinity for an empty run, so callers notice misuse
    /// instead of dividing by zero.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Fraction of issue cycles that were dual issues.
    pub fn dual_issue_rate(&self) -> f64 {
        let issued = self.dual_issue_cycles + self.single_issue_cycles;
        if issued == 0 {
            0.0
        } else {
            self.dual_issue_cycles as f64 / issued as f64
        }
    }

    /// Records a stall.
    pub(crate) fn count_stall(&mut self, cause: StallCause) {
        match cause {
            StallCause::RawHazard => self.raw_stalls += 1,
            StallCause::FlagsHazard => self.flags_stalls += 1,
            StallCause::Frontend => self.frontend_stalls += 1,
            StallCause::Structural => self.structural_stalls += 1,
        }
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:            {}", self.cycles)?;
        writeln!(f, "instructions:      {}", self.instructions)?;
        writeln!(f, "CPI:               {:.3}", self.cpi())?;
        writeln!(
            f,
            "dual-issue cycles: {} ({:.1}%)",
            self.dual_issue_cycles,
            100.0 * self.dual_issue_rate()
        )?;
        writeln!(
            f,
            "stalls raw/flags:  {}/{}",
            self.raw_stalls, self.flags_stalls
        )?;
        writeln!(
            f,
            "stalls fe/struct:  {}/{}",
            self.frontend_stalls, self.structural_stalls
        )?;
        writeln!(
            f,
            "branches (taken):  {} ({})",
            self.branches, self.taken_branches
        )?;
        write!(
            f,
            "cache misses I/D:  {}/{}",
            self.icache_misses, self.dcache_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_computation() {
        let stats = ExecStats {
            cycles: 100,
            instructions: 200,
            ..ExecStats::default()
        };
        assert!((stats.cpi() - 0.5).abs() < 1e-12);
        let empty = ExecStats::default();
        assert!(empty.cpi().is_infinite());
    }

    #[test]
    fn dual_issue_rate() {
        let stats = ExecStats {
            dual_issue_cycles: 30,
            single_issue_cycles: 10,
            ..ExecStats::default()
        };
        assert!((stats.dual_issue_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ExecStats::default().dual_issue_rate(), 0.0);
    }

    #[test]
    fn stall_accounting() {
        let mut stats = ExecStats::default();
        stats.count_stall(StallCause::RawHazard);
        stats.count_stall(StallCause::RawHazard);
        stats.count_stall(StallCause::Frontend);
        assert_eq!(stats.raw_stalls, 2);
        assert_eq!(stats.frontend_stalls, 1);
        assert_eq!(stats.structural_stalls, 0);
    }

    #[test]
    fn display_is_complete() {
        let text = ExecStats::default().to_string();
        for needle in ["CPI", "dual-issue", "branches", "cache"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
