//! Simulated main memory.
//!
//! A flat little-endian RAM. Program images are loaded at their base
//! address; the AES harness also uses direct `poke`/`peek` accessors to
//! stage inputs and read results without running loader code.

use crate::UarchError;

/// Flat byte-addressable RAM.
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocates `size` bytes of zeroed RAM.
    pub fn new(size: u32) -> Memory {
        Memory {
            bytes: vec![0; size as usize],
        }
    }

    /// RAM size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, UarchError> {
        let end = addr.checked_add(len).ok_or(UarchError::BadAddress(addr))?;
        if end as usize > self.bytes.len() {
            return Err(UarchError::BadAddress(addr));
        }
        Ok(addr as usize)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`UarchError::BadAddress`] if out of range.
    pub fn read_u8(&self, addr: u32) -> Result<u8, UarchError> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Reads a little-endian halfword. The address is halfword-aligned by
    /// clearing bit 0 (the LSU aligns accesses; the align buffer handles
    /// extraction).
    pub fn read_u16(&self, addr: u32) -> Result<u16, UarchError> {
        let addr = addr & !1;
        let i = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Reads a little-endian word (address word-aligned by clearing the
    /// low two bits).
    pub fn read_u32(&self, addr: u32) -> Result<u32, UarchError> {
        let addr = addr & !3;
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`UarchError::BadAddress`] if out of range.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), UarchError> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = value;
        Ok(())
    }

    /// Writes a little-endian halfword (aligned).
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), UarchError> {
        let addr = addr & !1;
        let i = self.check(addr, 2)?;
        self.bytes[i..i + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian word (aligned).
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), UarchError> {
        let addr = addr & !3;
        let i = self.check(addr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), UarchError> {
        let i = self.check(addr, data.len() as u32)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], UarchError> {
        let i = self.check(addr, len)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// The aligned 32-bit word containing `addr` — what the data cache
    /// moves on every access, and therefore what the MDR holds even for
    /// sub-word operations (paper, Section 4.1).
    pub fn containing_word(&self, addr: u32) -> Result<u32, UarchError> {
        self.read_u32(addr & !3)
    }

    /// Zeroes all memory.
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut mem = Memory::new(64);
        mem.write_u32(0, 0xdead_beef).unwrap();
        assert_eq!(mem.read_u32(0).unwrap(), 0xdead_beef);
        assert_eq!(mem.read_u8(0).unwrap(), 0xef, "little endian");
        assert_eq!(mem.read_u8(3).unwrap(), 0xde);
        assert_eq!(mem.read_u16(2).unwrap(), 0xdead);
        mem.write_u8(1, 0x00).unwrap();
        assert_eq!(mem.read_u32(0).unwrap(), 0xdead_00ef);
        mem.write_u16(2, 0x1234).unwrap();
        assert_eq!(mem.read_u32(0).unwrap(), 0x1234_00ef);
    }

    #[test]
    fn alignment_is_forced() {
        let mut mem = Memory::new(64);
        mem.write_u32(0, 0x0403_0201).unwrap();
        // Unaligned word read aligns down.
        assert_eq!(mem.read_u32(2).unwrap(), 0x0403_0201);
        assert_eq!(mem.read_u16(1).unwrap(), 0x0201);
    }

    #[test]
    fn bounds_are_checked() {
        let mem = Memory::new(16);
        assert!(mem.read_u8(15).is_ok());
        assert!(mem.read_u8(16).is_err());
        assert!(mem.read_u32(13).is_ok()); // aligns down to 12
        assert!(mem.read_u32(16).is_err());
        assert!(mem.read_u32(u32::MAX).is_err());
    }

    #[test]
    fn bulk_copy() {
        let mut mem = Memory::new(32);
        mem.write_bytes(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mem.read_bytes(4, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(mem.read_u32(4).unwrap(), 0x0403_0201);
        assert!(mem.write_bytes(30, &[0; 4]).is_err());
    }

    #[test]
    fn containing_word_for_subword_addresses() {
        let mut mem = Memory::new(16);
        mem.write_u32(8, 0xaabb_ccdd).unwrap();
        for addr in 8..12 {
            assert_eq!(mem.containing_word(addr).unwrap(), 0xaabb_ccdd);
        }
    }
}
