//! Microarchitectural *nodes* — the observable buffers and buses whose
//! value transitions drive side-channel leakage.
//!
//! Section 4 of the paper models the Cortex-A7's leakage as the switching
//! activity of gates driving large capacitive loads: the register-file
//! read ports, the IS/EX inter-stage buffers, the ALU and barrel-shifter
//! output buffers, the EX/WB buffers, the write-back buses, the Memory
//! Data Register (MDR) and the LSU's sub-word *align buffer*. Each of
//! those is a [`Node`] here. Every cycle the pipeline asserts values on
//! nodes; the old/new pair is delivered to observers as a [`NodeEvent`],
//! from which the power model computes Hamming-distance/weight terms.
//!
//! Two families deserve comment, because their split is what lets the
//! model reproduce *all* of Table 2 simultaneously:
//!
//! * **Operand buses vs. IS/EX buffers.** The three shared register-read
//!   buses ([`Node::OperandBus`]) are driven by *every* issued instruction
//!   — including the `nop`, which drives zeros (it is a never-executed
//!   conditional with zero operands). The per-pipe IS/EX buffers
//!   ([`Node::IsExOp`]) latch only for instructions actually dispatched to
//!   that pipe, so a `nop` between two `mov`s leaves the pipe-0 buffer
//!   transitioning directly `rB → rD`. Together these explain the paper's
//!   observation that `mov rA, rB; nop; mov rC, rD` leaks both
//!   `HW(rB)`/`HW(rD)` *and* `rB ⊕ rD`.
//! * **EX/WB buffers vs. WB buses.** The per-pipe output buffer
//!   ([`Node::ExWbBuf`]) holds results of successive instructions executed
//!   on the same pipe (`rA ⊕ rD` leakage when single-issued), while the
//!   write-back buses ([`Node::WbBus`]) are zeroed by retiring `nop`s,
//!   producing the boundary Hamming-weight leakage the paper marks with †.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies an execution pipe for node bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum Pipe {
    /// ALU pipe 0: three stages, owns the barrel shifter and the
    /// multiplier.
    Alu0 = 0,
    /// ALU pipe 1: single-stage simple ALU.
    Alu1 = 1,
    /// Load/store unit: three stages, fully pipelined.
    Lsu = 2,
    /// Floating-point/NEON placeholder pipe (four stages, unused by the
    /// integer ISA but kept for structural fidelity with Figure 2).
    Fpu = 3,
}

impl Pipe {
    /// All pipes.
    pub const ALL: [Pipe; 4] = [Pipe::Alu0, Pipe::Alu1, Pipe::Lsu, Pipe::Fpu];

    /// Index for array storage.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Pipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pipe::Alu0 => f.write_str("ALU0"),
            Pipe::Alu1 => f.write_str("ALU1"),
            Pipe::Lsu => f.write_str("LSU"),
            Pipe::Fpu => f.write_str("FPU"),
        }
    }
}

/// A tracked microarchitectural storage/bus element.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Node {
    /// Register-file read port `0..=2`. The paper found these do **not**
    /// leak measurably (short capacitive load); the default power weight
    /// is therefore zero, but the node is still tracked so that the
    /// characterization can *test* the RF models and report them black.
    RfRead(u8),
    /// Shared RF→issue operand bus `0..=2`. Driven by every issued
    /// instruction in operand-position order; `nop`s drive zeros.
    OperandBus(u8),
    /// Per-pipe IS/EX operand buffer; `slot` 0 = first source position,
    /// 1 = second source position.
    IsExOp {
        /// Execution pipe owning the buffer.
        pipe: Pipe,
        /// Operand position (0 or 1).
        slot: u8,
    },
    /// Barrel-shifter output buffer (pipe 0 only). Zero-precharged; leaks
    /// the Hamming weight of the shifted value at roughly one tenth of the
    /// other nodes' weight (paper, Section 4.1).
    ShiftBuf,
    /// ALU result signals, zero-precharged each operation, so the
    /// transition weight equals the Hamming weight of the result.
    AluOut(Pipe),
    /// Per-pipe EX→WB output buffer, holding the last result produced by
    /// that pipe.
    ExWbBuf(Pipe),
    /// Write-back bus `0..=1` from the EX/WB buffers to the register-file
    /// write ports. Retiring `nop`s reset bus 0 to zero.
    WbBus(u8),
    /// Memory Data Register: the full 32-bit word moved to/from the data
    /// cache, even for sub-word accesses.
    Mdr,
    /// LSU sub-word alignment buffer: the extracted byte/halfword value.
    /// Exhibits data remanence across intervening word-sized accesses.
    AlignBuf,
    /// Instruction words entering the prefetch buffer (fetch-path
    /// leakage; negligible weight by default, tracked for completeness).
    FetchWord(u8),
}

impl Node {
    /// Number of distinct trackable nodes (the dense index space of
    /// [`Node::dense_index`]).
    pub const COUNT: usize = 35;

    /// Dense storage index, enumerating the node set in the same order
    /// as the derived `Ord` (the order [`NodeState::scramble`] has always
    /// walked the nodes in — the scrambled stale values each node
    /// receives are pinned by the verdict-regression tests, so this
    /// enumeration must never change).
    ///
    /// # Panics
    ///
    /// Panics for bus/port/slot indices ≥ 4 — no modeled configuration
    /// reaches them (the A7 has 3 operand buses, 2 write-back buses and
    /// fetch width 2), and silently widening the set would shift every
    /// node's scramble stream.
    #[inline(always)]
    pub fn dense_index(self) -> usize {
        #[cold]
        #[inline(never)]
        fn out_of_range() -> ! {
            panic!("node index out of the tracked set");
        }
        let sub = |i: usize, width: usize| {
            if i >= width {
                out_of_range();
            }
            i
        };
        match self {
            Node::RfRead(i) => sub(i as usize, 4),
            Node::OperandBus(i) => 4 + sub(i as usize, 4),
            Node::IsExOp { pipe, slot } => 8 + pipe.index() * 2 + sub(slot as usize, 2),
            Node::ShiftBuf => 16,
            Node::AluOut(p) => 17 + p.index(),
            Node::ExWbBuf(p) => 21 + p.index(),
            Node::WbBus(i) => 25 + sub(i as usize, 4),
            Node::Mdr => 29,
            Node::AlignBuf => 30,
            Node::FetchWord(i) => 31 + sub(i as usize, 4),
        }
    }

    /// The coarse component this node belongs to, used for weight lookup
    /// and for grouping in characterization reports (the columns of
    /// Table 2).
    pub fn kind(self) -> NodeKind {
        match self {
            Node::RfRead(_) => NodeKind::RegisterFile,
            Node::OperandBus(_) | Node::IsExOp { .. } => NodeKind::IsExBuffer,
            Node::ShiftBuf => NodeKind::ShiftBuffer,
            Node::AluOut(_) => NodeKind::Alu,
            Node::ExWbBuf(_) | Node::WbBus(_) => NodeKind::ExWbBuffer,
            Node::Mdr => NodeKind::Mdr,
            Node::AlignBuf => NodeKind::AlignBuffer,
            Node::FetchWord(_) => NodeKind::FetchPath,
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::RfRead(p) => write!(f, "RF.read{p}"),
            Node::OperandBus(b) => write!(f, "bus{b}"),
            Node::IsExOp { pipe, slot } => write!(f, "IS/EX.{pipe}.op{}", slot + 1),
            Node::ShiftBuf => f.write_str("shift.out"),
            Node::AluOut(p) => write!(f, "{p}.out"),
            Node::ExWbBuf(p) => write!(f, "EX/WB.{p}"),
            Node::WbBus(b) => write!(f, "WB.bus{b}"),
            Node::Mdr => f.write_str("MDR"),
            Node::AlignBuf => f.write_str("align"),
            Node::FetchWord(s) => write!(f, "fetch{s}"),
        }
    }
}

/// Coarse component classes, one per column of the paper's Table 2 (plus
/// the fetch path, an extension).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum NodeKind {
    /// Register-file read ports.
    RegisterFile = 0,
    /// Issue→execute operand buffers and shared operand buses.
    IsExBuffer = 1,
    /// Barrel-shifter output buffer.
    ShiftBuffer = 2,
    /// ALU output signals.
    Alu = 3,
    /// Execute→write-back buffers and write-back buses.
    ExWbBuffer = 4,
    /// Memory data register.
    Mdr = 5,
    /// Sub-word align buffer.
    AlignBuffer = 6,
    /// Instruction-fetch path.
    FetchPath = 7,
}

impl NodeKind {
    /// All kinds, in Table 2 column order.
    pub const ALL: [NodeKind; 8] = [
        NodeKind::RegisterFile,
        NodeKind::IsExBuffer,
        NodeKind::ShiftBuffer,
        NodeKind::Alu,
        NodeKind::ExWbBuffer,
        NodeKind::Mdr,
        NodeKind::AlignBuffer,
        NodeKind::FetchPath,
    ];

    /// Number of kinds.
    pub const COUNT: usize = 8;

    /// Index for array storage.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable label matching the paper's column headers.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::RegisterFile => "Register File",
            NodeKind::IsExBuffer => "Is/Ex Buffer",
            NodeKind::ShiftBuffer => "Shift Buffer",
            NodeKind::Alu => "ALU",
            NodeKind::ExWbBuffer => "Ex/Wb Buffer",
            NodeKind::Mdr => "MDR",
            NodeKind::AlignBuffer => "Align Buffer",
            NodeKind::FetchPath => "Fetch Path",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A value transition on a node at a given cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NodeEvent {
    /// Cycle at which the new value is asserted.
    pub cycle: u64,
    /// The node.
    pub node: Node,
    /// Value previously held (zero for precharged nodes).
    pub before: u32,
    /// Newly asserted value.
    pub after: u32,
}

impl NodeEvent {
    /// Hamming distance of the transition — the paper's primary leakage
    /// quantity.
    pub fn hamming_distance(&self) -> u32 {
        (self.before ^ self.after).count_ones()
    }

    /// Hamming weight of the new value.
    pub fn hamming_weight(&self) -> u32 {
        self.after.count_ones()
    }
}

/// Tracks the current value of every node and emits [`NodeEvent`]s on
/// change.
///
/// Storage is a flat array indexed by [`Node::dense_index`] — this sits
/// on the hottest path of the whole simulator (every pipeline stage
/// asserts nodes every cycle, millions of times per campaign), and the
/// dense index enumerates the node set in exactly the `Ord` order the
/// previous tree-map storage iterated in, so [`NodeState::scramble`]
/// assigns every node the same stale value it always has.
#[derive(Clone, Debug)]
pub struct NodeState {
    values: [u32; Node::COUNT],
}

impl Default for NodeState {
    fn default() -> NodeState {
        NodeState::new()
    }
}

impl NodeState {
    /// Creates an all-zero node state covering the full node set.
    ///
    /// Every possible node is pre-registered so that [`NodeState::scramble`]
    /// acts on the same set regardless of execution history — cloned CPUs
    /// and long-running CPUs must behave identically.
    pub fn new() -> NodeState {
        NodeState {
            values: [0; Node::COUNT],
        }
    }

    /// Current value of a node (zero if never asserted).
    pub fn value(&self, node: Node) -> u32 {
        self.values[node.dense_index()]
    }

    /// Asserts `value` on `node`, returning the transition event.
    ///
    /// The event is returned (not swallowed) so the caller can forward it
    /// to observers; identical-value assertions still produce an event
    /// with `before == after` (zero Hamming distance), because downstream
    /// statistics need to know the node was *driven* this cycle.
    #[inline]
    pub fn assert(&mut self, cycle: u64, node: Node, value: u32) -> NodeEvent {
        let slot = &mut self.values[node.dense_index()];
        let before = std::mem::replace(slot, value);
        NodeEvent {
            cycle,
            node,
            before,
            after: value,
        }
    }

    /// Asserts a value on a zero-precharged node: the transition is always
    /// measured from zero, and the stored value returns to zero afterwards
    /// (so the next assertion is again measured from zero).
    #[inline]
    pub fn assert_precharged(&mut self, cycle: u64, node: Node, value: u32) -> NodeEvent {
        self.values[node.dense_index()] = 0;
        NodeEvent {
            cycle,
            node,
            before: 0,
            after: value,
        }
    }

    /// Resets every node to zero (used between independent benchmark
    /// runs).
    pub fn reset(&mut self) {
        self.values = [0; Node::COUNT];
    }

    /// Scrambles every tracked node to a pseudorandom value derived from
    /// `seed` (SplitMix64 per node).
    ///
    /// Real buffers keep whatever the previous execution left in them;
    /// resetting them to zero between measured executions would fabricate
    /// Hamming-weight leakage on every first use of a node — leakage the
    /// paper does not observe. Scrambling models the "unknown stale
    /// value" state while keeping runs deterministic.
    pub fn scramble(&mut self, seed: u64) {
        for (i, value) in self.values.iter_mut().enumerate() {
            let mut z = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *value = (z ^ (z >> 31)) as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_hamming_quantities() {
        let ev = NodeEvent {
            cycle: 0,
            node: Node::Mdr,
            before: 0b1100,
            after: 0b1010,
        };
        assert_eq!(ev.hamming_distance(), 2);
        assert_eq!(ev.hamming_weight(), 2);
    }

    #[test]
    fn node_state_tracks_old_values() {
        let mut state = NodeState::new();
        let ev = state.assert(1, Node::Mdr, 0xff);
        assert_eq!(ev.before, 0);
        assert_eq!(ev.after, 0xff);
        let ev = state.assert(2, Node::Mdr, 0x0f);
        assert_eq!(ev.before, 0xff);
        assert_eq!(ev.hamming_distance(), 4);
        assert_eq!(state.value(Node::Mdr), 0x0f);
    }

    #[test]
    fn precharged_nodes_measure_from_zero() {
        let mut state = NodeState::new();
        let ev = state.assert_precharged(1, Node::AluOut(Pipe::Alu0), 0xf0);
        assert_eq!(ev.hamming_distance(), 4);
        let ev = state.assert_precharged(2, Node::AluOut(Pipe::Alu0), 0xf0);
        assert_eq!(ev.before, 0, "precharge resets between assertions");
        assert_eq!(ev.hamming_distance(), 4);
    }

    #[test]
    fn node_kinds_cover_table2_columns() {
        assert_eq!(Node::RfRead(0).kind(), NodeKind::RegisterFile);
        assert_eq!(Node::OperandBus(1).kind(), NodeKind::IsExBuffer);
        assert_eq!(
            Node::IsExOp {
                pipe: Pipe::Alu0,
                slot: 0
            }
            .kind(),
            NodeKind::IsExBuffer
        );
        assert_eq!(Node::ShiftBuf.kind(), NodeKind::ShiftBuffer);
        assert_eq!(Node::AluOut(Pipe::Alu1).kind(), NodeKind::Alu);
        assert_eq!(Node::ExWbBuf(Pipe::Lsu).kind(), NodeKind::ExWbBuffer);
        assert_eq!(Node::WbBus(0).kind(), NodeKind::ExWbBuffer);
        assert_eq!(Node::Mdr.kind(), NodeKind::Mdr);
        assert_eq!(Node::AlignBuf.kind(), NodeKind::AlignBuffer);
        assert_eq!(Node::FetchWord(0).kind(), NodeKind::FetchPath);
    }

    #[test]
    fn distinct_nodes_do_not_alias() {
        let mut state = NodeState::new();
        state.assert(0, Node::WbBus(0), 1);
        state.assert(0, Node::WbBus(1), 2);
        state.assert(
            0,
            Node::IsExOp {
                pipe: Pipe::Alu0,
                slot: 0,
            },
            3,
        );
        state.assert(
            0,
            Node::IsExOp {
                pipe: Pipe::Alu0,
                slot: 1,
            },
            4,
        );
        assert_eq!(state.value(Node::WbBus(0)), 1);
        assert_eq!(state.value(Node::WbBus(1)), 2);
        assert_eq!(
            state.value(Node::IsExOp {
                pipe: Pipe::Alu0,
                slot: 0
            }),
            3
        );
        assert_eq!(
            state.value(Node::IsExOp {
                pipe: Pipe::Alu0,
                slot: 1
            }),
            4
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut state = NodeState::new();
        state.assert(0, Node::Mdr, 0xdead);
        state.reset();
        assert_eq!(state.value(Node::Mdr), 0);
    }

    /// Every tracked node, in `Ord` order — the enumeration the scramble
    /// streams are keyed by.
    fn all_nodes_in_ord_order() -> Vec<Node> {
        let mut nodes = Vec::new();
        for i in 0..4u8 {
            nodes.push(Node::RfRead(i));
            nodes.push(Node::OperandBus(i));
            nodes.push(Node::WbBus(i));
            nodes.push(Node::FetchWord(i));
        }
        for pipe in Pipe::ALL {
            for slot in 0..2u8 {
                nodes.push(Node::IsExOp { pipe, slot });
            }
            nodes.push(Node::AluOut(pipe));
            nodes.push(Node::ExWbBuf(pipe));
        }
        nodes.push(Node::ShiftBuf);
        nodes.push(Node::Mdr);
        nodes.push(Node::AlignBuf);
        nodes.sort();
        nodes
    }

    /// The dense index must enumerate nodes in exactly the derived-`Ord`
    /// order the old tree-map storage iterated in: the per-node scramble
    /// stream is `SplitMix64(seed, enumeration index)`, and the stale
    /// values it produces are baked into every pinned verdict.
    #[test]
    fn dense_index_matches_ord_enumeration() {
        let nodes = all_nodes_in_ord_order();
        assert_eq!(nodes.len(), Node::COUNT);
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.dense_index(), i, "{node}");
        }
    }

    #[test]
    fn scramble_streams_are_keyed_by_ord_position() {
        let mut state = NodeState::new();
        state.scramble(0xfeed);
        let splitmix = |seed: u64, i: u64| {
            let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as u32
        };
        for (i, node) in all_nodes_in_ord_order().into_iter().enumerate() {
            assert_eq!(state.value(node), splitmix(0xfeed, i as u64), "{node}");
        }
    }
}
