//! Observer hooks into the pipeline.
//!
//! The simulator is leakage-model-agnostic: it reports raw node
//! transitions, trigger edges and retirements, and observers (the power
//! synthesizer in `sca-power`, the audit tool in `sca-core`, or plain
//! tests) turn those into traces, reports or assertions.

use sca_isa::Insn;

use crate::NodeEvent;

/// Receives microarchitectural activity from the CPU, cycle by cycle.
///
/// All methods have empty default bodies so observers implement only what
/// they need.
pub trait PipelineObserver {
    /// Called once at the start of every simulated cycle.
    fn begin_cycle(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// A value was asserted on a tracked node.
    fn node_event(&mut self, event: NodeEvent) {
        let _ = event;
    }

    /// The GPIO trigger pin changed level (measurement window marker).
    fn trigger(&mut self, cycle: u64, high: bool) {
        let _ = (cycle, high);
    }

    /// An instruction retired.
    fn retire(&mut self, cycle: u64, addr: u32, insn: Insn) {
        let _ = (cycle, addr, insn);
    }
}

/// A no-op observer for runs where only architectural results matter.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl PipelineObserver for NullObserver {}

/// Records every node event (and trigger edge), for tests and audits.
#[derive(Clone, Debug, Default)]
pub struct RecordingObserver {
    /// All node events in emission order.
    pub events: Vec<NodeEvent>,
    /// `(cycle, level)` trigger edges.
    pub triggers: Vec<(u64, bool)>,
    /// `(cycle, addr)` retirements.
    pub retirements: Vec<(u64, u32)>,
}

impl RecordingObserver {
    /// Creates an empty recorder.
    pub fn new() -> RecordingObserver {
        RecordingObserver::default()
    }

    /// Events on a specific node, in order.
    pub fn events_on(&self, node: crate::Node) -> Vec<NodeEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.node == node)
            .collect()
    }

    /// Events within the window delimited by the first rising and the
    /// first subsequent falling trigger edge.
    pub fn events_in_trigger_window(&self) -> Vec<NodeEvent> {
        let Some(start) = self
            .triggers
            .iter()
            .find(|(_, high)| *high)
            .map(|(c, _)| *c)
        else {
            return Vec::new();
        };
        let end = self
            .triggers
            .iter()
            .find(|(c, high)| !*high && *c >= start)
            .map_or(u64::MAX, |(c, _)| *c);
        self.events
            .iter()
            .copied()
            .filter(|e| e.cycle >= start && e.cycle <= end)
            .collect()
    }
}

impl PipelineObserver for RecordingObserver {
    fn node_event(&mut self, event: NodeEvent) {
        self.events.push(event);
    }

    fn trigger(&mut self, cycle: u64, high: bool) {
        self.triggers.push((cycle, high));
    }

    fn retire(&mut self, cycle: u64, addr: u32, _insn: Insn) {
        self.retirements.push((cycle, addr));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, NodeEvent};

    #[test]
    fn recording_observer_filters_by_node() {
        let mut obs = RecordingObserver::new();
        obs.node_event(NodeEvent {
            cycle: 0,
            node: Node::Mdr,
            before: 0,
            after: 1,
        });
        obs.node_event(NodeEvent {
            cycle: 1,
            node: Node::AlignBuf,
            before: 0,
            after: 2,
        });
        obs.node_event(NodeEvent {
            cycle: 2,
            node: Node::Mdr,
            before: 1,
            after: 3,
        });
        assert_eq!(obs.events_on(Node::Mdr).len(), 2);
        assert_eq!(obs.events_on(Node::AlignBuf).len(), 1);
        assert_eq!(obs.events_on(Node::ShiftBuf).len(), 0);
    }

    #[test]
    fn trigger_window_selects_inner_events() {
        let mut obs = RecordingObserver::new();
        obs.node_event(NodeEvent {
            cycle: 0,
            node: Node::Mdr,
            before: 0,
            after: 1,
        });
        obs.trigger(1, true);
        obs.node_event(NodeEvent {
            cycle: 2,
            node: Node::Mdr,
            before: 1,
            after: 2,
        });
        obs.trigger(3, false);
        obs.node_event(NodeEvent {
            cycle: 4,
            node: Node::Mdr,
            before: 2,
            after: 3,
        });
        let window = obs.events_in_trigger_window();
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].cycle, 2);
    }

    #[test]
    fn no_trigger_means_empty_window() {
        let obs = RecordingObserver::new();
        assert!(obs.events_in_trigger_window().is_empty());
    }
}
