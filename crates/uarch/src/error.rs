//! Simulator error type.

use std::error::Error;
use std::fmt;

/// Errors surfaced while running a program on the simulated CPU.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum UarchError {
    /// Memory access outside the simulated RAM.
    BadAddress(u32),
    /// The program counter left the loaded image or pointed at data that
    /// does not decode.
    BadInstruction {
        /// Faulting address.
        addr: u32,
        /// Offending word, if readable.
        word: Option<u32>,
    },
    /// The run exceeded the configured cycle budget without halting.
    CycleBudgetExceeded(u64),
    /// Program image does not fit in the configured RAM.
    ImageTooLarge {
        /// Image end address.
        end: u32,
        /// RAM size.
        mem_size: u32,
    },
}

impl fmt::Display for UarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UarchError::BadAddress(addr) => write!(f, "memory access at 0x{addr:08x} out of range"),
            UarchError::BadInstruction {
                addr,
                word: Some(w),
            } => {
                write!(f, "invalid instruction 0x{w:08x} at 0x{addr:08x}")
            }
            UarchError::BadInstruction { addr, word: None } => {
                write!(f, "instruction fetch from unmapped address 0x{addr:08x}")
            }
            UarchError::CycleBudgetExceeded(limit) => {
                write!(f, "no halt within {limit} cycles")
            }
            UarchError::ImageTooLarge { end, mem_size } => {
                write!(
                    f,
                    "program image ends at 0x{end:08x} but RAM is {mem_size} bytes"
                )
            }
        }
    }
}

impl Error for UarchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(UarchError::BadAddress(0x100)
            .to_string()
            .contains("0x00000100"));
        assert!(UarchError::CycleBudgetExceeded(5).to_string().contains('5'));
        let e = UarchError::BadInstruction {
            addr: 4,
            word: Some(0xffff_ffff),
        };
        assert!(e.to_string().contains("0xffffffff"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UarchError>();
    }
}
