//! Simulator configuration.
//!
//! Every microarchitectural feature whose side-channel impact the paper
//! discusses is a knob here, so the benches can run ablations: dual-issue
//! on/off, the `nop` write-back-zeroing behaviour, the align buffer's
//! presence, port counts, unit latencies and cache geometry.

use serde::{Deserialize, Serialize};

use crate::DualIssuePolicy;

/// Geometry and timing of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u32,
    /// Associativity (ways).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_size: u32,
    /// Extra cycles added by a miss at this level.
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// 32 KiB, 4-way, 32-byte lines — the Cortex-A7 L1 geometry.
    pub fn l1_cortex_a7() -> CacheConfig {
        CacheConfig {
            capacity: 32 * 1024,
            ways: 4,
            line_size: 32,
            miss_penalty: 10,
        }
    }

    /// 512 KiB, 8-way, 64-byte lines — the Allwinner A20's shared L2.
    pub fn l2_allwinner_a20() -> CacheConfig {
        CacheConfig {
            capacity: 512 * 1024,
            ways: 8,
            line_size: 64,
            miss_penalty: 40,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        (self.capacity / self.line_size / self.ways).max(1)
    }
}

/// Full microarchitecture configuration.
///
/// Use [`UarchConfig::cortex_a7`] for the paper's characterized core, or
/// start from it and toggle features for ablations:
///
/// ```
/// use sca_uarch::UarchConfig;
///
/// let mut config = UarchConfig::cortex_a7();
/// config.dual_issue = false; // what if the core were scalar?
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct UarchConfig {
    /// Whether the issue stage may issue two instructions per cycle.
    pub dual_issue: bool,
    /// Class-pair policy consulted when `dual_issue` is on.
    pub policy: DualIssuePolicy,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Cycles an instruction spends in the front end (fetch2 + decode)
    /// before becoming issueable; also the taken-branch refill penalty.
    pub frontend_latency: u64,
    /// Prefetch/decode queue capacity in instructions.
    pub frontend_capacity: usize,
    /// Register-file read ports available per cycle.
    pub rf_read_ports: usize,
    /// Register-file write ports (results retiring per cycle).
    pub retire_width: usize,
    /// Issue→forward latency of a simple ALU operation.
    pub alu_latency: u64,
    /// Issue→forward latency of a shifted-operand (barrel shifter) op.
    pub shift_latency: u64,
    /// Issue→forward latency of a multiply.
    pub mul_latency: u64,
    /// Issue→forward latency of a load hitting the L1.
    pub load_latency: u64,
    /// Whether results forward from execute outputs to issue; when off,
    /// consumers wait for write-back (+2 cycles).
    pub forwarding: bool,
    /// Whether a retiring `nop` drives zero onto write-back bus 0
    /// (the behaviour behind the paper's † boundary leakage).
    pub nop_zeroes_wb: bool,
    /// Whether `nop`s drive their zero-valued operands onto the shared
    /// operand buses (the never-executed-conditional implementation).
    pub nop_drives_operand_buses: bool,
    /// Whether the LSU has a sub-word align buffer (with data remanence).
    pub align_buffer: bool,
    /// L1 instruction cache; `None` = ideal (always hit).
    pub icache: Option<CacheConfig>,
    /// L1 data cache; `None` = ideal.
    pub dcache: Option<CacheConfig>,
    /// Unified L2 behind both L1s; `None` = misses go straight to memory.
    pub l2: Option<CacheConfig>,
    /// Main-memory access latency in cycles (applied on last-level miss).
    pub memory_latency: u64,
    /// Simulated RAM size in bytes.
    pub mem_size: u32,
    /// Safety valve: abort after this many cycles without a `halt`.
    pub max_cycles: u64,
}

impl UarchConfig {
    /// The ARM Cortex-A7 MPCore as characterized in the paper: in-order,
    /// partial dual-issue per Table 1, 8-stage pipeline, two asymmetric
    /// ALUs, pipelined 3-stage LSU and multiplier, 3 RF read ports and 2
    /// write ports, leaky `nop` implementation.
    pub fn cortex_a7() -> UarchConfig {
        UarchConfig {
            dual_issue: true,
            policy: DualIssuePolicy::cortex_a7(),
            fetch_width: 2,
            frontend_latency: 2,
            frontend_capacity: 8,
            rf_read_ports: 3,
            retire_width: 2,
            alu_latency: 1,
            shift_latency: 2,
            mul_latency: 3,
            load_latency: 3,
            forwarding: true,
            nop_zeroes_wb: true,
            nop_drives_operand_buses: true,
            align_buffer: true,
            icache: Some(CacheConfig::l1_cortex_a7()),
            dcache: Some(CacheConfig::l1_cortex_a7()),
            l2: Some(CacheConfig::l2_allwinner_a20()),
            memory_latency: 60,
            mem_size: 1 << 20,
            max_cycles: 200_000_000,
        }
    }

    /// A single-issue variant of the same core — the "scalar
    /// microcontroller" end of the spectrum the paper's introduction
    /// contrasts against (e.g. a Cortex-M class device).
    pub fn scalar() -> UarchConfig {
        UarchConfig {
            dual_issue: false,
            policy: DualIssuePolicy::single_issue(),
            ..UarchConfig::cortex_a7()
        }
    }

    /// An idealized memory system (all cache accesses hit), giving fully
    /// deterministic timing. The paper approximates this by warming the
    /// caches and measuring steady state; tests use it for exact CPI
    /// assertions.
    pub fn with_ideal_memory(mut self) -> UarchConfig {
        self.icache = None;
        self.dcache = None;
        self.l2 = None;
        self
    }

    /// Effective number of read buses between RF and issue stage — the
    /// paper deduces three on the A7.
    pub fn operand_buses(&self) -> usize {
        self.rf_read_ports
    }
}

impl Default for UarchConfig {
    fn default() -> UarchConfig {
        UarchConfig::cortex_a7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cortex_a7_matches_paper_deductions() {
        let c = UarchConfig::cortex_a7();
        assert!(c.dual_issue);
        assert_eq!(c.rf_read_ports, 3, "three RF→EX buses (Section 3.2)");
        assert_eq!(c.retire_width, 2, "two write-back buses (Section 3.2)");
        assert_eq!(c.fetch_width, 2, "fetch sustains CPI 0.5");
        assert!(c.nop_zeroes_wb);
        assert!(c.align_buffer);
        assert_eq!(c.mul_latency, 3);
        assert_eq!(c.load_latency, 3);
    }

    #[test]
    fn scalar_disables_pairing() {
        let c = UarchConfig::scalar();
        assert!(!c.dual_issue);
        assert_eq!(c.policy, DualIssuePolicy::single_issue());
    }

    #[test]
    fn cache_geometry() {
        let l1 = CacheConfig::l1_cortex_a7();
        assert_eq!(l1.sets(), 256);
        let l2 = CacheConfig::l2_allwinner_a20();
        assert_eq!(l2.sets(), 1024);
    }

    #[test]
    fn ideal_memory_clears_caches() {
        let c = UarchConfig::cortex_a7().with_ideal_memory();
        assert!(c.icache.is_none() && c.dcache.is_none() && c.l2.is_none());
    }
}
