//! The dual-issue pairing policy (Table 1 of the paper).
//!
//! The Cortex-A7 is *partial* dual-issue: only certain (older, younger)
//! instruction-class pairs may issue in the same cycle, and the measured
//! matrix contains quirks that pure structural reasoning would not predict
//! (e.g. `mov` followed by `ld/st` is never paired although register-file
//! ports would allow it, and `nop`s are never dual-issued at all). The
//! policy is therefore data: a class-pair matrix, with the measured A7
//! matrix as the default. Structural hazards (register-file ports, RAW
//! dependences, single shifter/multiplier/LSU) are checked separately by
//! the issue stage — the policy expresses only what the issue logic is
//! *willing* to pair.

use serde::{Deserialize, Serialize};

use sca_isa::InsnClass;

/// Which (older, younger) instruction-class pairs the issue unit may
/// dual-issue.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DualIssuePolicy {
    /// `matrix[older][younger]`.
    matrix: [[bool; InsnClass::COUNT]; InsnClass::COUNT],
}

impl DualIssuePolicy {
    /// A policy that never pairs anything (a scalar core).
    pub fn single_issue() -> DualIssuePolicy {
        DualIssuePolicy {
            matrix: [[false; InsnClass::COUNT]; InsnClass::COUNT],
        }
    }

    /// A policy that pairs everything except `nop`/system ops, leaving
    /// legality entirely to structural checks. Useful for what-if studies
    /// of more aggressive front ends.
    pub fn structural_only() -> DualIssuePolicy {
        let mut policy = DualIssuePolicy::single_issue();
        for older in InsnClass::TABLE1 {
            for younger in InsnClass::TABLE1 {
                policy.matrix[older.index()][younger.index()] = true;
            }
        }
        policy
    }

    /// The measured ARM Cortex-A7 policy — Table 1 of the paper, verbatim.
    ///
    /// Rows are the older instruction, columns the younger:
    ///
    /// | older ↓ / younger → | mov | ALU | ALU imm | mul | shifts | branch | ld/st |
    /// |---|---|---|---|---|---|---|---|
    /// | mov     | ✓ | ✓ | ✓ | ✗ | ✓ | ✓ | ✗ |
    /// | ALU     | ✓ | ✗ | ✓ | ✗ | ✗ | ✓ | ✗ |
    /// | ALU imm | ✓ | ✓ | ✓ | ✗ | ✓ | ✓ | ✓ |
    /// | branch  | ✓ | ✓ | ✓ | ✓ | ✓ | ✗ | ✓ |
    /// | ld/st   | ✓ | ✗ | ✓ | ✗ | ✗ | ✓ | ✗ |
    /// | mul     | ✗ | ✗ | ✗ | ✗ | ✗ | ✓ | ✗ |
    /// | shifts  | ✗ | ✗ | ✓ | ✗ | ✗ | ✓ | ✗ |
    ///
    /// `nop` is never dual-issued ("albeit counter-intuitively", Section
    /// 3.2).
    pub fn cortex_a7() -> DualIssuePolicy {
        use InsnClass::*;
        let mut policy = DualIssuePolicy::single_issue();
        let rows: [(InsnClass, [(InsnClass, bool); 7]); 7] = [
            (
                Mov,
                [
                    (Mov, true),
                    (Alu, true),
                    (AluImm, true),
                    (Mul, false),
                    (Shift, true),
                    (Branch, true),
                    (LdSt, false),
                ],
            ),
            (
                Alu,
                [
                    (Mov, true),
                    (Alu, false),
                    (AluImm, true),
                    (Mul, false),
                    (Shift, false),
                    (Branch, true),
                    (LdSt, false),
                ],
            ),
            (
                AluImm,
                [
                    (Mov, true),
                    (Alu, true),
                    (AluImm, true),
                    (Mul, false),
                    (Shift, true),
                    (Branch, true),
                    (LdSt, true),
                ],
            ),
            (
                Branch,
                [
                    (Mov, true),
                    (Alu, true),
                    (AluImm, true),
                    (Mul, true),
                    (Shift, true),
                    (Branch, false),
                    (LdSt, true),
                ],
            ),
            (
                LdSt,
                [
                    (Mov, true),
                    (Alu, false),
                    (AluImm, true),
                    (Mul, false),
                    (Shift, false),
                    (Branch, true),
                    (LdSt, false),
                ],
            ),
            (
                Mul,
                [
                    (Mov, false),
                    (Alu, false),
                    (AluImm, false),
                    (Mul, false),
                    (Shift, false),
                    (Branch, true),
                    (LdSt, false),
                ],
            ),
            (
                Shift,
                [
                    (Mov, false),
                    (Alu, false),
                    (AluImm, true),
                    (Mul, false),
                    (Shift, false),
                    (Branch, true),
                    (LdSt, false),
                ],
            ),
        ];
        for (older, cols) in rows {
            for (younger, allowed) in cols {
                policy.matrix[older.index()][younger.index()] = allowed;
            }
        }
        policy
    }

    /// Whether the policy permits pairing `older` with `younger`.
    pub fn allows(&self, older: InsnClass, younger: InsnClass) -> bool {
        self.matrix[older.index()][younger.index()]
    }

    /// Enables or disables one pair — for ablation experiments.
    pub fn set(&mut self, older: InsnClass, younger: InsnClass, allowed: bool) {
        self.matrix[older.index()][younger.index()] = allowed;
    }
}

impl Default for DualIssuePolicy {
    fn default() -> DualIssuePolicy {
        DualIssuePolicy::cortex_a7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use InsnClass::*;

    #[test]
    fn table1_spot_checks() {
        let p = DualIssuePolicy::cortex_a7();
        // Hazard-free movs sustain CPI 0.5 (Section 3.2).
        assert!(p.allows(Mov, Mov));
        // Two register-register ALU ops never pair (only 3 read ports).
        assert!(!p.allows(Alu, Alu));
        // One immediate operand makes the pair legal, in either order.
        assert!(p.allows(Alu, AluImm));
        assert!(p.allows(AluImm, Alu));
        // Quirk: mov then ld/st does not pair, but ALU-imm then ld/st does.
        assert!(!p.allows(Mov, LdSt));
        assert!(p.allows(AluImm, LdSt));
        // mul pairs with nothing except a following branch.
        for younger in InsnClass::TABLE1 {
            assert_eq!(p.allows(Mul, younger), younger == Branch, "mul+{younger}");
        }
        // shifts and muls never dual-issue with computational instructions
        // (single shifter/multiplier on ALU pipe 0).
        assert!(!p.allows(Shift, Mov));
        assert!(!p.allows(Alu, Shift));
        assert!(!p.allows(Shift, Shift));
        // Branches pair broadly but not with each other.
        assert!(!p.allows(Branch, Branch));
        assert!(p.allows(Branch, Mul));
        // ld/st mirror ALU pairing on the younger side.
        assert!(p.allows(LdSt, Mov));
        assert!(!p.allows(LdSt, LdSt));
    }

    #[test]
    fn nop_never_pairs() {
        let p = DualIssuePolicy::cortex_a7();
        for other in InsnClass::TABLE1 {
            assert!(!p.allows(Nop, other));
            assert!(!p.allows(other, Nop));
        }
        assert!(!p.allows(Nop, Nop));
    }

    #[test]
    fn single_issue_pairs_nothing() {
        let p = DualIssuePolicy::single_issue();
        for a in InsnClass::TABLE1 {
            for b in InsnClass::TABLE1 {
                assert!(!p.allows(a, b));
            }
        }
    }

    #[test]
    fn structural_only_pairs_all_table1_classes() {
        let p = DualIssuePolicy::structural_only();
        for a in InsnClass::TABLE1 {
            for b in InsnClass::TABLE1 {
                assert!(p.allows(a, b));
            }
        }
        assert!(!p.allows(Nop, Mov));
        assert!(!p.allows(System, Mov));
    }

    #[test]
    fn set_overrides_single_pair() {
        let mut p = DualIssuePolicy::cortex_a7();
        assert!(!p.allows(Alu, Alu));
        p.set(Alu, Alu, true);
        assert!(p.allows(Alu, Alu));
        p.set(Alu, Alu, false);
        assert!(!p.allows(Alu, Alu));
    }

    #[test]
    fn row_column_asymmetry_is_preserved() {
        // The measured matrix is not symmetric; make sure we did not
        // accidentally symmetrize it.
        let p = DualIssuePolicy::cortex_a7();
        assert!(p.allows(Mov, Shift));
        assert!(!p.allows(Shift, Mov));
        assert!(p.allows(Branch, LdSt));
        assert!(p.allows(LdSt, Branch));
        assert!(p.allows(Branch, Mul));
        assert!(!p.allows(Mul, Mov));
    }
}
