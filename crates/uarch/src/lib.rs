//! # sca-uarch — cycle-level superscalar CPU simulator
//!
//! A Cortex-A7-like, in-order, partial dual-issue CPU model built for
//! *side-channel* evaluation rather than performance studies: alongside
//! architectural execution it tracks every pipeline buffer the paper
//! identifies as a leakage source (IS/EX operand buffers, shared operand
//! buses, ALU and shifter outputs, EX/WB buffers, write-back buses, MDR,
//! sub-word align buffer) and streams their value transitions to
//! [`PipelineObserver`]s.
//!
//! The microarchitecture follows Figure 2 of Barenghi & Pelosi (DAC 2018):
//! dual fetch with a prefetch buffer, three register-file read ports and
//! two write ports, two asymmetric ALUs (only pipe 0 has the barrel
//! shifter and the pipelined multiplier), a three-stage pipelined LSU with
//! address generation in the issue stage, and the measured Table 1 pairing
//! policy ([`DualIssuePolicy::cortex_a7`]).
//!
//! ```
//! use sca_isa::assemble;
//! use sca_uarch::{Cpu, RecordingObserver, UarchConfig, Node};
//!
//! let program = assemble("
//!     mov r0, #0xff
//!     mov r1, r0
//!     halt
//! ")?;
//! let mut cpu = Cpu::new(UarchConfig::cortex_a7());
//! cpu.load(&program)?;
//! let mut observer = RecordingObserver::new();
//! cpu.run(&mut observer)?;
//! // The register mov drove its operand onto shared bus 0.
//! assert!(!observer.events_on(Node::OperandBus(0)).is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod cache;
mod config;
mod cpu;
mod error;
mod mem;
mod nodes;
mod observer;
mod policy;
mod stats;

pub use block::{BlockObserver, CpuBlock, Divergence, MAX_LANES};
pub use cache::{Cache, CacheAccess, CacheCounts, CacheHierarchy};
pub use config::{CacheConfig, UarchConfig};
pub use cpu::Cpu;
pub use error::UarchError;
pub use mem::Memory;
pub use nodes::{Node, NodeEvent, NodeKind, NodeState, Pipe};
pub use observer::{NullObserver, PipelineObserver, RecordingObserver};
pub use policy::DualIssuePolicy;
pub use stats::{ExecStats, StallCause};
