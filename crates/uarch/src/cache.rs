//! Set-associative cache model with true-LRU replacement.
//!
//! The Allwinner A20 carries two cache levels; the paper warms them by
//! looping the benchmark so that measured executions run from a steady
//! state. This model reproduces that behaviour: cold runs incur miss
//! penalties, warmed runs are deterministic hits.

use serde::{Deserialize, Serialize};

use crate::CacheConfig;

/// Result of one cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Extra latency contributed by this level (0 on hit).
    pub penalty: u64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct CacheSet {
    /// Tags of resident lines, most recently used first.
    lines: Vec<u32>,
}

/// One level of set-associative cache.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<CacheSet>,
    hits: u64,
    misses: u64,
    /// Cached geometry: `config.sets()`, so the per-access address split
    /// does not re-derive it (two divisions) on the hot path.
    set_count: u32,
    /// `log2(line_size)` when the line size is a power of two.
    line_shift: Option<u32>,
    /// `log2(set_count)` when the set count is a power of two.
    set_shift: Option<u32>,
}

impl Cache {
    /// Builds an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = (0..config.sets())
            .map(|_| CacheSet {
                lines: Vec::with_capacity(config.ways as usize),
            })
            .collect();
        let set_count = config.sets();
        Cache {
            sets,
            hits: 0,
            misses: 0,
            set_count,
            line_shift: config
                .line_size
                .is_power_of_two()
                .then(|| config.line_size.trailing_zeros()),
            set_shift: set_count
                .is_power_of_two()
                .then(|| set_count.trailing_zeros()),
            config,
        }
    }

    #[inline]
    fn index_and_tag(&self, addr: u32) -> (usize, u32) {
        // All modeled geometries are powers of two, turning the address
        // split into shifts/masks; odd geometries fall back to division.
        let line = match self.line_shift {
            Some(shift) => addr >> shift,
            None => addr / self.config.line_size,
        };
        match self.set_shift {
            Some(shift) => ((line & (self.set_count - 1)) as usize, line >> shift),
            None => ((line % self.set_count) as usize, line / self.set_count),
        }
    }

    /// Performs an access, updating LRU state and allocating on miss.
    pub fn access(&mut self, addr: u32) -> CacheAccess {
        let ways = self.config.ways as usize;
        let (index, tag) = self.index_and_tag(addr);
        let set = &mut self.sets[index];
        if let Some(pos) = set.lines.iter().position(|&t| t == tag) {
            // Hot path: sequential code and warm data hit the MRU line
            // almost every access, so only rotate when the hit is not
            // already at the front.
            if pos != 0 {
                set.lines[..=pos].rotate_right(1);
            }
            self.hits += 1;
            CacheAccess {
                hit: true,
                penalty: 0,
            }
        } else {
            set.lines.insert(0, tag);
            set.lines.truncate(ways);
            self.misses += 1;
            CacheAccess {
                hit: false,
                penalty: self.config.miss_penalty,
            }
        }
    }

    /// Checks residency without touching LRU state or counters.
    pub fn probe(&self, addr: u32) -> bool {
        let (index, tag) = self.index_and_tag(addr);
        self.sets[index].lines.contains(&tag)
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all lines but keeps counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.lines.clear();
        }
    }

    /// Returns `(hits, misses)` accumulated since the last drain and
    /// zeroes both counters. Line state is untouched, so draining never
    /// perturbs timing — it only re-bases the counts, which is how the
    /// campaign arena discards the warm-up accesses inherited by each
    /// worker's template clone before attributing counts to traces.
    pub fn drain_counts(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.hits),
            std::mem::take(&mut self.misses),
        )
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

/// The two-level cache hierarchy in front of main memory.
#[derive(Clone, Debug, Default)]
pub struct CacheHierarchy {
    /// L1 (instruction or data, one instance each).
    pub l1: Option<Cache>,
    /// Shared L2 (the same instance is referenced from the I and D sides
    /// in `Cpu`, approximated here as private halves; the Allwinner A20's
    /// L2 is large enough that partitioning does not change benchmark
    /// behaviour).
    pub l2: Option<Cache>,
    /// Memory latency applied when the last level misses.
    pub memory_latency: u64,
}

impl CacheHierarchy {
    /// Builds a hierarchy from optional level configs.
    pub fn new(
        l1: Option<CacheConfig>,
        l2: Option<CacheConfig>,
        memory_latency: u64,
    ) -> CacheHierarchy {
        CacheHierarchy {
            l1: l1.map(Cache::new),
            l2: l2.map(Cache::new),
            memory_latency,
        }
    }

    /// Total extra latency for an access at `addr` (0 when everything
    /// hits or no caches are configured — the ideal-memory case).
    pub fn access(&mut self, addr: u32) -> u64 {
        let Some(l1) = &mut self.l1 else { return 0 };
        let a1 = l1.access(addr);
        if a1.hit {
            return 0;
        }
        let mut penalty = a1.penalty;
        match &mut self.l2 {
            Some(l2) => {
                let a2 = l2.access(addr);
                if !a2.hit {
                    penalty += a2.penalty + self.memory_latency;
                }
            }
            None => penalty += self.memory_latency,
        }
        penalty
    }

    /// Invalidates every level.
    pub fn flush(&mut self) {
        if let Some(l1) = &mut self.l1 {
            l1.flush();
        }
        if let Some(l2) = &mut self.l2 {
            l2.flush();
        }
    }

    /// Drains both levels' counters: `((l1_hits, l1_misses),
    /// (l2_hits, l2_misses))`, zeros when a level is absent.
    pub fn drain_counts(&mut self) -> ((u64, u64), (u64, u64)) {
        (
            self.l1.as_mut().map_or((0, 0), Cache::drain_counts),
            self.l2.as_mut().map_or((0, 0), Cache::drain_counts),
        )
    }
}

/// Hit/miss counts across a CPU's cache instances, drained by
/// [`crate::Cpu::drain_cache_counts`]. The I- and D-side L2 halves (see
/// [`CacheHierarchy::l2`]) are summed into one L2 figure.
///
/// These are *work* counts: for a warmed, constant-address-trace
/// workload they are a pure function of the instruction stream, so the
/// campaign telemetry asserts they are byte-identical across thread and
/// lane counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// L1 instruction-cache hits.
    pub l1i_hits: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache hits.
    pub l1d_hits: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L2 hits (I- and D-side halves summed).
    pub l2_hits: u64,
    /// L2 misses (I- and D-side halves summed).
    pub l2_misses: u64,
}

impl CacheCounts {
    /// Folds `other` into `self`.
    pub fn accumulate(&mut self, other: &CacheCounts) {
        self.l1i_hits += other.l1i_hits;
        self.l1i_misses += other.l1i_misses;
        self.l1d_hits += other.l1d_hits;
        self.l1d_misses += other.l1d_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
    }

    /// Whether every count is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == CacheCounts::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        // 4 sets x 2 ways x 16-byte lines = 128 bytes.
        CacheConfig {
            capacity: 128,
            ways: 2,
            line_size: 16,
            miss_penalty: 10,
        }
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut cache = Cache::new(tiny());
        assert!(!cache.access(0x40).hit);
        assert!(cache.access(0x40).hit);
        assert!(cache.access(0x4c).hit, "same line");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache = Cache::new(tiny());
        // Set 0 holds lines whose (addr/16) % 4 == 0: 0x000, 0x040, 0x080...
        cache.access(0x000);
        cache.access(0x040);
        // Touch 0x000 so 0x040 becomes LRU.
        cache.access(0x000);
        // Third distinct line in the set evicts 0x040.
        cache.access(0x080);
        assert!(cache.probe(0x000));
        assert!(!cache.probe(0x040));
        assert!(cache.probe(0x080));
    }

    #[test]
    fn warming_makes_runs_deterministic() {
        let mut cache = Cache::new(tiny());
        let addrs = [0x00u32, 0x10, 0x20, 0x30];
        for &a in &addrs {
            cache.access(a);
        }
        let misses_after_warm = cache.misses();
        for _ in 0..3 {
            for &a in &addrs {
                assert!(cache.access(a).hit);
            }
        }
        assert_eq!(cache.misses(), misses_after_warm);
    }

    #[test]
    fn hierarchy_accumulates_penalties() {
        let mut h = CacheHierarchy::new(
            Some(tiny()),
            Some(CacheConfig {
                capacity: 256,
                ways: 2,
                line_size: 16,
                miss_penalty: 20,
            }),
            100,
        );
        // Cold: L1 miss + L2 miss + memory.
        assert_eq!(h.access(0x40), 10 + 20 + 100);
        // Warm: free.
        assert_eq!(h.access(0x40), 0);
        h.flush();
        assert_eq!(h.access(0x40), 130);
    }

    #[test]
    fn no_caches_means_zero_latency() {
        let mut h = CacheHierarchy::new(None, None, 100);
        assert_eq!(h.access(0x1234), 0);
    }

    #[test]
    fn l1_only_hierarchy() {
        let mut h = CacheHierarchy::new(Some(tiny()), None, 50);
        assert_eq!(h.access(0x40), 60);
        assert_eq!(h.access(0x40), 0);
    }
}
