//! The cycle-level CPU model.
//!
//! An in-order, partial dual-issue, 8-stage-equivalent pipeline modeled
//! after the ARM Cortex-A7 as characterized in the paper:
//!
//! ```text
//!            ┌────────────┐  3 operand buses   ┌─ ALU0 (shifter, mul, 3-stage)
//!  Fetch ──▶ │ Prefetch   │ ──▶ Decode ──▶ Issue ──┼─ ALU1 (1-stage)
//!  (2/cyc)   │ buffer     │        ▲  RF 3R/2W └─ LSU  (3-stage, MDR, align)
//!            └────────────┘        │ immediate path
//!                           write-back buses (2) ◀── EX/WB buffers
//! ```
//!
//! Architectural execution is eager (results computed at issue) while the
//! *timing* — forwarding latencies, dual-issue legality, retire-port
//! arbitration, cache penalties — is modeled cycle by cycle. Every buffer
//! from Figure 2 of the paper is a tracked [`Node`] whose transitions are
//! streamed to a [`PipelineObserver`].

use std::collections::VecDeque;

use sca_isa::{
    apply_shift, decode, eval_dp, eval_mul, Flags, Insn, InsnClass, InsnKind, MemDir, MemMultiMode,
    MemOffset, MemSize, Operand2, Program, Reg, ShiftAmount,
};

use crate::{
    CacheHierarchy, ExecStats, Memory, Node, NodeState, Pipe, PipelineObserver, StallCause,
    UarchConfig, UarchError,
};

/// One instruction sitting in the front end (fetched, being decoded).
/// Shared with the lockstep block simulator (`block.rs`), whose front
/// end is identical by construction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FrontendEntry {
    pub(crate) addr: u32,
    /// `Err` marks a word that did not decode; it only faults if issue
    /// actually reaches it (the fetch unit runs ahead of `halt`).
    pub(crate) insn: Result<Insn, u32>,
    /// Cycle from which the instruction is visible to the issue stage.
    pub(crate) ready_at: u64,
}

/// An instruction in flight between issue and retirement.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RetireEntry {
    addr: u32,
    insn: Insn,
    complete_at: u64,
    /// Result value bound for the register file (drives EX/WB nodes).
    wb_value: Option<u32>,
    /// Pipe that produced the result.
    pipe: Option<Pipe>,
    /// Retiring `nop`s reset write-back bus 0.
    is_nop: bool,
}

/// A node assertion scheduled for a future cycle (e.g. a load's MDR
/// update three cycles after issue).
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingEvent {
    node: Node,
    value: u32,
    precharged: bool,
}

/// The future-event queue: one slot of pending node assertions per
/// upcoming cycle, kept as a ring so the hot `schedule`/`drain` pair
/// never touches an ordered map. Slot vectors are recycled through a
/// small pool — after the first few traces of a campaign the queue runs
/// allocation-free.
#[derive(Clone, Debug, Default)]
pub(crate) struct EventQueue {
    /// `slots[i]` holds the events for cycle `base + i`, in scheduling
    /// order (the order observers must see them in).
    slots: VecDeque<Vec<PendingEvent>>,
    /// Cycle the front slot corresponds to.
    base: u64,
    /// Drained slot vectors awaiting reuse.
    pool: Vec<Vec<PendingEvent>>,
}

impl EventQueue {
    /// Empties the queue (keeping slot capacity for reuse) and re-bases
    /// it at cycle zero.
    fn clear(&mut self) {
        while let Some(mut slot) = self.slots.pop_front() {
            slot.clear();
            self.pool.push(slot);
        }
        self.base = 0;
    }

    /// Appends an event at cycle `at` (which must not be in the past —
    /// the pipeline only schedules into future cycles).
    fn push(&mut self, at: u64, event: PendingEvent) {
        debug_assert!(at >= self.base, "scheduling into the past");
        let index = (at - self.base) as usize;
        while self.slots.len() <= index {
            self.slots.push_back(self.pool.pop().unwrap_or_default());
        }
        self.slots[index].push(event);
    }

    /// Removes and returns the events due at `cycle`, advancing the ring
    /// past it. Returns `None` when the cycle has no events; the slot
    /// vector must be handed back through [`EventQueue::recycle`].
    fn drain(&mut self, cycle: u64) -> Option<Vec<PendingEvent>> {
        while self.base < cycle {
            if let Some(mut slot) = self.slots.pop_front() {
                debug_assert!(slot.is_empty(), "skipped a cycle with pending events");
                slot.clear();
                self.pool.push(slot);
            }
            self.base += 1;
        }
        if self.base == cycle {
            if let Some(slot) = self.slots.pop_front() {
                self.base += 1;
                if slot.is_empty() {
                    self.pool.push(slot);
                    return None;
                }
                return Some(slot);
            }
        }
        None
    }

    /// Returns a drained slot vector to the reuse pool.
    fn recycle(&mut self, mut slot: Vec<PendingEvent>) {
        slot.clear();
        self.pool.push(slot);
    }
}

/// Operand-bus values gathered during one dispatch — at most three (the
/// register file has three read ports), kept on the stack so the issue
/// stage never allocates.
#[derive(Clone, Copy, Default)]
struct BusList {
    values: [u32; 3],
    len: usize,
}

impl BusList {
    fn push(&mut self, value: u32) {
        self.values[self.len] = value;
        self.len += 1;
    }

    fn extend(&mut self, value: Option<u32>) {
        if let Some(value) = value {
            self.push(value);
        }
    }

    fn as_slice(&self) -> &[u32] {
        &self.values[..self.len]
    }
}

/// The simulated CPU.
///
/// ```
/// use sca_isa::assemble;
/// use sca_uarch::{Cpu, NullObserver, UarchConfig};
///
/// let program = assemble("
///     mov r0, #21
///     add r0, r0, r0
///     halt
/// ")?;
/// let mut cpu = Cpu::new(UarchConfig::cortex_a7());
/// cpu.load(&program)?;
/// let stats = cpu.run(&mut NullObserver)?;
/// assert_eq!(cpu.reg(sca_isa::Reg::R0), 42);
/// assert!(stats.instructions >= 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// `Cpu` is `Clone`: acquisition pipelines clone one warmed-up CPU per
/// worker thread so every trace starts from identical cache state.
#[derive(Clone, Debug)]
pub struct Cpu {
    // Fields are crate-visible for the lockstep block simulator
    // (`block.rs`), which drives N lane `Cpu`s through a shared control
    // path and must read/write their architectural and node state
    // directly.
    pub(crate) config: UarchConfig,
    pub(crate) regs: [u32; 16],
    pub(crate) flags: Flags,
    pub(crate) pc: u32,
    pub(crate) mem: Memory,
    pub(crate) icache: CacheHierarchy,
    pub(crate) dcache: CacheHierarchy,
    pub(crate) nodes: NodeState,
    pub(crate) stats: ExecStats,
    pub(crate) cycle: u64,
    pub(crate) halted: bool,
    pub(crate) trigger_level: bool,

    pub(crate) frontend: VecDeque<FrontendEntry>,
    pub(crate) fetch_ready_at: u64,
    pub(crate) lsu_ready_at: u64,
    pub(crate) reg_ready: [u64; 16],
    pub(crate) flags_ready: u64,
    pub(crate) retire_queue: VecDeque<RetireEntry>,
    pub(crate) pending: EventQueue,
    /// Monotonic restart counter seeding the node-state scramble.
    pub(crate) restart_seq: u64,
}

impl Cpu {
    /// Builds a CPU with zeroed registers and memory.
    pub fn new(config: UarchConfig) -> Cpu {
        let mem = Memory::new(config.mem_size);
        let icache = CacheHierarchy::new(config.icache, config.l2, config.memory_latency);
        let dcache = CacheHierarchy::new(config.dcache, config.l2, config.memory_latency);
        Cpu {
            config,
            regs: [0; 16],
            flags: Flags::default(),
            pc: 0,
            mem,
            icache,
            dcache,
            nodes: NodeState::new(),
            stats: ExecStats::default(),
            cycle: 0,
            halted: false,
            trigger_level: false,
            frontend: VecDeque::new(),
            fetch_ready_at: 0,
            lsu_ready_at: 0,
            reg_ready: [0; 16],
            flags_ready: 0,
            retire_queue: VecDeque::new(),
            pending: EventQueue::default(),
            restart_seq: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &UarchConfig {
        &self.config
    }

    /// Loads a program image and points the fetch unit at its entry.
    ///
    /// # Errors
    ///
    /// [`UarchError::ImageTooLarge`] if the image does not fit in RAM.
    pub fn load(&mut self, program: &Program) -> Result<(), UarchError> {
        let end = program.base() + program.len_bytes();
        if end > self.mem.size() {
            return Err(UarchError::ImageTooLarge {
                end,
                mem_size: self.mem.size(),
            });
        }
        for (i, word) in program.words().iter().enumerate() {
            self.mem.write_u32(program.base() + (i as u32) * 4, *word)?;
        }
        self.pc = program.entry();
        Ok(())
    }

    /// Resets pipeline state (front end, in-flight instructions, node
    /// values, statistics, cycle counter) and re-points fetch at `entry`,
    /// while **keeping memory contents, register values and cache state**.
    ///
    /// This is the "measure the executions following the first one"
    /// protocol from the paper: run once to warm the caches, then
    /// `restart` and measure.
    pub fn restart(&mut self, entry: u32) {
        self.restart_seq += 1;
        let seed = self.restart_seq;
        self.restart_seeded(entry, seed);
    }

    /// Like [`Cpu::restart`], but scrambles the stale node state with an
    /// explicit seed, making runs reproducible independently of how many
    /// restarts this particular `Cpu` instance has seen (acquisition
    /// pipelines derive the seed from the trace/execution index so that
    /// worker threading cannot change results).
    ///
    /// This is the per-execution *reset* of the trace-generation fast
    /// path: a campaign worker's `SimArena` keeps one staged `Cpu` for
    /// its whole index range and calls this between executions instead
    /// of re-constructing and re-loading a simulator. The reset is
    /// deliberately cheap — fixed-size node/pipeline state is
    /// overwritten in place and the event queue recycles its slot
    /// storage, so nothing here allocates once the arena is warm —
    /// while register values, memory contents and cache state persist
    /// exactly as they do across executions on silicon.
    pub fn restart_seeded(&mut self, entry: u32, scramble_seed: u64) {
        self.pc = entry;
        self.halted = false;
        self.cycle = 0;
        self.stats = ExecStats::default();
        self.frontend.clear();
        self.retire_queue.clear();
        self.pending.clear();
        // Stale buffer contents persist across executions on silicon;
        // scrambling (rather than zeroing) avoids fabricating
        // Hamming-weight leaks on first use while staying deterministic.
        self.nodes.scramble(scramble_seed);
        self.fetch_ready_at = 0;
        self.lsu_ready_at = 0;
        self.reg_ready = [0; 16];
        self.flags_ready = 0;
        self.trigger_level = false;
    }

    /// Current value of a register.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Sets a register (for staging benchmark inputs).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        self.regs[reg.index()] = value;
    }

    /// Current architectural flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Sets the architectural flags.
    pub fn set_flags(&mut self, flags: Flags) {
        self.flags = flags;
    }

    /// Direct memory access for staging inputs and reading outputs.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable direct memory access.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Returns the hit/miss counts accumulated by every cache instance
    /// since the last drain, and zeroes them. Cache *lines* are
    /// untouched — timing, and therefore every trace, is unaffected.
    ///
    /// Campaign workers drain their template clone once at arena
    /// creation (discarding the warm-up counts the clone inherited) and
    /// then per batch, attributing the deltas to telemetry.
    pub fn drain_cache_counts(&mut self) -> crate::CacheCounts {
        let ((l1i_hits, l1i_misses), (l2i_hits, l2i_misses)) = self.icache.drain_counts();
        let ((l1d_hits, l1d_misses), (l2d_hits, l2d_misses)) = self.dcache.drain_counts();
        crate::CacheCounts {
            l1i_hits,
            l1i_misses,
            l1d_hits,
            l1d_misses,
            l2_hits: l2i_hits + l2d_hits,
            l2_misses: l2i_misses + l2d_misses,
        }
    }

    /// Cycles elapsed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether `halt` has been executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Runs until `halt`, streaming activity to `observer`.
    ///
    /// # Errors
    ///
    /// Propagates bad fetches/accesses and enforces the configured cycle
    /// budget.
    pub fn run(&mut self, observer: &mut dyn PipelineObserver) -> Result<ExecStats, UarchError> {
        while !self.halted {
            if self.cycle >= self.config.max_cycles {
                return Err(UarchError::CycleBudgetExceeded(self.config.max_cycles));
            }
            self.step(observer)?;
        }
        // Drain in-flight instructions so their write-back activity and
        // retire counts are not lost; this costs trailing cycles outside
        // any measurement window.
        while !self.retire_queue.is_empty() {
            self.step(observer)?;
        }
        Ok(self.stats)
    }

    /// Advances one cycle.
    ///
    /// # Errors
    ///
    /// Propagates fetch/memory faults.
    pub fn step(&mut self, observer: &mut dyn PipelineObserver) -> Result<(), UarchError> {
        let cycle = self.cycle;
        observer.begin_cycle(cycle);
        if let Some(events) = self.pending.drain(cycle) {
            for ev in &events {
                let event = if ev.precharged {
                    self.nodes.assert_precharged(cycle, ev.node, ev.value)
                } else {
                    self.nodes.assert(cycle, ev.node, ev.value)
                };
                observer.node_event(event);
            }
            self.pending.recycle(events);
        }
        self.retire(observer);
        if !self.halted {
            self.issue(observer)?;
            self.fetch(observer)?;
        }
        self.cycle += 1;
        self.stats.cycles += 1;
        Ok(())
    }

    // ---- retire stage ----------------------------------------------------

    fn retire(&mut self, observer: &mut dyn PipelineObserver) {
        let cycle = self.cycle;
        let mut slot = 0u8;
        while slot < self.config.retire_width as u8 {
            let Some(head) = self.retire_queue.front() else {
                break;
            };
            if head.complete_at > cycle {
                break;
            }
            let entry = self.retire_queue.pop_front().expect("checked front");
            if entry.is_nop && self.config.nop_zeroes_wb {
                // The A7 nop flows to write-back as a bubble that resets
                // the buses — the source of the paper's † boundary
                // leakage.
                for bus in 0..self.config.retire_width as u8 {
                    let ev = self.nodes.assert(cycle, Node::WbBus(bus), 0);
                    observer.node_event(ev);
                }
            } else if let Some(value) = entry.wb_value {
                if let Some(pipe) = entry.pipe {
                    let ev = self.nodes.assert(cycle, Node::ExWbBuf(pipe), value);
                    observer.node_event(ev);
                }
                let ev = self.nodes.assert(cycle, Node::WbBus(slot), value);
                observer.node_event(ev);
            }
            observer.retire(cycle, entry.addr, entry.insn);
            self.stats.instructions += 1;
            if entry.insn.is_branch() {
                self.stats.branches += 1;
            }
            slot += 1;
        }
    }

    // ---- issue stage -----------------------------------------------------

    fn issue(&mut self, observer: &mut dyn PipelineObserver) -> Result<(), UarchError> {
        let cycle = self.cycle;
        let Some(head) = self.frontend.front().copied() else {
            self.stats.count_stall(StallCause::Frontend);
            return Ok(());
        };
        if head.ready_at > cycle {
            self.stats.count_stall(StallCause::Frontend);
            return Ok(());
        }
        let older = match head.insn {
            Ok(insn) => insn,
            Err(word) => {
                return Err(UarchError::BadInstruction {
                    addr: head.addr,
                    word: Some(word),
                })
            }
        };
        if let Some(cause) = self.issue_blocker(&older) {
            self.stats.count_stall(cause);
            return Ok(());
        }

        self.frontend.pop_front();
        let redirected = self.dispatch(observer, older, head.addr, 0, Pipe::Alu0)?;
        if self.halted || redirected {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        }

        // Try to pair a younger instruction.
        if !self.config.dual_issue {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        }
        let Some(second) = self.frontend.front().copied() else {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        };
        let (Ok(younger), true) = (second.insn, second.ready_at <= cycle) else {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        };
        let structurally_ok = self.pair_structurally_legal(&older, &younger);
        if structurally_ok && !self.config.policy.allows(older.class(), younger.class()) {
            self.stats.policy_rejections += 1;
            self.stats.single_issue_cycles += 1;
            return Ok(());
        }
        if !structurally_ok || self.issue_blocker(&younger).is_some() {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        }
        self.frontend.pop_front();
        let bus_base = older.read_ports().min(self.config.rf_read_ports) as u8;
        let younger_pipe = Self::younger_default_pipe(&older, &younger);
        self.dispatch(observer, younger, second.addr, bus_base, younger_pipe)?;
        self.stats.dual_issue_cycles += 1;
        Ok(())
    }

    /// Why `insn` cannot issue this cycle, if anything.
    fn issue_blocker(&self, insn: &Insn) -> Option<StallCause> {
        let cycle = self.cycle;
        for reg in insn.reads().iter() {
            if reg != Reg::PC && self.reg_ready[reg.index()] > cycle {
                return Some(StallCause::RawHazard);
            }
        }
        if insn.reads_flags() && self.flags_ready > cycle {
            return Some(StallCause::FlagsHazard);
        }
        if insn.is_mem() && self.lsu_ready_at > cycle {
            return Some(StallCause::Structural);
        }
        None
    }

    /// Structural legality of a dual-issue pair, independent of the
    /// pairing policy: read-port budget, write-port (WAW) conflicts,
    /// intra-group RAW/flag dependences, and a taken-branch guard.
    pub(crate) fn pair_structurally_legal(&self, older: &Insn, younger: &Insn) -> bool {
        if older.read_ports() + younger.read_ports() > self.config.rf_read_ports {
            return false;
        }
        if older.writes().intersects(younger.writes()) {
            return false;
        }
        if older.writes().intersects(younger.reads()) {
            return false;
        }
        if older.sets_flags() && (younger.reads_flags() || younger.sets_flags()) {
            return false;
        }
        // Both needing the shifter/multiplier pipe or both needing the
        // LSU is illegal; the measured policy already excludes these, but
        // custom policies must not break the structural model.
        let needs_pipe0 = |i: &Insn| matches!(i.class(), InsnClass::Shift | InsnClass::Mul);
        if needs_pipe0(older) && needs_pipe0(younger) {
            return false;
        }
        if older.is_mem() && younger.is_mem() {
            return false;
        }
        true
    }

    /// Pipe for the younger instruction of a dual-issued pair.
    pub(crate) fn younger_default_pipe(older: &Insn, younger: &Insn) -> Pipe {
        let older_takes_alu0 = matches!(
            older.class(),
            InsnClass::Mov | InsnClass::Alu | InsnClass::AluImm | InsnClass::Shift | InsnClass::Mul
        );
        let younger_needs_alu0 = matches!(younger.class(), InsnClass::Shift | InsnClass::Mul);
        if younger_needs_alu0 || !older_takes_alu0 {
            Pipe::Alu0
        } else {
            Pipe::Alu1
        }
    }

    // ---- dispatch / execute ------------------------------------------------

    /// Reads a register as an operand (PC reads yield `addr + 8`).
    pub(crate) fn operand(&self, reg: Reg, addr: u32) -> u32 {
        if reg == Reg::PC {
            addr.wrapping_add(8)
        } else {
            self.regs[reg.index()]
        }
    }

    /// Reads the register file (read-port nodes switch in the issue
    /// cycle) and schedules the shared operand-bus drivers for the next
    /// cycle — the issue/execute clock boundary. The one-cycle offset
    /// matters for characterization: it is what lets the paper's
    /// "correlation in the correct clock cycle" criterion tell the
    /// (silent) read ports apart from the (leaky) operand buses carrying
    /// the same values.
    fn drive_operand_buses(
        &mut self,
        observer: &mut dyn PipelineObserver,
        values: &[u32],
        bus_base: u8,
    ) {
        let cycle = self.cycle;
        for (i, &value) in values.iter().enumerate() {
            let bus = bus_base + i as u8;
            if (bus as usize) < self.config.operand_buses() {
                let ev = self.nodes.assert(cycle, Node::RfRead(bus), value);
                observer.node_event(ev);
                self.schedule(cycle + 1, Node::OperandBus(bus), value, false);
            }
        }
    }

    /// Latches the per-pipe IS/EX operand buffers (at the issue/execute
    /// boundary, one cycle after the register read).
    fn latch_is_ex(&mut self, pipe: Pipe, slots: &[Option<u32>; 2]) {
        let cycle = self.cycle;
        for (slot, value) in slots.iter().enumerate() {
            if let Some(value) = value {
                let node = Node::IsExOp {
                    pipe,
                    slot: slot as u8,
                };
                self.schedule(cycle + 1, node, *value, false);
            }
        }
    }

    fn schedule(&mut self, at: u64, node: Node, value: u32, precharged: bool) {
        self.pending.push(
            at.max(self.cycle + 1),
            PendingEvent {
                node,
                value,
                precharged,
            },
        );
    }

    fn ready_cycle(&self, forward_at: u64) -> u64 {
        if self.config.forwarding {
            forward_at
        } else {
            forward_at + 2
        }
    }

    fn push_retire(
        &mut self,
        addr: u32,
        insn: Insn,
        complete_at: u64,
        wb_value: Option<u32>,
        pipe: Option<Pipe>,
        is_nop: bool,
    ) {
        self.retire_queue.push_back(RetireEntry {
            addr,
            insn,
            complete_at,
            wb_value,
            pipe,
            is_nop,
        });
    }

    fn redirect(&mut self, target: u32, resume_at: u64) {
        self.frontend.clear();
        self.pc = target;
        self.fetch_ready_at = resume_at;
        self.stats.taken_branches += 1;
    }

    /// Issues one instruction: reads operands (driving the shared buses),
    /// executes eagerly, emits/schedules node events and enqueues the
    /// retirement. Returns `true` when the front end was redirected.
    fn dispatch(
        &mut self,
        observer: &mut dyn PipelineObserver,
        insn: Insn,
        addr: u32,
        bus_base: u8,
        preferred_pipe: Pipe,
    ) -> Result<bool, UarchError> {
        let cycle = self.cycle;
        let cond_pass = insn.cond.passes(self.flags);
        match insn.kind {
            InsnKind::Nop => {
                // A never-executed conditional with zero-valued operands:
                // drives zeros on the operand buses, latches nothing, and
                // resets the WB bus at retirement.
                if self.config.nop_drives_operand_buses {
                    self.drive_operand_buses(observer, &[0, 0], bus_base);
                }
                // (The zero "register reads" above also keep the read-port
                // nodes cycling with data-independent values.)
                self.push_retire(
                    addr,
                    insn,
                    cycle + self.config.alu_latency,
                    None,
                    None,
                    true,
                );
                Ok(false)
            }
            InsnKind::Trig { high } => {
                self.trigger_level = high;
                observer.trigger(cycle, high);
                self.push_retire(addr, insn, cycle + 1, None, None, false);
                Ok(false)
            }
            InsnKind::Halt => {
                self.halted = true;
                self.push_retire(addr, insn, cycle + 1, None, None, false);
                Ok(false)
            }
            InsnKind::Dp {
                op,
                set_flags,
                rd,
                rn,
                op2,
            } => {
                let rn_val = rn.map(|r| self.operand(r, addr));
                // Operand-2 evaluation through the immediate path or the
                // barrel shifter.
                let mut buses = BusList::default();
                buses.extend(rn_val);
                let (op2_val, shifter_carry, shifted) = match op2 {
                    Operand2::Imm(v) => (v, self.flags.c, false),
                    Operand2::Reg(rm) => {
                        let rm_val = self.operand(rm, addr);
                        buses.push(rm_val);
                        (rm_val, self.flags.c, false)
                    }
                    Operand2::ShiftedReg { rm, kind, amount } => {
                        let rm_val = self.operand(rm, addr);
                        buses.push(rm_val);
                        let amount_val = match amount {
                            ShiftAmount::Imm(n) => u32::from(n),
                            ShiftAmount::Reg(rs) => {
                                let rs_val = self.operand(rs, addr);
                                buses.push(rs_val);
                                rs_val & 0xff
                            }
                        };
                        let out = apply_shift(kind, rm_val, amount_val, self.flags.c);
                        (out.value, out.carry, true)
                    }
                };
                self.drive_operand_buses(observer, buses.as_slice(), bus_base);

                let pipe = if shifted { Pipe::Alu0 } else { preferred_pipe };
                let latency = if shifted {
                    self.config.shift_latency
                } else {
                    self.config.alu_latency
                };

                if cond_pass {
                    // IS/EX buffers latch only for instructions that
                    // proceed to execute.
                    let slots = [rn_val.or(Some(op2_val)), rn_val.map(|_| op2_val)];
                    self.latch_is_ex(pipe, &slots);
                    if shifted {
                        self.schedule(
                            cycle + self.config.shift_latency,
                            Node::ShiftBuf,
                            op2_val,
                            true,
                        );
                    }
                    let out = eval_dp(op, rn_val.unwrap_or(0), op2_val, shifter_carry, self.flags);
                    self.schedule(cycle + latency, Node::AluOut(pipe), out.value, true);
                    if set_flags || op.is_compare() {
                        self.flags = out.flags;
                        self.flags_ready = cycle + 1;
                    }
                    if let Some(rd) = rd {
                        if rd == Reg::PC {
                            // mov pc, … acts as an indirect branch.
                            self.redirect(out.value & !3, cycle + 1);
                            self.push_retire(addr, insn, cycle + latency, None, Some(pipe), false);
                            return Ok(true);
                        }
                        self.regs[rd.index()] = out.value;
                        self.reg_ready[rd.index()] = self.ready_cycle(cycle + latency);
                        self.push_retire(
                            addr,
                            insn,
                            cycle + latency,
                            Some(out.value),
                            Some(pipe),
                            false,
                        );
                        return Ok(false);
                    }
                    // Compare/test: flags only.
                    self.push_retire(addr, insn, cycle + latency, None, Some(pipe), false);
                    return Ok(false);
                }
                // Condition failed: occupies the pipe as a bubble.
                self.push_retire(addr, insn, cycle + latency, None, None, false);
                Ok(false)
            }
            InsnKind::Mul {
                op: _,
                set_flags,
                rd,
                rm,
                rs,
                ra,
            } => {
                let rm_val = self.operand(rm, addr);
                let rs_val = self.operand(rs, addr);
                let ra_val = ra.map(|r| self.operand(r, addr));
                let mut buses = BusList::default();
                buses.push(rm_val);
                buses.push(rs_val);
                buses.extend(ra_val);
                self.drive_operand_buses(observer, buses.as_slice(), bus_base);
                let latency = self.config.mul_latency;
                if cond_pass {
                    self.latch_is_ex(Pipe::Alu0, &[Some(rm_val), Some(rs_val)]);
                    let value = eval_mul(rm_val, rs_val, ra_val);
                    self.schedule(cycle + latency, Node::AluOut(Pipe::Alu0), value, true);
                    if set_flags {
                        let mut flags = self.flags;
                        flags.n = value >> 31 != 0;
                        flags.z = value == 0;
                        self.flags = flags;
                        self.flags_ready = cycle + 1;
                    }
                    self.regs[rd.index()] = value;
                    self.reg_ready[rd.index()] = self.ready_cycle(cycle + latency);
                    self.push_retire(
                        addr,
                        insn,
                        cycle + latency,
                        Some(value),
                        Some(Pipe::Alu0),
                        false,
                    );
                } else {
                    self.push_retire(addr, insn, cycle + latency, None, None, false);
                }
                Ok(false)
            }
            InsnKind::Mem {
                dir,
                size,
                rd,
                addr: mode,
            } => {
                let base_val = self.operand(mode.base, addr);
                let (offset_val, offset_bus) = match mode.offset {
                    MemOffset::Imm(imm) => (imm as i64, None),
                    MemOffset::Reg {
                        rm,
                        kind,
                        amount,
                        sub,
                    } => {
                        let rm_val = self.operand(rm, addr);
                        let shifted =
                            apply_shift(kind, rm_val, u32::from(amount), self.flags.c).value;
                        let signed = if sub {
                            -(i64::from(shifted))
                        } else {
                            i64::from(shifted)
                        };
                        (signed, Some(rm_val))
                    }
                };
                let effective = (i64::from(base_val) + offset_val) as u32;
                let access_addr = match mode.index {
                    sca_isa::IndexMode::PostIndex => base_val,
                    _ => effective,
                };

                // Buses: base, then offset register, then store data.
                let mut buses = BusList::default();
                buses.push(base_val);
                buses.extend(offset_bus);
                let data_val = if dir == MemDir::Store {
                    Some(self.operand(rd, addr))
                } else {
                    None
                };
                buses.extend(data_val);
                self.drive_operand_buses(observer, buses.as_slice(), bus_base);

                if !cond_pass {
                    self.push_retire(
                        addr,
                        insn,
                        cycle + self.config.load_latency,
                        None,
                        None,
                        false,
                    );
                    return Ok(false);
                }

                // Address generation happens in the issue stage (paper,
                // Section 3.2), so base writeback is fast.
                if mode.writes_base() {
                    self.regs[mode.base.index()] = effective;
                    self.reg_ready[mode.base.index()] = self.ready_cycle(cycle + 1);
                }

                self.latch_is_ex(Pipe::Lsu, &[Some(access_addr), data_val]);

                let penalty = self.dcache.access(access_addr);
                if penalty > 0 {
                    self.stats.dcache_misses += 1;
                    self.lsu_ready_at = cycle + 1 + penalty;
                }
                let complete_at = cycle + self.config.load_latency + penalty;

                match dir {
                    MemDir::Load => {
                        let value = match size {
                            MemSize::Word => self.mem.read_u32(access_addr)?,
                            MemSize::Byte => u32::from(self.mem.read_u8(access_addr)?),
                            MemSize::Half => u32::from(self.mem.read_u16(access_addr)?),
                        };
                        let word = self.mem.containing_word(access_addr)?;
                        self.schedule(complete_at, Node::Mdr, word, false);
                        if size.is_subword() && self.config.align_buffer {
                            self.schedule(complete_at, Node::AlignBuf, value, false);
                        }
                        if rd == Reg::PC {
                            self.redirect(value & !3, complete_at);
                            self.push_retire(addr, insn, complete_at, None, Some(Pipe::Lsu), false);
                            return Ok(true);
                        }
                        self.regs[rd.index()] = value;
                        self.reg_ready[rd.index()] = self.ready_cycle(complete_at);
                        self.push_retire(
                            addr,
                            insn,
                            complete_at,
                            Some(value),
                            Some(Pipe::Lsu),
                            false,
                        );
                    }
                    MemDir::Store => {
                        let value = data_val.expect("stores read their data register");
                        match size {
                            MemSize::Word => self.mem.write_u32(access_addr, value)?,
                            MemSize::Byte => self.mem.write_u8(access_addr, value as u8)?,
                            MemSize::Half => self.mem.write_u16(access_addr, value as u16)?,
                        }
                        // The MDR carries the full merged word even for
                        // sub-word stores (paper, Section 4.1).
                        let word = self.mem.containing_word(access_addr)?;
                        self.schedule(complete_at, Node::Mdr, word, false);
                        if size.is_subword() && self.config.align_buffer {
                            let sub = match size {
                                MemSize::Byte => value & 0xff,
                                _ => value & 0xffff,
                            };
                            self.schedule(complete_at, Node::AlignBuf, sub, false);
                        }
                        self.push_retire(addr, insn, complete_at, None, None, false);
                    }
                }
                Ok(false)
            }
            InsnKind::MemMulti {
                dir,
                base,
                writeback,
                regs,
                mode,
            } => {
                let base_val = self.operand(base, addr);
                let n = regs.len() as u32;
                let start = match mode {
                    MemMultiMode::Ia => base_val,
                    MemMultiMode::Db => base_val.wrapping_sub(4 * n),
                };
                self.drive_operand_buses(observer, &[base_val], bus_base);
                if !cond_pass {
                    self.push_retire(
                        addr,
                        insn,
                        cycle + self.config.load_latency,
                        None,
                        None,
                        false,
                    );
                    return Ok(false);
                }
                self.latch_is_ex(Pipe::Lsu, &[Some(start), None]);

                // Base writeback is resolved by the AGU in the issue
                // stage; a load that also targets the base lets the
                // loaded value win (writeback suppressed).
                let new_base = match mode {
                    MemMultiMode::Ia => base_val.wrapping_add(4 * n),
                    MemMultiMode::Db => start,
                };
                let base_reloaded = dir == MemDir::Load && regs.contains(base);
                if writeback && !base_reloaded {
                    self.regs[base.index()] = new_base;
                    self.reg_ready[base.index()] = self.ready_cycle(cycle + 1);
                }

                // One LSU beat per register, lowest register at the
                // lowest address; each beat moves a full word through the
                // MDR.
                let mut penalty_total: u64 = 0;
                let mut last_value = 0u32;
                let mut redirect_target: Option<(u32, u64)> = None;
                for (i, reg) in regs.iter().enumerate() {
                    let beat_addr = start.wrapping_add(4 * i as u32);
                    let penalty = self.dcache.access(beat_addr);
                    if penalty > 0 {
                        self.stats.dcache_misses += 1;
                    }
                    penalty_total += penalty;
                    let beat_complete = cycle + self.config.load_latency + i as u64 + penalty_total;
                    match dir {
                        MemDir::Load => {
                            let value = self.mem.read_u32(beat_addr)?;
                            self.schedule(beat_complete, Node::Mdr, value, false);
                            if reg == Reg::PC {
                                redirect_target = Some((value & !3, beat_complete));
                            } else {
                                self.regs[reg.index()] = value;
                                self.reg_ready[reg.index()] = self.ready_cycle(beat_complete);
                            }
                            last_value = value;
                        }
                        MemDir::Store => {
                            let value = self.operand(reg, addr);
                            self.mem.write_u32(beat_addr, value)?;
                            self.schedule(beat_complete, Node::Mdr, value, false);
                            last_value = value;
                        }
                    }
                }
                let beats = u64::from(n.max(1));
                let complete = cycle + self.config.load_latency + beats - 1 + penalty_total;
                self.lsu_ready_at = cycle + beats + penalty_total;
                let wb_value = (dir == MemDir::Load).then_some(last_value);
                self.push_retire(addr, insn, complete, wb_value, Some(Pipe::Lsu), false);
                if let Some((target, at)) = redirect_target {
                    self.redirect(target, at);
                    return Ok(true);
                }
                Ok(false)
            }
            InsnKind::MulLong {
                signed,
                rd_hi,
                rd_lo,
                rm,
                rs,
            } => {
                let rm_val = self.operand(rm, addr);
                let rs_val = self.operand(rs, addr);
                self.drive_operand_buses(observer, &[rm_val, rs_val], bus_base);
                // The 64-bit result drains through the write-back path
                // over two cycles (lo, then hi).
                let latency = self.config.mul_latency + 1;
                if cond_pass {
                    self.latch_is_ex(Pipe::Alu0, &[Some(rm_val), Some(rs_val)]);
                    let product = if signed {
                        (i64::from(rm_val as i32) * i64::from(rs_val as i32)) as u64
                    } else {
                        u64::from(rm_val) * u64::from(rs_val)
                    };
                    let lo = product as u32;
                    let hi = (product >> 32) as u32;
                    self.schedule(cycle + latency - 1, Node::AluOut(Pipe::Alu0), lo, true);
                    self.schedule(cycle + latency, Node::AluOut(Pipe::Alu0), hi, true);
                    self.regs[rd_lo.index()] = lo;
                    self.regs[rd_hi.index()] = hi;
                    self.reg_ready[rd_lo.index()] = self.ready_cycle(cycle + latency - 1);
                    self.reg_ready[rd_hi.index()] = self.ready_cycle(cycle + latency);
                    self.push_retire(
                        addr,
                        insn,
                        cycle + latency,
                        Some(hi),
                        Some(Pipe::Alu0),
                        false,
                    );
                } else {
                    self.push_retire(addr, insn, cycle + latency, None, None, false);
                }
                Ok(false)
            }
            InsnKind::Branch { link, offset } => {
                if cond_pass {
                    if link {
                        self.regs[Reg::LR.index()] = addr.wrapping_add(4);
                        self.reg_ready[Reg::LR.index()] = self.ready_cycle(cycle + 1);
                    }
                    let target = addr
                        .wrapping_add(4)
                        .wrapping_add((offset as u32).wrapping_mul(4));
                    self.redirect(target, cycle + 1);
                    self.push_retire(addr, insn, cycle + 1, None, None, false);
                    return Ok(true);
                }
                self.push_retire(addr, insn, cycle + 1, None, None, false);
                Ok(false)
            }
            InsnKind::Bx { rm } => {
                let rm_val = self.operand(rm, addr);
                self.drive_operand_buses(observer, &[rm_val], bus_base);
                if cond_pass {
                    self.redirect(rm_val & !3, cycle + 1);
                    self.push_retire(addr, insn, cycle + 1, None, None, false);
                    return Ok(true);
                }
                self.push_retire(addr, insn, cycle + 1, None, None, false);
                Ok(false)
            }
        }
    }

    // ---- fetch stage -----------------------------------------------------

    fn fetch(&mut self, observer: &mut dyn PipelineObserver) -> Result<(), UarchError> {
        let cycle = self.cycle;
        if cycle < self.fetch_ready_at {
            return Ok(());
        }
        let mut fetched = 0u8;
        while fetched < self.config.fetch_width as u8
            && self.frontend.len() < self.config.frontend_capacity
        {
            let addr = self.pc;
            let Ok(word) = self.mem.read_u32(addr) else {
                // Running off the image: stop fetching; issue faults only
                // if execution actually gets here.
                break;
            };
            let penalty = self.icache.access(addr);
            if penalty > 0 {
                self.stats.icache_misses += 1;
                self.fetch_ready_at = cycle + penalty;
            }
            let ev = self.nodes.assert(cycle, Node::FetchWord(fetched), word);
            observer.node_event(ev);
            let insn = decode(word).map_err(|_| word);
            self.frontend.push_back(FrontendEntry {
                addr,
                insn: insn.map_err(|_| word),
                ready_at: cycle + self.config.frontend_latency + penalty,
            });
            self.pc = addr.wrapping_add(4);
            fetched += 1;
            if penalty > 0 {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullObserver, RecordingObserver};
    use sca_isa::{assemble, AddrMode, ProgramBuilder};

    fn run_asm(src: &str) -> (Cpu, ExecStats) {
        let program = assemble(src).expect("benchmark assembles");
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).expect("loads");
        let stats = cpu.run(&mut NullObserver).expect("runs");
        (cpu, stats)
    }

    #[test]
    fn arithmetic_program_computes() {
        let (cpu, _) = run_asm(
            "
            mov r0, #5
            mov r1, #7
            add r2, r0, r1
            mul r3, r2, r0
            sub r4, r3, #10
            halt
        ",
        );
        assert_eq!(cpu.reg(Reg::R2), 12);
        assert_eq!(cpu.reg(Reg::R3), 60);
        assert_eq!(cpu.reg(Reg::R4), 50);
    }

    #[test]
    fn conditional_loop_terminates() {
        let (cpu, stats) = run_asm(
            "
            mov r0, #10
            mov r1, #0
loop:       add r1, r1, r0
            subs r0, r0, #1
            bne loop
            halt
        ",
        );
        assert_eq!(cpu.reg(Reg::R1), 55);
        assert_eq!(cpu.reg(Reg::R0), 0);
        assert!(stats.taken_branches >= 9);
    }

    #[test]
    fn memory_round_trip_and_subword() {
        let (cpu, _) = run_asm(
            "
            .org 0
            adr r0, data
            ldr r1, [r0]
            ldrb r2, [r0, #1]
            ldrh r3, [r0, #2]
            strb r1, [r0, #8]
            ldr r4, [r0, #8]
            halt
            .org 0x40
data:       .word 0xa1b2c3d4
            .word 0
            .word 0
        ",
        );
        assert_eq!(cpu.reg(Reg::R1), 0xa1b2_c3d4);
        assert_eq!(cpu.reg(Reg::R2), 0xc3);
        assert_eq!(cpu.reg(Reg::R3), 0xa1b2);
        assert_eq!(cpu.reg(Reg::R4), 0xd4);
    }

    #[test]
    fn pre_post_indexing() {
        let (cpu, _) = run_asm(
            "
            adr r0, data
            mov r5, #1
            str r5, [r0, #4]!
            mov r6, #2
            str r6, [r0], #4
            ldr r1, [r0]
            halt
            .org 0x80
data:       .word 0, 0, 0
        ",
        );
        // After pre-index: r0 = data+4 (holds 1). Post-index store writes 2
        // at data+4 then r0 = data+8.
        assert_eq!(cpu.reg(Reg::R0), 0x88);
        assert_eq!(cpu.mem().read_u32(0x84).unwrap(), 2);
        assert_eq!(cpu.reg(Reg::R1), 0);
    }

    #[test]
    fn function_call_and_return() {
        let (cpu, _) = run_asm(
            "
            mov r0, #4
            bl double
            bl double
            halt
double:     add r0, r0, r0
            bx lr
        ",
        );
        assert_eq!(cpu.reg(Reg::R0), 16);
    }

    #[test]
    fn dual_issue_mov_pairs_reach_half_cpi() {
        // 200 hazard-free mov pairs, as in the paper's micro-benchmarks.
        let mut builder = ProgramBuilder::new(0).nops(8);
        for _ in 0..200 {
            builder = builder
                .push(Insn::mov(Reg::R0, Reg::R1))
                .push(Insn::mov(Reg::R2, Reg::R3));
        }
        let program = builder.nops(8).push(Insn::halt()).build().unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).unwrap();
        let stats = cpu.run(&mut NullObserver).unwrap();
        // 400 movs in ~200 cycles; the nops and pipeline fill add a few.
        assert!(
            stats.dual_issue_cycles >= 195,
            "dual issue cycles: {}",
            stats.dual_issue_cycles
        );
        assert!(stats.cpi() < 0.65, "CPI {}", stats.cpi());
    }

    #[test]
    fn raw_hazard_prevents_dual_issue() {
        // Both pairing offsets carry a RAW hazard (r0 -> r1 -> r0), the
        // pattern the paper's CPI methodology uses to suppress pairing:
        // a one-sided hazard would still dual-issue across iterations.
        let mut builder = ProgramBuilder::new(0).nops(8);
        for _ in 0..100 {
            builder = builder
                .push(Insn::mov(Reg::R0, Reg::R1))
                .push(Insn::mov(Reg::R1, Reg::R0));
        }
        let program = builder.push(Insn::halt()).build().unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).unwrap();
        let stats = cpu.run(&mut NullObserver).unwrap();
        assert_eq!(stats.dual_issue_cycles, 0);
        // Forwarding keeps CPI at 1 even though pairs are forbidden.
        assert!(
            stats.cpi() > 0.9 && stats.cpi() < 1.2,
            "CPI {}",
            stats.cpi()
        );
    }

    #[test]
    fn scalar_config_never_dual_issues() {
        let mut builder = ProgramBuilder::new(0);
        for _ in 0..50 {
            builder = builder
                .push(Insn::mov(Reg::R0, Reg::R1))
                .push(Insn::mov(Reg::R2, Reg::R3));
        }
        let program = builder.push(Insn::halt()).build().unwrap();
        let mut cpu = Cpu::new(UarchConfig::scalar().with_ideal_memory());
        cpu.load(&program).unwrap();
        let stats = cpu.run(&mut NullObserver).unwrap();
        assert_eq!(stats.dual_issue_cycles, 0);
    }

    #[test]
    fn alu_alu_does_not_pair_but_alu_imm_does() {
        let pair_cpi = |younger_imm: bool| {
            let mut builder = ProgramBuilder::new(0).nops(8);
            for _ in 0..100 {
                builder = builder
                    .push(Insn::add(Reg::R0, Reg::R1, Reg::R2))
                    .push(if younger_imm {
                        Insn::add(Reg::R3, Reg::R4, 7u32)
                    } else {
                        Insn::add(Reg::R3, Reg::R4, Reg::R5)
                    });
            }
            let program = builder.push(Insn::halt()).build().unwrap();
            let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
            cpu.load(&program).unwrap();
            cpu.run(&mut NullObserver).unwrap()
        };
        let imm = pair_cpi(true);
        let reg = pair_cpi(false);
        assert!(imm.dual_issue_cycles >= 95, "ALU+ALUimm should pair");
        assert_eq!(reg.dual_issue_cycles, 0, "ALU+ALU must not pair");
    }

    #[test]
    fn mul_and_load_streams_are_pipelined() {
        // Independent muls sustain CPI 1 (pipelined multiplier).
        let mut builder = ProgramBuilder::new(0).nops(8);
        for _ in 0..100 {
            builder = builder.push(Insn::mul(Reg::R0, Reg::R1, Reg::R2));
        }
        let program = builder.push(Insn::halt()).build().unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).unwrap();
        let stats = cpu.run(&mut NullObserver).unwrap();
        assert!(stats.cpi() < 1.2, "mul stream CPI {}", stats.cpi());

        // Dependent muls expose the 3-cycle latency.
        let mut builder = ProgramBuilder::new(0).nops(8);
        for _ in 0..100 {
            builder = builder.push(Insn::mul(Reg::R0, Reg::R0, Reg::R2));
        }
        let program = builder.push(Insn::halt()).build().unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).unwrap();
        let stats = cpu.run(&mut NullObserver).unwrap();
        assert!(stats.cpi() > 2.5, "dependent mul CPI {}", stats.cpi());
    }

    #[test]
    fn trigger_edges_are_observed() {
        let program = assemble(
            "
            nop
            trig #1
            nop
            nop
            trig #0
            halt
        ",
        )
        .unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).unwrap();
        let mut obs = RecordingObserver::new();
        cpu.run(&mut obs).unwrap();
        assert_eq!(obs.triggers.len(), 2);
        assert!(obs.triggers[0].1);
        assert!(!obs.triggers[1].1);
        assert!(obs.triggers[0].0 < obs.triggers[1].0);
    }

    #[test]
    fn restart_preserves_memory_and_caches() {
        let program = assemble(
            "
            adr r0, cell
            ldr r1, [r0]
            add r1, r1, #1
            str r1, [r0]
            halt
            .org 0x100
cell:       .word 0
        ",
        )
        .unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7());
        cpu.load(&program).unwrap();
        cpu.run(&mut NullObserver).unwrap();
        let cold_misses = cpu.stats().dcache_misses;
        assert!(cold_misses > 0);
        cpu.restart(program.entry());
        let stats = cpu.run(&mut NullObserver).unwrap();
        assert_eq!(cpu.mem().read_u32(0x100).unwrap(), 2, "memory persisted");
        assert_eq!(stats.dcache_misses, 0, "caches stayed warm");
    }

    #[test]
    fn cycle_budget_is_enforced() {
        let program = assemble("loop: b loop\n").unwrap();
        let mut config = UarchConfig::cortex_a7().with_ideal_memory();
        config.max_cycles = 500;
        let mut cpu = Cpu::new(config);
        cpu.load(&program).unwrap();
        match cpu.run(&mut NullObserver) {
            Err(UarchError::CycleBudgetExceeded(500)) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn executing_data_is_an_error() {
        let program = assemble(".word 0xffffffff\n").unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).unwrap();
        match cpu.run(&mut NullObserver) {
            Err(UarchError::BadInstruction { addr: 0, .. }) => {}
            other => panic!("expected bad instruction, got {other:?}"),
        }
    }

    #[test]
    fn condition_failed_instruction_is_squashed() {
        let (cpu, _) = run_asm(
            "
            mov r0, #1
            cmp r0, #2
            moveq r1, #99   ; Z clear: must not execute
            movne r2, #42   ; Z clear: executes
            halt
        ",
        );
        assert_eq!(cpu.reg(Reg::R1), 0);
        assert_eq!(cpu.reg(Reg::R2), 42);
    }

    #[test]
    fn load_use_hazard_stalls() {
        // ldr followed by immediate use: CPI reflects the 3-cycle load.
        let mut builder = ProgramBuilder::new(0).nops(8);
        for _ in 0..50 {
            builder = builder
                .push(Insn::ldr(Reg::R0, AddrMode::base(Reg::R10)))
                .push(Insn::add(Reg::R1, Reg::R0, 1u32));
        }
        let program = builder.push(Insn::halt()).build().unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.set_reg(Reg::R10, 0x400);
        cpu.load(&program).unwrap();
        let stats = cpu.run(&mut NullObserver).unwrap();
        assert!(stats.raw_stalls >= 50, "raw stalls {}", stats.raw_stalls);
        // Steady state: 3 cycles per (ldr, dependent add) after the
        // cross-iteration (add, ldr) pair forms — CPI ≈ 1.5.
        assert!(stats.cpi() > 1.3, "CPI {}", stats.cpi());
    }

    #[test]
    fn independent_load_stream_is_pipelined() {
        let mut builder = ProgramBuilder::new(0).nops(8);
        for _ in 0..100 {
            builder = builder.push(Insn::ldr(Reg::R0, AddrMode::base(Reg::R10)));
        }
        let program = builder.push(Insn::halt()).build().unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.set_reg(Reg::R10, 0x400);
        cpu.load(&program).unwrap();
        let stats = cpu.run(&mut NullObserver).unwrap();
        assert!(stats.cpi() < 1.2, "load stream CPI {}", stats.cpi());
    }

    #[test]
    fn push_pop_round_trip() {
        let (cpu, _) = run_asm(
            "
            mov sp, #0x800
            mov r0, #11
            mov r1, #22
            mov r4, #44
            push {r0, r1, r4, lr}
            mov r0, #0
            mov r1, #0
            mov r4, #0
            pop {r0, r1, r4, lr}
            halt
        ",
        );
        assert_eq!(cpu.reg(Reg::R0), 11);
        assert_eq!(cpu.reg(Reg::R1), 22);
        assert_eq!(cpu.reg(Reg::R4), 44);
        assert_eq!(cpu.reg(Reg::SP), 0x800, "sp restored");
    }

    #[test]
    fn ldm_stm_memory_layout() {
        // stmdb stores lowest register at lowest address; ldmia reads
        // back in the same order.
        let (cpu, _) = run_asm(
            "
            mov r10, #0x400
            mov r1, #1
            mov r2, #2
            mov r3, #3
            stmia r10, {r1-r3}
            ldmia r10!, {r4, r5, r6}
            halt
        ",
        );
        assert_eq!(cpu.mem().read_u32(0x400).unwrap(), 1);
        assert_eq!(cpu.mem().read_u32(0x404).unwrap(), 2);
        assert_eq!(cpu.mem().read_u32(0x408).unwrap(), 3);
        assert_eq!(cpu.reg(Reg::R4), 1);
        assert_eq!(cpu.reg(Reg::R5), 2);
        assert_eq!(cpu.reg(Reg::R6), 3);
        assert_eq!(cpu.reg(Reg::R10), 0x40c, "writeback advanced the base");
    }

    #[test]
    fn pop_into_pc_returns() {
        let (cpu, _) = run_asm(
            "
            mov sp, #0x800
            bl callee
            mov r1, #99
            halt
callee:     push {lr}
            mov r0, #7
            pop {pc}
        ",
        );
        assert_eq!(cpu.reg(Reg::R0), 7);
        assert_eq!(cpu.reg(Reg::R1), 99, "execution resumed after bl");
    }

    #[test]
    fn long_multiplies() {
        let (cpu, _) = run_asm(
            "
            mov   r2, #0xff000000
            mov   r3, #16
            umull r0, r1, r2, r3
            mvn   r6, #0          ; r6 = 0xffffffff = -1
            mov   r7, #5
            smull r4, r5, r6, r7  ; -1 * 5 = -5
            halt
        ",
        );
        let unsigned = (u64::from(cpu.reg(Reg::R1)) << 32) | u64::from(cpu.reg(Reg::R0));
        assert_eq!(unsigned, 0xff00_0000u64 * 16);
        let signed = ((u64::from(cpu.reg(Reg::R5)) << 32) | u64::from(cpu.reg(Reg::R4))) as i64;
        assert_eq!(signed, -5);
    }

    #[test]
    fn ldm_occupies_lsu_for_n_beats() {
        // Back-to-back 4-register ldm pairs take ~4 cycles each.
        let src = "
            mov r10, #0x400
            trig #1
            ldmia r10, {r0-r3}
            ldmia r10, {r4-r7}
            trig #0
            halt
        ";
        let program = assemble(src).unwrap();
        let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
        cpu.load(&program).unwrap();
        let mut obs = RecordingObserver::new();
        cpu.run(&mut obs).unwrap();
        let window = obs.triggers[1].0 - obs.triggers[0].0;
        // Without beat occupancy the second ldm would issue one cycle
        // after the first (window ~3); the busy LSU delays it by the
        // four beats of the first transfer.
        assert!(
            window >= 6,
            "second ldm must wait out the first's beats, got {window}"
        );
    }

    #[test]
    fn image_too_large_is_rejected() {
        let mut config = UarchConfig::cortex_a7();
        config.mem_size = 64;
        let program = Program::from_words(0, vec![0u32; 64]);
        let mut cpu = Cpu::new(config);
        assert!(matches!(
            cpu.load(&program),
            Err(UarchError::ImageTooLarge { .. })
        ));
    }
}
