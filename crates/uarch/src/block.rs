//! Lockstep multi-trace simulation: one shared pipeline control path
//! driving N independent architectural lanes.
//!
//! The portfolio ciphers are constant-time straight-line code: every
//! trace executes the same instruction sequence with the same timing,
//! differing only in the *data* flowing through the pipeline. A
//! [`CpuBlock`] exploits that by cloning one warmed template [`Cpu`]
//! into N lanes and stepping them in lockstep — the fetch/issue/retire
//! machinery, stall bookkeeping and event scheduling run **once** per
//! block, while register values, memory contents, flags and node
//! transitions stay per-lane. Each lane's observable event stream is
//! byte-identical to what a scalar [`Cpu::run`] over the same trace
//! would emit.
//!
//! Safety of the shared control path is enforced *dynamically*: every
//! control-relevant quantity (conditional outcomes, branch targets,
//! cache hit/miss penalties, fetched instruction words) is checked for
//! cross-lane uniformity at the point it would influence timing, and
//! any mismatch — or any memory fault, undecodable instruction or
//! cycle-budget overrun — aborts the block run with a [`Divergence`].
//! Callers then fall back to per-lane scalar simulation, so divergence
//! affects throughput, never results.

use std::collections::VecDeque;
use std::fmt;

use sca_isa::{
    apply_shift, decode, eval_dp, eval_mul, Insn, InsnKind, MemDir, MemMultiMode, MemOffset,
    MemSize, Operand2, Reg, ShiftAmount,
};

use crate::cpu::FrontendEntry;
use crate::{Cpu, ExecStats, Node, NodeEvent, Pipe, StallCause, UarchConfig};

/// Maximum number of lanes a [`CpuBlock`] can step at once.
pub const MAX_LANES: usize = 8;

/// Per-lane values of one node assertion (entries past the active lane
/// count are unused).
type LaneVals = [u32; MAX_LANES];

/// The lockstep invariant broke: some per-lane quantity that the shared
/// control path depends on differed across lanes (or a lane faulted).
///
/// This is not a simulator error — it means the block fast path does
/// not apply to these traces, and the caller must re-run them through
/// the scalar [`Cpu`] path, which reproduces byte-identical results
/// (and surfaces any genuine fault with full fidelity).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// What broke lockstep, for diagnostics.
    pub reason: &'static str,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lockstep divergence: {}", self.reason)
    }
}

impl std::error::Error for Divergence {}

/// Receives per-lane microarchitectural activity from a [`CpuBlock`].
///
/// The shape mirrors [`crate::PipelineObserver`] with a lane index on
/// [`BlockObserver::node_event`]; cycle boundaries, trigger edges and
/// retirements are shared across lanes by construction.
pub trait BlockObserver {
    /// Called once at the start of every simulated cycle.
    fn begin_cycle(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// A value was asserted on a tracked node of one lane.
    fn node_event(&mut self, lane: usize, event: NodeEvent) {
        let _ = (lane, event);
    }

    /// One node's assertions across all active lanes of one cycle,
    /// delivered as a batch: `events[l]` is lane `l`'s event, and all
    /// entries share the same cycle and node.
    ///
    /// The default forwards to [`BlockObserver::node_event`] lane by
    /// lane, so implementing it is purely an optimization — recorders
    /// on the hot path override it to resolve the node's kind and
    /// weights once per batch instead of once per lane, without
    /// changing the per-lane event order (and hence without changing
    /// any accumulated value).
    fn node_events(&mut self, events: &[NodeEvent]) {
        for (lane, &event) in events.iter().enumerate() {
            self.node_event(lane, event);
        }
    }

    /// The GPIO trigger pin changed level (all lanes switch together).
    fn trigger(&mut self, cycle: u64, high: bool) {
        let _ = (cycle, high);
    }

    /// An instruction retired (in every lane at once).
    fn retire(&mut self, cycle: u64, addr: u32, insn: Insn) {
        let _ = (cycle, addr, insn);
    }
}

/// A node assertion scheduled for a future cycle, carrying one value
/// per lane.
#[derive(Clone, Copy, Debug)]
struct BlockPendingEvent {
    node: Node,
    values: LaneVals,
    precharged: bool,
}

/// The block's future-event queue — structurally identical to the
/// scalar `EventQueue`, with per-lane payloads.
#[derive(Clone, Debug, Default)]
struct BlockEventQueue {
    slots: VecDeque<Vec<BlockPendingEvent>>,
    base: u64,
    pool: Vec<Vec<BlockPendingEvent>>,
}

impl BlockEventQueue {
    fn clear(&mut self) {
        while let Some(mut slot) = self.slots.pop_front() {
            slot.clear();
            self.pool.push(slot);
        }
        self.base = 0;
    }

    fn push(&mut self, at: u64, event: BlockPendingEvent) {
        debug_assert!(at >= self.base, "scheduling into the past");
        let index = (at - self.base) as usize;
        while self.slots.len() <= index {
            self.slots.push_back(self.pool.pop().unwrap_or_default());
        }
        self.slots[index].push(event);
    }

    fn drain(&mut self, cycle: u64) -> Option<Vec<BlockPendingEvent>> {
        while self.base < cycle {
            if let Some(mut slot) = self.slots.pop_front() {
                debug_assert!(slot.is_empty(), "skipped a cycle with pending events");
                slot.clear();
                self.pool.push(slot);
            }
            self.base += 1;
        }
        if self.base == cycle {
            if let Some(slot) = self.slots.pop_front() {
                self.base += 1;
                if slot.is_empty() {
                    self.pool.push(slot);
                    return None;
                }
                return Some(slot);
            }
        }
        None
    }

    fn recycle(&mut self, mut slot: Vec<BlockPendingEvent>) {
        slot.clear();
        self.pool.push(slot);
    }
}

/// An instruction in flight between issue and retirement, carrying
/// per-lane write-back values.
#[derive(Clone, Copy, Debug)]
struct BlockRetireEntry {
    addr: u32,
    insn: Insn,
    complete_at: u64,
    wb_values: Option<LaneVals>,
    pipe: Option<Pipe>,
    is_nop: bool,
}

/// Operand-bus values gathered during one dispatch, per lane — the
/// block analogue of the scalar `BusList`.
#[derive(Clone, Copy)]
struct BlockBusList {
    values: [LaneVals; 3],
    len: usize,
}

impl Default for BlockBusList {
    fn default() -> BlockBusList {
        BlockBusList {
            values: [[0; MAX_LANES]; 3],
            len: 0,
        }
    }
}

impl BlockBusList {
    fn push(&mut self, values: LaneVals) {
        self.values[self.len] = values;
        self.len += 1;
    }

    fn extend(&mut self, values: Option<LaneVals>) {
        if let Some(values) = values {
            self.push(values);
        }
    }

    fn as_slice(&self) -> &[LaneVals] {
        &self.values[..self.len]
    }
}

/// N architectural lanes behind one shared pipeline control path.
///
/// Built from a warmed template [`Cpu`] (each lane starts as a clone,
/// so caches and memory begin identical), restarted per execution with
/// per-lane scramble seeds, and run to completion like a scalar CPU.
/// All timing state — front end, hazard scoreboard, LSU occupancy,
/// retire queue, event schedule — is shared; registers, flags, memory,
/// caches and node values are per-lane.
#[derive(Clone, Debug)]
pub struct CpuBlock {
    config: UarchConfig,
    lanes: Vec<Cpu>,
    /// Lanes driven by the current run (`restart_seeded` sets it from
    /// the seed count; trailing lanes stay untouched).
    active: usize,

    pc: u32,
    cycle: u64,
    halted: bool,
    trigger_level: bool,
    frontend: VecDeque<FrontendEntry>,
    fetch_ready_at: u64,
    lsu_ready_at: u64,
    reg_ready: [u64; 16],
    flags_ready: u64,
    retire_queue: VecDeque<BlockRetireEntry>,
    pending: BlockEventQueue,
    stats: ExecStats,
}

impl CpuBlock {
    /// Builds a block of `lanes` clones of `template`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is outside `1..=`[`MAX_LANES`].
    pub fn from_template(template: &Cpu, lanes: usize) -> CpuBlock {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} outside 1..={MAX_LANES}"
        );
        CpuBlock {
            config: template.config.clone(),
            lanes: (0..lanes).map(|_| template.clone()).collect(),
            active: lanes,
            pc: 0,
            cycle: 0,
            halted: false,
            trigger_level: false,
            frontend: VecDeque::new(),
            fetch_ready_at: 0,
            lsu_ready_at: 0,
            reg_ready: [0; 16],
            flags_ready: 0,
            retire_queue: VecDeque::new(),
            pending: BlockEventQueue::default(),
            stats: ExecStats::default(),
        }
    }

    /// The block's lane capacity.
    pub fn max_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Lanes driven by the current/last run.
    pub fn active_lanes(&self) -> usize {
        self.active
    }

    /// One lane's CPU (for staging inputs and reading results).
    pub fn lane(&self, lane: usize) -> &Cpu {
        &self.lanes[lane]
    }

    /// Mutable access to one lane's CPU.
    pub fn lane_mut(&mut self, lane: usize) -> &mut Cpu {
        &mut self.lanes[lane]
    }

    /// Drains the cache hit/miss counters of the first `count` lanes
    /// (see [`Cpu::drain_cache_counts`]) and returns their sum. Lane
    /// state is untouched — callers use this to attribute cache work to
    /// committed lockstep groups (draining only the active lanes) or to
    /// discard it (draining every lane after a divergence or right after
    /// construction, when the counts are template warm-up inheritance).
    pub fn drain_cache_counts(&mut self, count: usize) -> crate::CacheCounts {
        let mut total = crate::CacheCounts::default();
        for lane in &mut self.lanes[..count] {
            total.accumulate(&lane.drain_cache_counts());
        }
        total
    }

    /// Restarts the first `scramble_seeds.len()` lanes at `entry` (each
    /// with its own node-scramble seed, exactly as the scalar
    /// [`Cpu::restart_seeded`] would) and resets the shared control
    /// state. Lanes beyond the seed count are left untouched and not
    /// driven by the next run.
    ///
    /// # Panics
    ///
    /// Panics if the seed count is zero or exceeds the lane capacity.
    pub fn restart_seeded(&mut self, entry: u32, scramble_seeds: &[u64]) {
        assert!(
            !scramble_seeds.is_empty() && scramble_seeds.len() <= self.lanes.len(),
            "seed count {} outside 1..={}",
            scramble_seeds.len(),
            self.lanes.len()
        );
        self.active = scramble_seeds.len();
        for (lane, &seed) in self.lanes.iter_mut().zip(scramble_seeds) {
            lane.restart_seeded(entry, seed);
        }
        self.pc = entry;
        self.halted = false;
        self.cycle = 0;
        self.stats = ExecStats::default();
        self.trigger_level = false;
        self.frontend.clear();
        self.retire_queue.clear();
        self.pending.clear();
        self.fetch_ready_at = 0;
        self.lsu_ready_at = 0;
        self.reg_ready = [0; 16];
        self.flags_ready = 0;
    }

    /// Runs all active lanes to `halt` in lockstep, streaming per-lane
    /// activity to `observer`.
    ///
    /// # Errors
    ///
    /// Returns [`Divergence`] when the lanes stop agreeing on control
    /// flow or timing (or a lane faults); the caller must re-simulate
    /// the affected traces through the scalar path.
    pub fn run<O: BlockObserver>(&mut self, observer: &mut O) -> Result<ExecStats, Divergence> {
        while !self.halted {
            if self.cycle >= self.config.max_cycles {
                return Err(Divergence {
                    reason: "cycle budget exceeded",
                });
            }
            self.step(observer)?;
        }
        while !self.retire_queue.is_empty() {
            self.step(observer)?;
        }
        Ok(self.stats)
    }

    fn step<O: BlockObserver>(&mut self, observer: &mut O) -> Result<(), Divergence> {
        let cycle = self.cycle;
        observer.begin_cycle(cycle);
        if let Some(events) = self.pending.drain(cycle) {
            let mut batch = [NodeEvent {
                cycle: 0,
                node: Node::Mdr,
                before: 0,
                after: 0,
            }; MAX_LANES];
            for ev in &events {
                for (l, slot) in batch.iter_mut().enumerate().take(self.active) {
                    *slot = if ev.precharged {
                        self.lanes[l]
                            .nodes
                            .assert_precharged(cycle, ev.node, ev.values[l])
                    } else {
                        self.lanes[l].nodes.assert(cycle, ev.node, ev.values[l])
                    };
                }
                observer.node_events(&batch[..self.active]);
            }
            self.pending.recycle(events);
        }
        self.retire(observer);
        if !self.halted {
            self.issue(observer)?;
            self.fetch(observer)?;
        }
        self.cycle += 1;
        self.stats.cycles += 1;
        Ok(())
    }

    // ---- helpers ---------------------------------------------------------

    /// Asserts `values[l]` on `node` in every active lane, emitting the
    /// per-lane events in lane order (each lane's own event subsequence
    /// matches the scalar emission order exactly).
    fn assert_all<O: BlockObserver>(
        &mut self,
        observer: &mut O,
        cycle: u64,
        node: Node,
        values: &LaneVals,
    ) {
        let mut batch = [NodeEvent {
            cycle: 0,
            node: Node::Mdr,
            before: 0,
            after: 0,
        }; MAX_LANES];
        for (l, slot) in batch.iter_mut().enumerate().take(self.active) {
            *slot = self.lanes[l].nodes.assert(cycle, node, values[l]);
        }
        observer.node_events(&batch[..self.active]);
    }

    /// Gathers one per-lane value.
    fn lane_vals(&self, f: impl Fn(&Cpu) -> u32) -> LaneVals {
        let mut vals = [0u32; MAX_LANES];
        for (l, cpu) in self.lanes[..self.active].iter().enumerate() {
            vals[l] = f(cpu);
        }
        vals
    }

    /// Requires a control-relevant quantity to agree across lanes.
    fn uniform(&self, vals: &LaneVals, reason: &'static str) -> Result<u32, Divergence> {
        let first = vals[0];
        if vals[1..self.active].iter().any(|&v| v != first) {
            return Err(Divergence { reason });
        }
        Ok(first)
    }

    /// Evaluates `insn`'s condition in every lane; all must agree (a
    /// split outcome would need per-lane squashing, which the shared
    /// control path cannot express).
    fn uniform_cond(&self, insn: &Insn) -> Result<bool, Divergence> {
        let first = insn.cond.passes(self.lanes[0].flags);
        for cpu in &self.lanes[1..self.active] {
            if insn.cond.passes(cpu.flags) != first {
                return Err(Divergence {
                    reason: "conditional outcome differs across lanes",
                });
            }
        }
        Ok(first)
    }

    /// Per-lane data-cache access with a shared penalty: uniform misses
    /// are fine (the shared timing absorbs them), split hit/miss is a
    /// divergence.
    fn dcache_access(&mut self, addrs: &LaneVals) -> Result<u64, Divergence> {
        let first = self.lanes[0].dcache.access(addrs[0]);
        for (lane, &addr) in self.lanes[1..self.active].iter_mut().zip(&addrs[1..]) {
            if lane.dcache.access(addr) != first {
                return Err(Divergence {
                    reason: "dcache penalty differs across lanes",
                });
            }
        }
        Ok(first)
    }

    /// Per-lane instruction-cache access with a shared penalty.
    fn icache_access(&mut self, addr: u32) -> Result<u64, Divergence> {
        let first = self.lanes[0].icache.access(addr);
        for l in 1..self.active {
            if self.lanes[l].icache.access(addr) != first {
                return Err(Divergence {
                    reason: "icache penalty differs across lanes",
                });
            }
        }
        Ok(first)
    }

    fn schedule(&mut self, at: u64, node: Node, values: LaneVals, precharged: bool) {
        self.pending.push(
            at.max(self.cycle + 1),
            BlockPendingEvent {
                node,
                values,
                precharged,
            },
        );
    }

    fn ready_cycle(&self, forward_at: u64) -> u64 {
        if self.config.forwarding {
            forward_at
        } else {
            forward_at + 2
        }
    }

    fn push_retire(
        &mut self,
        addr: u32,
        insn: Insn,
        complete_at: u64,
        wb_values: Option<LaneVals>,
        pipe: Option<Pipe>,
        is_nop: bool,
    ) {
        self.retire_queue.push_back(BlockRetireEntry {
            addr,
            insn,
            complete_at,
            wb_values,
            pipe,
            is_nop,
        });
    }

    fn redirect(&mut self, target: u32, resume_at: u64) {
        self.frontend.clear();
        self.pc = target;
        self.fetch_ready_at = resume_at;
        self.stats.taken_branches += 1;
    }

    // ---- retire stage ----------------------------------------------------

    fn retire<O: BlockObserver>(&mut self, observer: &mut O) {
        let cycle = self.cycle;
        let mut slot = 0u8;
        while slot < self.config.retire_width as u8 {
            let Some(head) = self.retire_queue.front() else {
                break;
            };
            if head.complete_at > cycle {
                break;
            }
            let entry = self.retire_queue.pop_front().expect("checked front");
            if entry.is_nop && self.config.nop_zeroes_wb {
                for bus in 0..self.config.retire_width as u8 {
                    self.assert_all(observer, cycle, Node::WbBus(bus), &[0; MAX_LANES]);
                }
            } else if let Some(values) = entry.wb_values {
                if let Some(pipe) = entry.pipe {
                    self.assert_all(observer, cycle, Node::ExWbBuf(pipe), &values);
                }
                self.assert_all(observer, cycle, Node::WbBus(slot), &values);
            }
            observer.retire(cycle, entry.addr, entry.insn);
            self.stats.instructions += 1;
            if entry.insn.is_branch() {
                self.stats.branches += 1;
            }
            slot += 1;
        }
    }

    // ---- issue stage -----------------------------------------------------

    fn issue<O: BlockObserver>(&mut self, observer: &mut O) -> Result<(), Divergence> {
        let cycle = self.cycle;
        let Some(head) = self.frontend.front().copied() else {
            self.stats.count_stall(StallCause::Frontend);
            return Ok(());
        };
        if head.ready_at > cycle {
            self.stats.count_stall(StallCause::Frontend);
            return Ok(());
        }
        // The scalar path faults here; faults are per-trace business,
        // so the block bows out and lets the fallback surface them.
        let Ok(older) = head.insn else {
            return Err(Divergence {
                reason: "undecodable instruction reached issue",
            });
        };
        if let Some(cause) = self.issue_blocker(&older) {
            self.stats.count_stall(cause);
            return Ok(());
        }

        self.frontend.pop_front();
        let redirected = self.dispatch(observer, older, head.addr, 0, Pipe::Alu0)?;
        if self.halted || redirected {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        }

        if !self.config.dual_issue {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        }
        let Some(second) = self.frontend.front().copied() else {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        };
        let (Ok(younger), true) = (second.insn, second.ready_at <= cycle) else {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        };
        // Pair legality is purely structural (register sets, ports) —
        // identical across lanes, so lane 0 answers for the block.
        let structurally_ok = self.lanes[0].pair_structurally_legal(&older, &younger);
        if structurally_ok && !self.config.policy.allows(older.class(), younger.class()) {
            self.stats.policy_rejections += 1;
            self.stats.single_issue_cycles += 1;
            return Ok(());
        }
        if !structurally_ok || self.issue_blocker(&younger).is_some() {
            self.stats.single_issue_cycles += 1;
            return Ok(());
        }
        self.frontend.pop_front();
        let bus_base = older.read_ports().min(self.config.rf_read_ports) as u8;
        let younger_pipe = Cpu::younger_default_pipe(&older, &younger);
        self.dispatch(observer, younger, second.addr, bus_base, younger_pipe)?;
        self.stats.dual_issue_cycles += 1;
        Ok(())
    }

    /// Why `insn` cannot issue this cycle, if anything — over the
    /// *shared* scoreboard (hazard timing is identical across lanes by
    /// the lockstep invariant).
    fn issue_blocker(&self, insn: &Insn) -> Option<StallCause> {
        let cycle = self.cycle;
        for reg in insn.reads().iter() {
            if reg != Reg::PC && self.reg_ready[reg.index()] > cycle {
                return Some(StallCause::RawHazard);
            }
        }
        if insn.reads_flags() && self.flags_ready > cycle {
            return Some(StallCause::FlagsHazard);
        }
        if insn.is_mem() && self.lsu_ready_at > cycle {
            return Some(StallCause::Structural);
        }
        None
    }

    // ---- dispatch / execute ----------------------------------------------

    fn drive_operand_buses<O: BlockObserver>(
        &mut self,
        observer: &mut O,
        buses: &BlockBusList,
        bus_base: u8,
    ) {
        let cycle = self.cycle;
        for (i, values) in buses.as_slice().iter().enumerate() {
            let bus = bus_base + i as u8;
            if (bus as usize) < self.config.operand_buses() {
                self.assert_all(observer, cycle, Node::RfRead(bus), values);
                self.schedule(cycle + 1, Node::OperandBus(bus), *values, false);
            }
        }
    }

    fn latch_is_ex(&mut self, pipe: Pipe, slots: &[Option<LaneVals>; 2]) {
        let cycle = self.cycle;
        for (slot, values) in slots.iter().enumerate() {
            if let Some(values) = values {
                let node = Node::IsExOp {
                    pipe,
                    slot: slot as u8,
                };
                self.schedule(cycle + 1, node, *values, false);
            }
        }
    }

    /// Issues one instruction across all lanes — a lane-vectorized
    /// mirror of the scalar `Cpu::dispatch`, same event order per lane.
    /// Returns `true` when the front end was redirected.
    fn dispatch<O: BlockObserver>(
        &mut self,
        observer: &mut O,
        insn: Insn,
        addr: u32,
        bus_base: u8,
        preferred_pipe: Pipe,
    ) -> Result<bool, Divergence> {
        let cycle = self.cycle;
        match insn.kind {
            InsnKind::Nop => {
                if self.config.nop_drives_operand_buses {
                    let mut buses = BlockBusList::default();
                    buses.push([0; MAX_LANES]);
                    buses.push([0; MAX_LANES]);
                    self.drive_operand_buses(observer, &buses, bus_base);
                }
                self.push_retire(
                    addr,
                    insn,
                    cycle + self.config.alu_latency,
                    None,
                    None,
                    true,
                );
                Ok(false)
            }
            InsnKind::Trig { high } => {
                self.trigger_level = high;
                observer.trigger(cycle, high);
                self.push_retire(addr, insn, cycle + 1, None, None, false);
                Ok(false)
            }
            InsnKind::Halt => {
                self.halted = true;
                self.push_retire(addr, insn, cycle + 1, None, None, false);
                Ok(false)
            }
            InsnKind::Dp {
                op,
                set_flags,
                rd,
                rn,
                op2,
            } => {
                let cond_pass = self.uniform_cond(&insn)?;
                let rn_vals = rn.map(|r| self.lane_vals(|cpu| cpu.operand(r, addr)));
                let mut buses = BlockBusList::default();
                buses.extend(rn_vals);
                let mut op2_vals = [0u32; MAX_LANES];
                let mut carry_vals = [false; MAX_LANES];
                let shifted = match op2 {
                    Operand2::Imm(v) => {
                        for l in 0..self.active {
                            op2_vals[l] = v;
                            carry_vals[l] = self.lanes[l].flags.c;
                        }
                        false
                    }
                    Operand2::Reg(rm) => {
                        let rm_vals = self.lane_vals(|cpu| cpu.operand(rm, addr));
                        buses.push(rm_vals);
                        for l in 0..self.active {
                            op2_vals[l] = rm_vals[l];
                            carry_vals[l] = self.lanes[l].flags.c;
                        }
                        false
                    }
                    Operand2::ShiftedReg { rm, kind, amount } => {
                        let rm_vals = self.lane_vals(|cpu| cpu.operand(rm, addr));
                        buses.push(rm_vals);
                        let mut amount_vals = [0u32; MAX_LANES];
                        match amount {
                            ShiftAmount::Imm(n) => {
                                for v in &mut amount_vals[..self.active] {
                                    *v = u32::from(n);
                                }
                            }
                            ShiftAmount::Reg(rs) => {
                                let rs_vals = self.lane_vals(|cpu| cpu.operand(rs, addr));
                                buses.push(rs_vals);
                                for l in 0..self.active {
                                    amount_vals[l] = rs_vals[l] & 0xff;
                                }
                            }
                        }
                        for l in 0..self.active {
                            let out = apply_shift(
                                kind,
                                rm_vals[l],
                                amount_vals[l],
                                self.lanes[l].flags.c,
                            );
                            op2_vals[l] = out.value;
                            carry_vals[l] = out.carry;
                        }
                        true
                    }
                };
                self.drive_operand_buses(observer, &buses, bus_base);

                let pipe = if shifted { Pipe::Alu0 } else { preferred_pipe };
                let latency = if shifted {
                    self.config.shift_latency
                } else {
                    self.config.alu_latency
                };

                if cond_pass {
                    let slots = [Some(rn_vals.unwrap_or(op2_vals)), rn_vals.map(|_| op2_vals)];
                    self.latch_is_ex(pipe, &slots);
                    if shifted {
                        self.schedule(
                            cycle + self.config.shift_latency,
                            Node::ShiftBuf,
                            op2_vals,
                            true,
                        );
                    }
                    let mut out_vals = [0u32; MAX_LANES];
                    for l in 0..self.active {
                        let out = eval_dp(
                            op,
                            rn_vals.map_or(0, |v| v[l]),
                            op2_vals[l],
                            carry_vals[l],
                            self.lanes[l].flags,
                        );
                        out_vals[l] = out.value;
                        if set_flags || op.is_compare() {
                            self.lanes[l].flags = out.flags;
                        }
                    }
                    self.schedule(cycle + latency, Node::AluOut(pipe), out_vals, true);
                    if set_flags || op.is_compare() {
                        self.flags_ready = cycle + 1;
                    }
                    if let Some(rd) = rd {
                        if rd == Reg::PC {
                            let mut targets = [0u32; MAX_LANES];
                            for l in 0..self.active {
                                targets[l] = out_vals[l] & !3;
                            }
                            let target = self
                                .uniform(&targets, "indirect branch target differs across lanes")?;
                            self.redirect(target, cycle + 1);
                            self.push_retire(addr, insn, cycle + latency, None, Some(pipe), false);
                            return Ok(true);
                        }
                        for (lane, &val) in self.lanes.iter_mut().zip(&out_vals).take(self.active) {
                            lane.regs[rd.index()] = val;
                        }
                        self.reg_ready[rd.index()] = self.ready_cycle(cycle + latency);
                        self.push_retire(
                            addr,
                            insn,
                            cycle + latency,
                            Some(out_vals),
                            Some(pipe),
                            false,
                        );
                        return Ok(false);
                    }
                    self.push_retire(addr, insn, cycle + latency, None, Some(pipe), false);
                    return Ok(false);
                }
                self.push_retire(addr, insn, cycle + latency, None, None, false);
                Ok(false)
            }
            InsnKind::Mul {
                op: _,
                set_flags,
                rd,
                rm,
                rs,
                ra,
            } => {
                let cond_pass = self.uniform_cond(&insn)?;
                let rm_vals = self.lane_vals(|cpu| cpu.operand(rm, addr));
                let rs_vals = self.lane_vals(|cpu| cpu.operand(rs, addr));
                let ra_vals = ra.map(|r| self.lane_vals(|cpu| cpu.operand(r, addr)));
                let mut buses = BlockBusList::default();
                buses.push(rm_vals);
                buses.push(rs_vals);
                buses.extend(ra_vals);
                self.drive_operand_buses(observer, &buses, bus_base);
                let latency = self.config.mul_latency;
                if cond_pass {
                    self.latch_is_ex(Pipe::Alu0, &[Some(rm_vals), Some(rs_vals)]);
                    let mut values = [0u32; MAX_LANES];
                    for l in 0..self.active {
                        let value = eval_mul(rm_vals[l], rs_vals[l], ra_vals.map(|v| v[l]));
                        values[l] = value;
                        if set_flags {
                            let mut flags = self.lanes[l].flags;
                            flags.n = value >> 31 != 0;
                            flags.z = value == 0;
                            self.lanes[l].flags = flags;
                        }
                        self.lanes[l].regs[rd.index()] = value;
                    }
                    self.schedule(cycle + latency, Node::AluOut(Pipe::Alu0), values, true);
                    if set_flags {
                        self.flags_ready = cycle + 1;
                    }
                    self.reg_ready[rd.index()] = self.ready_cycle(cycle + latency);
                    self.push_retire(
                        addr,
                        insn,
                        cycle + latency,
                        Some(values),
                        Some(Pipe::Alu0),
                        false,
                    );
                } else {
                    self.push_retire(addr, insn, cycle + latency, None, None, false);
                }
                Ok(false)
            }
            InsnKind::Mem {
                dir,
                size,
                rd,
                addr: mode,
            } => {
                let cond_pass = self.uniform_cond(&insn)?;
                let base_vals = self.lane_vals(|cpu| cpu.operand(mode.base, addr));
                let mut offset_vals = [0i64; MAX_LANES];
                let mut offset_bus: Option<LaneVals> = None;
                match mode.offset {
                    MemOffset::Imm(imm) => {
                        for v in &mut offset_vals[..self.active] {
                            *v = i64::from(imm);
                        }
                    }
                    MemOffset::Reg {
                        rm,
                        kind,
                        amount,
                        sub,
                    } => {
                        let rm_vals = self.lane_vals(|cpu| cpu.operand(rm, addr));
                        for l in 0..self.active {
                            let shifted = apply_shift(
                                kind,
                                rm_vals[l],
                                u32::from(amount),
                                self.lanes[l].flags.c,
                            )
                            .value;
                            offset_vals[l] = if sub {
                                -i64::from(shifted)
                            } else {
                                i64::from(shifted)
                            };
                        }
                        offset_bus = Some(rm_vals);
                    }
                }
                let mut effective = [0u32; MAX_LANES];
                let mut access = [0u32; MAX_LANES];
                for l in 0..self.active {
                    effective[l] = (i64::from(base_vals[l]) + offset_vals[l]) as u32;
                    access[l] = match mode.index {
                        sca_isa::IndexMode::PostIndex => base_vals[l],
                        _ => effective[l],
                    };
                }

                let mut buses = BlockBusList::default();
                buses.push(base_vals);
                buses.extend(offset_bus);
                let data_vals =
                    (dir == MemDir::Store).then(|| self.lane_vals(|cpu| cpu.operand(rd, addr)));
                buses.extend(data_vals);
                self.drive_operand_buses(observer, &buses, bus_base);

                if !cond_pass {
                    self.push_retire(
                        addr,
                        insn,
                        cycle + self.config.load_latency,
                        None,
                        None,
                        false,
                    );
                    return Ok(false);
                }

                if mode.writes_base() {
                    for (lane, &val) in self.lanes.iter_mut().zip(&effective).take(self.active) {
                        lane.regs[mode.base.index()] = val;
                    }
                    self.reg_ready[mode.base.index()] = self.ready_cycle(cycle + 1);
                }

                self.latch_is_ex(Pipe::Lsu, &[Some(access), data_vals]);

                let penalty = self.dcache_access(&access)?;
                if penalty > 0 {
                    self.stats.dcache_misses += 1;
                    self.lsu_ready_at = cycle + 1 + penalty;
                }
                let complete_at = cycle + self.config.load_latency + penalty;

                let fault = Divergence {
                    reason: "memory fault inside a lockstep block",
                };
                match dir {
                    MemDir::Load => {
                        let mut values = [0u32; MAX_LANES];
                        let mut words = [0u32; MAX_LANES];
                        for l in 0..self.active {
                            let mem = &self.lanes[l].mem;
                            values[l] = match size {
                                MemSize::Word => mem.read_u32(access[l]),
                                MemSize::Byte => mem.read_u8(access[l]).map(u32::from),
                                MemSize::Half => mem.read_u16(access[l]).map(u32::from),
                            }
                            .map_err(|_| fault)?;
                            words[l] = mem.containing_word(access[l]).map_err(|_| fault)?;
                        }
                        self.schedule(complete_at, Node::Mdr, words, false);
                        if size.is_subword() && self.config.align_buffer {
                            self.schedule(complete_at, Node::AlignBuf, values, false);
                        }
                        if rd == Reg::PC {
                            let mut targets = [0u32; MAX_LANES];
                            for l in 0..self.active {
                                targets[l] = values[l] & !3;
                            }
                            let target = self
                                .uniform(&targets, "indirect branch target differs across lanes")?;
                            self.redirect(target, complete_at);
                            self.push_retire(addr, insn, complete_at, None, Some(Pipe::Lsu), false);
                            return Ok(true);
                        }
                        for (lane, &val) in self.lanes.iter_mut().zip(&values).take(self.active) {
                            lane.regs[rd.index()] = val;
                        }
                        self.reg_ready[rd.index()] = self.ready_cycle(complete_at);
                        self.push_retire(
                            addr,
                            insn,
                            complete_at,
                            Some(values),
                            Some(Pipe::Lsu),
                            false,
                        );
                    }
                    MemDir::Store => {
                        let data = data_vals.expect("stores read their data register");
                        let mut words = [0u32; MAX_LANES];
                        let mut subs = [0u32; MAX_LANES];
                        for l in 0..self.active {
                            let value = data[l];
                            let mem = &mut self.lanes[l].mem;
                            match size {
                                MemSize::Word => mem.write_u32(access[l], value),
                                MemSize::Byte => mem.write_u8(access[l], value as u8),
                                MemSize::Half => mem.write_u16(access[l], value as u16),
                            }
                            .map_err(|_| fault)?;
                            words[l] = mem.containing_word(access[l]).map_err(|_| fault)?;
                            subs[l] = match size {
                                MemSize::Byte => value & 0xff,
                                _ => value & 0xffff,
                            };
                        }
                        self.schedule(complete_at, Node::Mdr, words, false);
                        if size.is_subword() && self.config.align_buffer {
                            self.schedule(complete_at, Node::AlignBuf, subs, false);
                        }
                        self.push_retire(addr, insn, complete_at, None, None, false);
                    }
                }
                Ok(false)
            }
            InsnKind::MemMulti {
                dir,
                base,
                writeback,
                regs,
                mode,
            } => {
                let cond_pass = self.uniform_cond(&insn)?;
                let base_vals = self.lane_vals(|cpu| cpu.operand(base, addr));
                let n = regs.len() as u32;
                let mut start = [0u32; MAX_LANES];
                for l in 0..self.active {
                    start[l] = match mode {
                        MemMultiMode::Ia => base_vals[l],
                        MemMultiMode::Db => base_vals[l].wrapping_sub(4 * n),
                    };
                }
                let mut buses = BlockBusList::default();
                buses.push(base_vals);
                self.drive_operand_buses(observer, &buses, bus_base);
                if !cond_pass {
                    self.push_retire(
                        addr,
                        insn,
                        cycle + self.config.load_latency,
                        None,
                        None,
                        false,
                    );
                    return Ok(false);
                }
                self.latch_is_ex(Pipe::Lsu, &[Some(start), None]);

                let base_reloaded = dir == MemDir::Load && regs.contains(base);
                if writeback && !base_reloaded {
                    for l in 0..self.active {
                        self.lanes[l].regs[base.index()] = match mode {
                            MemMultiMode::Ia => base_vals[l].wrapping_add(4 * n),
                            MemMultiMode::Db => start[l],
                        };
                    }
                    self.reg_ready[base.index()] = self.ready_cycle(cycle + 1);
                }

                let fault = Divergence {
                    reason: "memory fault inside a lockstep block",
                };
                let mut penalty_total: u64 = 0;
                let mut last_values = [0u32; MAX_LANES];
                let mut redirect_target: Option<(u32, u64)> = None;
                for (i, reg) in regs.iter().enumerate() {
                    let mut beat_addrs = [0u32; MAX_LANES];
                    for l in 0..self.active {
                        beat_addrs[l] = start[l].wrapping_add(4 * i as u32);
                    }
                    let penalty = self.dcache_access(&beat_addrs)?;
                    if penalty > 0 {
                        self.stats.dcache_misses += 1;
                    }
                    penalty_total += penalty;
                    let beat_complete = cycle + self.config.load_latency + i as u64 + penalty_total;
                    match dir {
                        MemDir::Load => {
                            let mut values = [0u32; MAX_LANES];
                            for l in 0..self.active {
                                values[l] = self.lanes[l]
                                    .mem
                                    .read_u32(beat_addrs[l])
                                    .map_err(|_| fault)?;
                            }
                            self.schedule(beat_complete, Node::Mdr, values, false);
                            if reg == Reg::PC {
                                let mut targets = [0u32; MAX_LANES];
                                for l in 0..self.active {
                                    targets[l] = values[l] & !3;
                                }
                                let target = self.uniform(
                                    &targets,
                                    "indirect branch target differs across lanes",
                                )?;
                                redirect_target = Some((target, beat_complete));
                            } else {
                                for (lane, &val) in
                                    self.lanes.iter_mut().zip(&values).take(self.active)
                                {
                                    lane.regs[reg.index()] = val;
                                }
                                self.reg_ready[reg.index()] = self.ready_cycle(beat_complete);
                            }
                            last_values = values;
                        }
                        MemDir::Store => {
                            let values = self.lane_vals(|cpu| cpu.operand(reg, addr));
                            for l in 0..self.active {
                                self.lanes[l]
                                    .mem
                                    .write_u32(beat_addrs[l], values[l])
                                    .map_err(|_| fault)?;
                            }
                            self.schedule(beat_complete, Node::Mdr, values, false);
                            last_values = values;
                        }
                    }
                }
                let beats = u64::from(n.max(1));
                let complete = cycle + self.config.load_latency + beats - 1 + penalty_total;
                self.lsu_ready_at = cycle + beats + penalty_total;
                let wb_values = (dir == MemDir::Load).then_some(last_values);
                self.push_retire(addr, insn, complete, wb_values, Some(Pipe::Lsu), false);
                if let Some((target, at)) = redirect_target {
                    self.redirect(target, at);
                    return Ok(true);
                }
                Ok(false)
            }
            InsnKind::MulLong {
                signed,
                rd_hi,
                rd_lo,
                rm,
                rs,
            } => {
                let cond_pass = self.uniform_cond(&insn)?;
                let rm_vals = self.lane_vals(|cpu| cpu.operand(rm, addr));
                let rs_vals = self.lane_vals(|cpu| cpu.operand(rs, addr));
                let mut buses = BlockBusList::default();
                buses.push(rm_vals);
                buses.push(rs_vals);
                self.drive_operand_buses(observer, &buses, bus_base);
                let latency = self.config.mul_latency + 1;
                if cond_pass {
                    self.latch_is_ex(Pipe::Alu0, &[Some(rm_vals), Some(rs_vals)]);
                    let mut lo = [0u32; MAX_LANES];
                    let mut hi = [0u32; MAX_LANES];
                    for l in 0..self.active {
                        let product = if signed {
                            (i64::from(rm_vals[l] as i32) * i64::from(rs_vals[l] as i32)) as u64
                        } else {
                            u64::from(rm_vals[l]) * u64::from(rs_vals[l])
                        };
                        lo[l] = product as u32;
                        hi[l] = (product >> 32) as u32;
                        self.lanes[l].regs[rd_lo.index()] = lo[l];
                        self.lanes[l].regs[rd_hi.index()] = hi[l];
                    }
                    self.schedule(cycle + latency - 1, Node::AluOut(Pipe::Alu0), lo, true);
                    self.schedule(cycle + latency, Node::AluOut(Pipe::Alu0), hi, true);
                    self.reg_ready[rd_lo.index()] = self.ready_cycle(cycle + latency - 1);
                    self.reg_ready[rd_hi.index()] = self.ready_cycle(cycle + latency);
                    self.push_retire(
                        addr,
                        insn,
                        cycle + latency,
                        Some(hi),
                        Some(Pipe::Alu0),
                        false,
                    );
                } else {
                    self.push_retire(addr, insn, cycle + latency, None, None, false);
                }
                Ok(false)
            }
            InsnKind::Branch { link, offset } => {
                let cond_pass = self.uniform_cond(&insn)?;
                if cond_pass {
                    if link {
                        for l in 0..self.active {
                            self.lanes[l].regs[Reg::LR.index()] = addr.wrapping_add(4);
                        }
                        self.reg_ready[Reg::LR.index()] = self.ready_cycle(cycle + 1);
                    }
                    let target = addr
                        .wrapping_add(4)
                        .wrapping_add((offset as u32).wrapping_mul(4));
                    self.redirect(target, cycle + 1);
                    self.push_retire(addr, insn, cycle + 1, None, None, false);
                    return Ok(true);
                }
                self.push_retire(addr, insn, cycle + 1, None, None, false);
                Ok(false)
            }
            InsnKind::Bx { rm } => {
                let cond_pass = self.uniform_cond(&insn)?;
                let rm_vals = self.lane_vals(|cpu| cpu.operand(rm, addr));
                let mut buses = BlockBusList::default();
                buses.push(rm_vals);
                self.drive_operand_buses(observer, &buses, bus_base);
                if cond_pass {
                    let mut targets = [0u32; MAX_LANES];
                    for l in 0..self.active {
                        targets[l] = rm_vals[l] & !3;
                    }
                    let target =
                        self.uniform(&targets, "indirect branch target differs across lanes")?;
                    self.redirect(target, cycle + 1);
                    self.push_retire(addr, insn, cycle + 1, None, None, false);
                    return Ok(true);
                }
                self.push_retire(addr, insn, cycle + 1, None, None, false);
                Ok(false)
            }
        }
    }

    // ---- fetch stage -----------------------------------------------------

    fn fetch<O: BlockObserver>(&mut self, observer: &mut O) -> Result<(), Divergence> {
        let cycle = self.cycle;
        if cycle < self.fetch_ready_at {
            return Ok(());
        }
        let mut fetched = 0u8;
        while fetched < self.config.fetch_width as u8
            && self.frontend.len() < self.config.frontend_capacity
        {
            let addr = self.pc;
            // Lanes share the program image, so fetched words (and
            // fetch-fault status) must agree everywhere.
            let first = self.lanes[0].mem.read_u32(addr).ok();
            for l in 1..self.active {
                if self.lanes[l].mem.read_u32(addr).ok() != first {
                    return Err(Divergence {
                        reason: "fetched instruction word differs across lanes",
                    });
                }
            }
            let Some(word) = first else {
                // Running off the image: stop fetching, as the scalar
                // path does; issue diverges only if execution gets here.
                break;
            };
            let penalty = self.icache_access(addr)?;
            if penalty > 0 {
                self.stats.icache_misses += 1;
                self.fetch_ready_at = cycle + penalty;
            }
            self.assert_all(
                observer,
                cycle,
                Node::FetchWord(fetched),
                &[word; MAX_LANES],
            );
            self.frontend.push_back(FrontendEntry {
                addr,
                insn: decode(word).map_err(|_| word),
                ready_at: cycle + self.config.frontend_latency + penalty,
            });
            self.pc = addr.wrapping_add(4);
            fetched += 1;
            if penalty > 0 {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullObserver, UarchConfig};
    use sca_isa::assemble;

    /// Collects one scalar-shaped event stream per lane.
    #[derive(Default)]
    struct PerLaneRecorder {
        events: Vec<Vec<(u64, Node, u32, u32)>>,
        triggers: Vec<(u64, bool)>,
    }

    impl PerLaneRecorder {
        fn new(lanes: usize) -> PerLaneRecorder {
            PerLaneRecorder {
                events: vec![Vec::new(); lanes],
                triggers: Vec::new(),
            }
        }
    }

    impl BlockObserver for PerLaneRecorder {
        fn node_event(&mut self, lane: usize, event: NodeEvent) {
            self.events[lane].push((event.cycle, event.node, event.before, event.after));
        }

        fn trigger(&mut self, cycle: u64, high: bool) {
            self.triggers.push((cycle, high));
        }
    }

    /// Scalar observer with the same tuple shape for direct comparison.
    #[derive(Default)]
    struct ScalarRecorder {
        events: Vec<(u64, Node, u32, u32)>,
        triggers: Vec<(u64, bool)>,
    }

    impl crate::PipelineObserver for ScalarRecorder {
        fn node_event(&mut self, event: NodeEvent) {
            self.events
                .push((event.cycle, event.node, event.before, event.after));
        }

        fn trigger(&mut self, cycle: u64, high: bool) {
            self.triggers.push((cycle, high));
        }
    }

    /// A small data-dependent (in values, not control) program: loads a
    /// per-lane word, mixes it through ALU/shifter/multiplier paths and
    /// stores it back.
    const MIX_SRC: &str = "
        nop
        nop
        trig #1
        adr r10, data
        ldr r0, [r10]
        add r1, r0, r0, lsl #3
        mul r2, r1, r0
        eor r3, r2, r0, ror #7
        umull r4, r5, r3, r1
        strb r3, [r10, #4]
        ldrh r6, [r10, #4]
        stmia r10!, {r3, r4, r5}
        sub r10, r10, #12
        str r4, [r10, #8]
        trig #0
        halt
        .org 0x100
data:   .word 0
        .word 0
        .word 0
        .word 0
    ";

    fn template() -> Cpu {
        let program = assemble(MIX_SRC).expect("assembles");
        let mut cpu = Cpu::new(UarchConfig::cortex_a7());
        cpu.load(&program).expect("loads");
        // Warm caches exactly like the acquisition protocol does.
        cpu.run(&mut NullObserver).expect("warm-up runs");
        cpu
    }

    #[test]
    fn lockstep_event_streams_match_scalar_lanes() {
        let template = template();
        let inputs: [u32; 5] = [0xdead_beef, 0, 0xffff_ffff, 0x1234_5678, 0x0f0f_0f0f];
        for lanes in [1usize, 2, 5] {
            let seeds: Vec<u64> = (0..lanes as u64).map(|l| 0x1000 + 7 * l).collect();

            let mut block = CpuBlock::from_template(&template, lanes);
            block.restart_seeded(0, &seeds);
            for (l, &input) in inputs.iter().take(lanes).enumerate() {
                block.lane_mut(l).mem_mut().write_u32(0x100, input).unwrap();
            }
            let mut rec = PerLaneRecorder::new(lanes);
            let block_stats = block.run(&mut rec).expect("no divergence");

            for (l, &input) in inputs.iter().take(lanes).enumerate() {
                let mut cpu = template.clone();
                cpu.restart_seeded(0, seeds[l]);
                cpu.mem_mut().write_u32(0x100, input).unwrap();
                let mut scalar = ScalarRecorder::default();
                let stats = cpu.run(&mut scalar).expect("scalar runs");
                assert_eq!(stats, block_stats, "stats (lane {l} of {lanes})");
                assert_eq!(scalar.triggers, rec.triggers, "triggers (lane {l})");
                assert_eq!(
                    scalar.events, rec.events[l],
                    "event stream (lane {l} of {lanes})"
                );
                for r in 0..16 {
                    assert_eq!(
                        cpu.regs[r],
                        block.lane(l).regs[r],
                        "r{r} (lane {l} of {lanes})"
                    );
                }
            }
        }
    }

    #[test]
    fn divergent_control_flow_is_detected() {
        // A conditional whose outcome depends on the loaded value: lanes
        // disagree, so the block must refuse rather than corrupt.
        let src = "
            adr r10, data
            ldr r0, [r10]
            cmp r0, #1
            moveq r1, #7
            halt
            .org 0x100
data:       .word 0
        ";
        let program = assemble(src).expect("assembles");
        let mut cpu = Cpu::new(UarchConfig::cortex_a7());
        cpu.load(&program).expect("loads");
        cpu.run(&mut NullObserver).expect("warm-up");
        let mut block = CpuBlock::from_template(&cpu, 2);
        block.restart_seeded(0, &[1, 2]);
        block.lane_mut(0).mem_mut().write_u32(0x100, 1).unwrap();
        block.lane_mut(1).mem_mut().write_u32(0x100, 2).unwrap();
        let err = block.run(&mut NullRec).expect_err("must diverge");
        assert!(err.reason.contains("conditional"), "{err}");
    }

    struct NullRec;

    impl BlockObserver for NullRec {}

    #[test]
    fn lane_count_bounds_are_enforced() {
        let cpu = Cpu::new(UarchConfig::cortex_a7());
        let result = std::panic::catch_unwind(|| CpuBlock::from_template(&cpu, 0));
        assert!(result.is_err());
        let result = std::panic::catch_unwind(|| CpuBlock::from_template(&cpu, MAX_LANES + 1));
        assert!(result.is_err());
    }
}
