//! Deterministic, dependency-free telemetry for the whole stack.
//!
//! One [`Registry`] holds three metric families plus a span-time tree:
//!
//! * [`Counter`] — monotonic `u64` work counters (traces simulated,
//!   pages written, cache accesses). Counters measure *work*, never
//!   time, so their values are a pure function of the campaign — the
//!   determinism tests assert byte-identical counts across thread and
//!   lane counts.
//! * [`Gauge`] — a current level plus its high-water mark (queue
//!   depth).
//! * [`Histogram`] — fixed log-spaced buckets of `u64` (slice
//!   latencies). Wall-clock valued, so observability-only.
//! * spans — RAII timers ([`span()`] / [`span!`]) that build a
//!   hierarchical phase-time tree (`portfolio/aes128/cpa-hw/simulate`)
//!   from a thread-local path stack. Worker threads graft their spans
//!   under the path their spawner captured with
//!   [`current_span_path`] + [`span_at`].
//!
//! # The determinism contract
//!
//! Telemetry must never perturb results: nothing here touches stdout
//! (exporters write to strings; the binaries route them to stderr or
//! files), nothing draws from any RNG, and counters are plain relaxed
//! atomics. Counter *values* are part of the reproducibility surface —
//! work counters are identical across `--threads` and `--lanes` — while
//! span durations and histograms are wall clock and therefore excluded
//! from every invariance assertion.
//!
//! Hot paths stay allocation-free by caching handles: resolve a metric
//! once ([`counter!`] keeps a per-call-site `OnceLock`) and bump the
//! returned atomic thereafter. Span bookkeeping locks a mutex only at
//! span *end* (a few times per worker batch, never per trace).
//!
//! Most code uses the process-wide [`global`] registry; the campaign
//! server additionally owns a private `Registry` instance so that
//! several servers in one test process keep separate books.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

mod export;

pub use export::{render_metrics_json, render_summary, render_wire, top_level_seconds};

/// A monotonic `u64` counter. Cheap to bump from any thread.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A current level plus its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// Sets the level (and raises the peak if exceeded).
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
        self.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    #[must_use]
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket bounds (seconds): log-spaced from 1 ms to
/// 10 s, a fit for slice latencies.
pub const LATENCY_BUCKETS: [f64; 9] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0];

/// A fixed-bucket histogram of seconds. Bucket `i` counts observations
/// `<= bounds[i]`; one implicit overflow bucket catches the rest. The
/// sum is kept in integer microseconds so observation never needs a
/// compare-and-swap loop.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation of `seconds`.
    pub fn observe(&self, seconds: f64) {
        let at = self
            .bounds
            .iter()
            .position(|&b| seconds <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[at].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micros = (seconds * 1e6).max(0.0) as u64;
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, in seconds (microsecond resolution).
    #[must_use]
    pub fn sum_seconds(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum_seconds: self.sum_seconds(),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds, seconds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries; last = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations, seconds.
    pub sum_seconds: f64,
}

/// Accumulated time under one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStat {
    /// Total seconds spent under this path.
    pub seconds: f64,
    /// Completed spans recorded at this path.
    pub count: u64,
}

/// A metric registry: named counters, gauges, histograms and the span
/// tree. Handles are `Arc`s — resolve once, bump forever.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("telemetry lock");
        Arc::clone(
            counters
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().expect("telemetry lock");
        Arc::clone(
            gauges
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram named `name`, created with `bounds` on first use
    /// (later calls keep the original bounds).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("telemetry lock");
        Arc::clone(
            histograms
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Folds `seconds` into the span stat at `path`.
    pub fn record_span(&self, path: &str, seconds: f64) {
        let mut spans = self.spans.lock().expect("telemetry lock");
        let stat = spans.entry(path.to_owned()).or_default();
        stat.seconds += seconds;
        stat.count += 1;
    }

    /// A point-in-time copy of every metric, sorted by name (BTreeMap
    /// order), so exports are deterministic given the values.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(name, g)| (name.clone(), (g.get(), g.peak())))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
            spans: self
                .spans
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(path, stat)| (path.clone(), *stat))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`], ready for export or
/// delta arithmetic. All vectors are name-sorted.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, (value, peak))` gauges.
    pub gauges: Vec<(String, (i64, i64))>,
    /// `(name, snapshot)` histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(path, stat)` span tree, path-sorted.
    pub spans: Vec<(String, SpanStat)>,
}

impl Snapshot {
    /// The counter's value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The span stat at `path`, if any span ended there.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<SpanStat> {
        self.spans.iter().find(|(p, _)| p == path).map(|(_, s)| *s)
    }

    /// `self.counter(name) - earlier.counter(name)` — the exact-delta
    /// idiom the determinism tests are written in.
    #[must_use]
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }

    /// Folds another snapshot in (e.g. a per-server registry merged with
    /// the process-global one), restoring name-sorted order. Names are
    /// expected to be disjoint; on a collision both entries are kept,
    /// sorted adjacently.
    pub fn merge(&mut self, other: Snapshot) {
        self.counters.extend(other.counters);
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.extend(other.gauges);
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.extend(other.histograms);
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        self.spans.extend(other.spans);
        self.spans.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

/// The process-wide default registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Whether span timing is enabled (counters are unconditionally on —
/// exact-delta tests depend on them). `SCA_TELEMETRY=0|off|false`
/// disables span collection; anything else (including unset) enables
/// it. Read once per process.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("SCA_TELEMETRY").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

std::thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<String>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The calling thread's current span path (`"a/b/c"`), empty outside
/// any span. Capture it before handing work to other threads and graft
/// their spans under it with [`span_at`].
#[must_use]
pub fn current_span_path() -> String {
    SPAN_STACK.with(|stack| stack.borrow().join("/"))
}

/// Joins a (possibly empty) parent path and a child name.
#[must_use]
pub fn child_path(parent: &str, name: &str) -> String {
    if parent.is_empty() {
        name.to_owned()
    } else {
        format!("{parent}/{name}")
    }
}

/// An RAII span timer: records elapsed wall clock into the global
/// registry's span tree when dropped. A no-op when [`enabled`] is off.
#[derive(Debug)]
pub struct Span {
    /// Full path this span records under; `None` = disabled no-op.
    path: Option<String>,
    /// Whether the path was pushed on the thread-local stack.
    stacked: bool,
    start: Instant,
}

impl Span {
    fn disabled() -> Span {
        Span {
            path: None,
            stacked: false,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.stacked {
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
        if let Some(path) = self.path.take() {
            global().record_span(&path, self.start.elapsed().as_secs_f64());
        }
    }
}

/// Opens a span named `name` nested under the thread's current span
/// (pushing onto the thread-local path stack).
#[must_use]
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_owned());
        stack.join("/")
    });
    Span {
        path: Some(path),
        stacked: true,
        start: Instant::now(),
    }
}

/// Opens a span at an explicit full `path`, ignoring (and not touching)
/// the thread-local stack — how worker threads nest under the phase
/// their spawner captured with [`current_span_path`].
#[must_use]
pub fn span_at(path: String) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    Span {
        path: Some(path),
        stacked: false,
        start: Instant::now(),
    }
}

/// [`span()`] with `format!` arguments: `span!("cpa-{kind}")`.
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        $crate::span(&format!($($arg)*))
    };
}

/// A cached global-counter handle, resolved once per call site:
/// `counter!("campaign/traces_simulated").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().counter($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = Registry::new();
        let c = reg.counter("a/b");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        // Same name, same counter.
        reg.counter("a/b").add(1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a/b"), 5);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_track_peaks() {
        let reg = Registry::new();
        let g = reg.gauge("queue");
        g.set(3);
        g.set(7);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 7);
    }

    #[test]
    fn histograms_bucket_observations() {
        let h = Histogram::new(&[0.01, 0.1, 1.0]);
        h.observe(0.005);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![1, 1, 1, 1]);
        assert_eq!(snap.count, 4);
        assert!((snap.sum_seconds - 5.555).abs() < 1e-3);
    }

    #[test]
    fn snapshots_are_name_sorted_and_delta_friendly() {
        let reg = Registry::new();
        reg.counter("z").add(1);
        reg.counter("a").add(2);
        let before = reg.snapshot();
        reg.counter("a").add(40);
        let after = reg.snapshot();
        let names: Vec<&str> = after.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(after.counter_delta(&before, "a"), 40);
        assert_eq!(after.counter_delta(&before, "z"), 0);
    }

    #[test]
    fn span_paths_nest_on_one_thread_and_graft_across_threads() {
        // Serialize with the other span test: the stack is thread-local
        // but the recorded tree lives in the global registry.
        let outer = span("t-outer");
        assert_eq!(current_span_path(), "t-outer");
        let parent = current_span_path();
        {
            let _inner = span("t-inner");
            assert_eq!(current_span_path(), "t-outer/t-inner");
        }
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    // Worker threads see an empty stack...
                    assert_eq!(current_span_path(), "");
                    // ...and graft under the captured parent explicitly.
                    let _w = span_at(child_path(&parent, "t-worker"));
                })
                .join()
                .expect("worker");
        });
        drop(outer);
        let snap = global().snapshot();
        assert!(snap.span("t-outer").is_some());
        assert!(snap.span("t-outer/t-inner").is_some());
        assert!(snap.span("t-outer/t-worker").is_some());
        let outer = snap.span("t-outer").expect("recorded");
        assert!(outer.seconds >= 0.0 && outer.count >= 1);
    }

    #[test]
    fn counter_macro_caches_one_handle() {
        let a = counter!("t-macro/hits");
        a.add(2);
        counter!("t-macro/hits").add(3);
        assert_eq!(global().counter("t-macro/hits").get(), 5);
    }

    #[test]
    fn child_path_handles_empty_parents() {
        assert_eq!(child_path("", "simulate"), "simulate");
        assert_eq!(child_path("a/b", "simulate"), "a/b/simulate");
    }
}
