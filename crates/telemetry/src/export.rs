//! Snapshot exporters: a human tree for stderr, `customSmallerIsBetter`
//! JSON for `--metrics-json`, and line-per-metric text for the server's
//! `metrics` wire command.
//!
//! Nothing here writes anywhere — everything returns strings, and the
//! callers route them to stderr, a file, or a socket. Stdout is off
//! limits by the telemetry determinism contract.

use crate::{Snapshot, SpanStat};

/// Renders a human-readable summary: the span tree indented by path
/// depth, then counters, gauges and histograms. Intended for stderr.
#[must_use]
pub fn render_summary(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.spans.is_empty() {
        out.push_str("phase times:\n");
        // Sort component-wise, not as plain strings: under a byte sort
        // "aes128-masked" lands between "aes128" and "aes128/…"
        // ('-' < '/'), detaching a parent from its children. Comparing
        // path segments keeps every subtree contiguous, so iteration
        // prints the tree depth-first.
        let mut spans: Vec<_> = snapshot.spans.iter().collect();
        spans.sort_by(|(a, _), (b, _)| {
            a.split('/')
                .collect::<Vec<_>>()
                .cmp(&b.split('/').collect())
        });
        for (path, stat) in spans {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            out.push_str(&format!(
                "{:indent$}{name:<24} {:>10.3}s  x{}\n",
                "",
                stat.seconds,
                stat.count,
                indent = 2 + depth * 2,
            ));
        }
    }
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("  {name:<40} {value}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, (value, peak)) in &snapshot.gauges {
            out.push_str(&format!("  {name:<40} {value} (peak {peak})\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snapshot.histograms {
            out.push_str(&format!(
                "  {name:<40} n={} sum={:.3}s\n",
                h.count, h.sum_seconds
            ));
        }
    }
    out
}

fn push_entry(entries: &mut Vec<String>, name: &str, unit: &str, value: &str) {
    entries.push(format!(
        "  {{ \"name\": \"{name}\", \"unit\": \"{unit}\", \"value\": {value} }}"
    ));
}

/// Renders the snapshot as a `customSmallerIsBetter` JSON array — the
/// same shape as `PortfolioResult::timings_json`, so CI benchmark
/// trackers and the perf gate can ingest per-phase numbers directly.
///
/// Span entries are named `span/<path>` with unit `"s"`; counters keep
/// their registry names with unit `"count"` and integer values (so the
/// file's counter lines are byte-comparable across runs); gauges export
/// their peak as `<name>/peak`; histograms export `<name>/count` and
/// `<name>/sum` (unit `"s"`).
#[must_use]
pub fn render_metrics_json(snapshot: &Snapshot) -> String {
    let mut entries = Vec::new();
    for (path, stat) in &snapshot.spans {
        push_entry(
            &mut entries,
            &format!("span/{path}"),
            "s",
            &format!("{:.6}", stat.seconds),
        );
    }
    for (name, value) in &snapshot.counters {
        push_entry(&mut entries, name, "count", &value.to_string());
    }
    for (name, (value, peak)) in &snapshot.gauges {
        push_entry(&mut entries, name, "count", &value.to_string());
        push_entry(
            &mut entries,
            &format!("{name}/peak"),
            "count",
            &peak.to_string(),
        );
    }
    for (name, h) in &snapshot.histograms {
        push_entry(
            &mut entries,
            &format!("{name}/count"),
            "count",
            &h.count.to_string(),
        );
        push_entry(
            &mut entries,
            &format!("{name}/sum"),
            "s",
            &format!("{:.6}", h.sum_seconds),
        );
    }
    format!("[\n{}\n]\n", entries.join(",\n"))
}

/// Renders the snapshot as `metric <name>=<value>` wire lines (no
/// terminator — the server appends its own `metrics-end`). Spans are
/// `span/<path>=<seconds>`; gauges add `<name>/peak`; histograms add
/// `<name>/count` and `<name>/sum`.
#[must_use]
pub fn render_wire(snapshot: &Snapshot) -> Vec<String> {
    let mut lines = Vec::new();
    for (path, stat) in &snapshot.spans {
        lines.push(format!("metric span/{path}={:.6}", stat.seconds));
    }
    for (name, value) in &snapshot.counters {
        lines.push(format!("metric {name}={value}"));
    }
    for (name, (value, peak)) in &snapshot.gauges {
        lines.push(format!("metric {name}={value}"));
        lines.push(format!("metric {name}/peak={peak}"));
    }
    for (name, h) in &snapshot.histograms {
        lines.push(format!("metric {name}/count={}", h.count));
        lines.push(format!("metric {name}/sum={:.6}", h.sum_seconds));
    }
    lines
}

/// Sums the `seconds` of the top-level spans (paths without `/`) — the
/// “phase times cover the wall clock” denominator used by the metrics
/// checker.
#[must_use]
pub fn top_level_seconds(spans: &[(String, SpanStat)]) -> f64 {
    spans
        .iter()
        .filter(|(path, _)| !path.contains('/'))
        .map(|(_, stat)| stat.seconds)
        .sum()
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    use super::*;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("campaign/traces_simulated").add(700);
        reg.gauge("server/queue_depth").set(3);
        reg.histogram("server/slice_seconds", &[0.1, 1.0])
            .observe(0.25);
        reg.record_span("portfolio", 2.0);
        reg.record_span("portfolio/aes128", 1.5);
        reg.snapshot()
    }

    #[test]
    fn json_is_custom_smaller_is_better_shaped() {
        let json = render_metrics_json(&sample());
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains(
            "{ \"name\": \"campaign/traces_simulated\", \"unit\": \"count\", \"value\": 700 }"
        ));
        assert!(json.contains("\"name\": \"span/portfolio\", \"unit\": \"s\""));
        assert!(json.contains("\"name\": \"span/portfolio/aes128\""));
        assert!(json.contains("\"name\": \"server/queue_depth/peak\""));
        assert!(json.contains("\"name\": \"server/slice_seconds/count\""));
        // Counter values are bare integers — byte-comparable.
        assert!(json.contains("\"value\": 700 }"));
    }

    #[test]
    fn summary_indents_by_span_depth() {
        let text = render_summary(&sample());
        assert!(text.contains("\n  portfolio "));
        assert!(text.contains("\n    aes128 "));
        assert!(text.contains("campaign/traces_simulated"));
        assert!(text.contains("(peak 3)"));
    }

    #[test]
    fn summary_keeps_subtrees_contiguous_under_dashed_siblings() {
        // "p/aes128-masked" byte-sorts before "p/aes128/charz"; the
        // tree must still print aes128's child right after aes128.
        let reg = Registry::new();
        reg.record_span("p", 3.0);
        reg.record_span("p/aes128", 1.0);
        reg.record_span("p/aes128-masked", 1.0);
        reg.record_span("p/aes128/charz", 0.5);
        let text = render_summary(&reg.snapshot());
        let pos = |needle: &str| text.find(needle).expect(needle);
        assert!(pos("aes128 ") < pos("charz "));
        assert!(pos("charz ") < pos("aes128-masked "));
    }

    #[test]
    fn wire_lines_cover_every_family() {
        let lines = render_wire(&sample());
        assert!(lines.contains(&"metric campaign/traces_simulated=700".to_owned()));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("metric span/portfolio=")));
        assert!(lines.contains(&"metric server/queue_depth/peak=3".to_owned()));
        assert!(lines.iter().all(|l| l.starts_with("metric ")));
    }

    #[test]
    fn top_level_seconds_ignores_children() {
        let spans = vec![
            (
                "a".to_owned(),
                SpanStat {
                    seconds: 1.0,
                    count: 1,
                },
            ),
            (
                "a/b".to_owned(),
                SpanStat {
                    seconds: 0.9,
                    count: 1,
                },
            ),
            (
                "c".to_owned(),
                SpanStat {
                    seconds: 2.0,
                    count: 1,
                },
            ),
        ];
        assert!((top_level_seconds(&spans) - 3.0).abs() < 1e-12);
    }
}
