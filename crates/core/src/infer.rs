//! Microarchitecture inference from CPI data (Sections 3.2 of the paper,
//! producing Table 1 and the Figure 2 pipeline hypothesis).
//!
//! "To the best of our knowledge, this is the first time CPI data are
//! employed to deduce the microarchitecture of a CPU" — this module is
//! that method, executable: it measures every class-pair CPI on a given
//! [`UarchConfig`] and derives the dual-issue matrix, the number and
//! asymmetry of the ALUs, the register-file port counts, and the
//! pipelining of the multi-cycle units, with the same chain of deductions
//! the paper spells out.

use std::fmt;

use serde::{Deserialize, Serialize};

use sca_isa::InsnClass;
use sca_uarch::{UarchConfig, UarchError};

use crate::{measure_cpi, CpiBenchmark};

/// The measured dual-issue matrix — the reproduction of Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DualIssueMap {
    /// CPI per (older, younger) class pair, in [`InsnClass::TABLE1`] order.
    pub cpi: [[f64; 7]; 7],
}

impl DualIssueMap {
    /// Measures every Table 1 class pair on a configuration.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn measure(config: &UarchConfig) -> Result<DualIssueMap, UarchError> {
        let mut cpi = [[0.0f64; 7]; 7];
        for (i, older) in InsnClass::TABLE1.into_iter().enumerate() {
            for (j, younger) in InsnClass::TABLE1.into_iter().enumerate() {
                let bench = CpiBenchmark::hazard_free(older, younger);
                cpi[i][j] = measure_cpi(&bench, config)?.cpi;
            }
        }
        Ok(DualIssueMap { cpi })
    }

    /// Whether the pair dual-issued (CPI ≈ 0.5).
    pub fn dual_issued(&self, older: InsnClass, younger: InsnClass) -> bool {
        let i = InsnClass::TABLE1
            .iter()
            .position(|&c| c == older)
            .expect("table1 class");
        let j = InsnClass::TABLE1
            .iter()
            .position(|&c| c == younger)
            .expect("table1 class");
        self.cpi[i][j] < 0.75
    }

    /// Renders the matrix in the paper's Table 1 layout (✓/✗).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12}", ""));
        for younger in InsnClass::TABLE1 {
            out.push_str(&format!("{:>12}", younger.label()));
        }
        out.push('\n');
        for (i, older) in InsnClass::TABLE1.into_iter().enumerate() {
            out.push_str(&format!("{:<12}", older.label()));
            for j in 0..7 {
                let mark = if self.cpi[i][j] < 0.75 { "✓" } else { "✗" };
                out.push_str(&format!(
                    "{:>11} ",
                    format!("{mark} ({:.2})", self.cpi[i][j])
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// The deduced pipeline structure — the reproduction of Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipelineHypothesis {
    /// Number of ALUs deduced (two iff ALU+ALU-imm pairs dual-issue).
    pub alus: usize,
    /// Whether the ALUs are asymmetric: shifter and multiplier on one
    /// pipe only (deduced from shifts/muls never pairing with
    /// computational instructions).
    pub asymmetric_alus: bool,
    /// Register-file read ports / RF→EX buses (3 iff two-register ALU
    /// pairs need an immediate to pair).
    pub rf_read_ports: usize,
    /// Write-back buses (2 iff CPI 0.5 is sustained).
    pub rf_write_ports: usize,
    /// Whether the LSU is fully pipelined (load streams at CPI 1).
    pub lsu_pipelined: bool,
    /// Whether the multiplier is pipelined (mul streams at CPI 1).
    pub mul_pipelined: bool,
    /// Instructions fetched per cycle (2 iff CPI 0.5 is sustained).
    pub fetch_width: usize,
    /// Whether address generation happens in the issue stage (loads pair
    /// with immediate-operand ALU instructions without clobbering an ALU).
    pub agu_in_issue: bool,
}

impl PipelineHypothesis {
    /// Runs the paper's full deduction chain against a configuration.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn infer(config: &UarchConfig) -> Result<PipelineHypothesis, UarchError> {
        let measure = |older, younger| -> Result<bool, UarchError> {
            Ok(measure_cpi(&CpiBenchmark::hazard_free(older, younger), config)?.cpi < 0.75)
        };
        let stream_cpi = |class| -> Result<f64, UarchError> {
            Ok(measure_cpi(&CpiBenchmark::stream(class, false), config)?.cpi)
        };

        // i) Two arithmetic instructions dual-issue when one carries an
        //    immediate -> two ALUs are present...
        let alu_imm_pairs = measure(InsnClass::Alu, InsnClass::AluImm)?;
        let mov_pairs = measure(InsnClass::Mov, InsnClass::Mov)?;
        let alus = if alu_imm_pairs || mov_pairs { 2 } else { 1 };
        // ...but shifts and muls never pair with computational
        // instructions -> only one ALU owns the shifter and multiplier.
        let shift_with_alu = measure(InsnClass::Alu, InsnClass::Shift)?
            || measure(InsnClass::Shift, InsnClass::Mov)?
            || measure(InsnClass::Mul, InsnClass::Mov)?;
        let asymmetric_alus = alus == 2 && !shift_with_alu;

        // iii) Two reg-reg ALU ops never pair while reg-reg + imm does ->
        //      three read buses; sustained 0.5 CPI -> two write buses.
        let alu_alu = measure(InsnClass::Alu, InsnClass::Alu)?;
        let rf_read_ports = if alu_imm_pairs && !alu_alu { 3 } else { 4 };
        let rf_write_ports = if mov_pairs { 2 } else { 1 };

        // ii) Unit pipelining from sustained stream CPIs.
        let lsu_pipelined = stream_cpi(InsnClass::LdSt)? < 1.2;
        let mul_pipelined = stream_cpi(InsnClass::Mul)? < 1.2;

        // Fetch keeps up with the best case -> dual fetch.
        let fetch_width = if mov_pairs { 2 } else { 1 };

        // Loads pair with ALU-imm -> address generation cannot be using
        // an ALU; it lives in the issue stage (as the gcc machine
        // description states).
        let agu_in_issue = measure(InsnClass::AluImm, InsnClass::LdSt)?;

        Ok(PipelineHypothesis {
            alus,
            asymmetric_alus,
            rf_read_ports,
            rf_write_ports,
            lsu_pipelined,
            mul_pipelined,
            fetch_width,
            agu_in_issue,
        })
    }

    /// The structure the paper deduces for the Cortex-A7.
    pub fn cortex_a7_expected() -> PipelineHypothesis {
        PipelineHypothesis {
            alus: 2,
            asymmetric_alus: true,
            rf_read_ports: 3,
            rf_write_ports: 2,
            lsu_pipelined: true,
            mul_pipelined: true,
            fetch_width: 2,
            agu_in_issue: true,
        }
    }
}

impl fmt::Display for PipelineHypothesis {
    /// Renders the Figure 2 pipeline diagram with the deduced parameters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Deduced pipeline structure (cf. paper Figure 2):")?;
        writeln!(
            f,
            "  fetch width:        {} instruction(s)/cycle",
            self.fetch_width
        )?;
        writeln!(
            f,
            "  ALUs:               {}{}",
            self.alus,
            if self.asymmetric_alus {
                " (asymmetric: shifter+multiplier on pipe 0 only)"
            } else {
                ""
            }
        )?;
        writeln!(f, "  RF read ports:      {}", self.rf_read_ports)?;
        writeln!(f, "  RF write ports:     {}", self.rf_write_ports)?;
        writeln!(f, "  LSU pipelined:      {}", self.lsu_pipelined)?;
        writeln!(f, "  MUL pipelined:      {}", self.mul_pipelined)?;
        writeln!(f, "  AGU in issue stage: {}", self.agu_in_issue)?;
        writeln!(f)?;
        writeln!(
            f,
            "              +-----------+   RP1..RP{}   +--> ALU0 (shifter, mul, 3-stage)",
            self.rf_read_ports
        )?;
        writeln!(
            f,
            "  Fetch x{} ->| prefetch  |-> Decode -> Issue --> ALU1 (1-stage)",
            self.fetch_width
        )?;
        writeln!(
            f,
            "              |  buffer   |      ^  immediate +--> LSU (3-stage, pipelined: {})",
            self.lsu_pipelined
        )?;
        writeln!(
            f,
            "              +-----------+      |            +--> FPU (4-stage)"
        )?;
        write!(
            f,
            "         WP1..WP{} <---- write-back buses <---- EX/WB buffers",
            self.rf_write_ports
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full-matrix measurement is exercised by the integration tests
    // and the table1 bench; here we keep the quick deductions.

    #[test]
    fn infers_cortex_a7_structure() {
        let hypothesis =
            PipelineHypothesis::infer(&UarchConfig::cortex_a7().with_ideal_memory()).unwrap();
        assert_eq!(hypothesis, PipelineHypothesis::cortex_a7_expected());
    }

    #[test]
    fn infers_scalar_structure() {
        let hypothesis =
            PipelineHypothesis::infer(&UarchConfig::scalar().with_ideal_memory()).unwrap();
        assert_eq!(hypothesis.alus, 1);
        assert_eq!(hypothesis.fetch_width, 1);
        assert_eq!(hypothesis.rf_write_ports, 1);
        // Unit pipelining is orthogonal to dual issue.
        assert!(hypothesis.lsu_pipelined);
        assert!(hypothesis.mul_pipelined);
    }

    #[test]
    fn display_mentions_key_findings() {
        let text = PipelineHypothesis::cortex_a7_expected().to_string();
        for needle in ["ALU0", "shifter", "RP1..RP3", "WP1..WP2", "prefetch"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
