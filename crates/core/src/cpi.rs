//! CPI micro-benchmarks (Section 3.2 of the paper).
//!
//! A benchmark is 200 repetitions of an instruction pair, framed by 100
//! `nop`s, bracketed by trigger edges. The cycle count of the window,
//! minus a nop-only calibration run, divided by the number of measured
//! instructions, yields the pair's CPI: 0.5 means the pair dual-issues,
//! 1.0 means it does not.
//!
//! The pair generator encodes the paper's "artificially induced RAW
//! hazard" methodology with one extra subtlety this simulator exposes:
//! in a repeated stream `A B A B …` the issue stage may pair `(B, A)`
//! across iterations even when `(A, B)` is forbidden, which would bring
//! the CPI below 1 and confound the matrix. Repetitions are therefore
//! separated by a `nop` spacer — `nop`s never dual-issue on this core
//! (Section 3.2) — pinning the pairing alignment to the measured
//! `(A, B)` ordering; the spacer cycles cancel out against the
//! nop-matched calibration run.

use sca_isa::{AddrMode, Cond, Insn, InsnClass, Program, ProgramBuilder, Reg, ShiftKind};
use sca_uarch::{Cpu, NullObserver, PipelineObserver, UarchConfig, UarchError};

/// Base registers preloaded with valid RAM addresses for `ld/st`
/// benchmarks.
pub const LDST_BASE_A: Reg = Reg::R8;
/// Second preloaded base register.
pub const LDST_BASE_B: Reg = Reg::R9;
/// Scratch RAM the `ld/st` benchmark instructions touch.
pub const LDST_SCRATCH: u32 = 0x8000;

/// Builds one instruction of `class` writing `dst` (where meaningful) and
/// reading from `srcs`.
///
/// Branch-class instructions are never-taken conditional branches to the
/// next instruction, so they are safe regardless of flag state; `ld/st`
/// uses loads from a preloaded base register.
pub fn insn_of_class(class: InsnClass, dst: Reg, srcs: [Reg; 2], base: Reg) -> Insn {
    match class {
        InsnClass::Mov => Insn::mov(dst, srcs[0]),
        InsnClass::Alu => Insn::add(dst, srcs[0], srcs[1]),
        InsnClass::AluImm => Insn::add(dst, srcs[0], 7u32),
        InsnClass::Mul => Insn::mul(dst, srcs[0], srcs[1]),
        InsnClass::Shift => Insn::shift_imm(ShiftKind::Lsl, dst, srcs[0], 3),
        InsnClass::Branch => Insn::b(0).with_cond(Cond::Eq),
        InsnClass::LdSt => Insn::ldr(dst, AddrMode::base(base)),
        InsnClass::Nop => Insn::nop(),
        InsnClass::System => Insn::nop(),
    }
}

/// A measurable instruction-pair kernel.
#[derive(Clone, Debug)]
pub struct CpiBenchmark {
    /// Short description for reports.
    pub label: String,
    /// The repeated instruction pair (older, younger).
    pub pair: [Insn; 2],
    /// Number of pair repetitions inside the window (the paper uses 200).
    pub reps: usize,
    /// `nop` padding on each side of the kernel (the paper uses 100).
    pub pad_nops: usize,
    /// Whether a `nop` spacer separates repetitions. Spacers pin the
    /// pairing alignment: `nop`s never dual-issue (Section 3.2), so the
    /// only candidate pair is the measured `(older, younger)` ordering —
    /// without creating the cross-iteration RAW stalls that would bias
    /// multi-cycle instructions. The spacer cycles are removed by the
    /// nop-matched calibration run.
    pub spacer: bool,
}

impl CpiBenchmark {
    /// A hazard-free pair of the two classes: `(A, B)` share no registers,
    /// while the cross-iteration `(B, A)` alignment carries a RAW hazard
    /// so only the measured ordering can pair.
    pub fn hazard_free(older: InsnClass, younger: InsnClass) -> CpiBenchmark {
        // A: r0 <- f(r1, r2);  B: r3 <- f(r4, r5): fully disjoint, so the
        // measured pair carries no hazard at all; the nop spacer prevents
        // the cross-iteration (B, A) alignment from pairing instead.
        let a = insn_of_class(older, Reg::R0, [Reg::R1, Reg::R2], LDST_BASE_A);
        let b = insn_of_class(younger, Reg::R3, [Reg::R4, Reg::R5], LDST_BASE_B);
        CpiBenchmark {
            label: format!("{older} + {younger} (hazard-free)"),
            pair: [a, b],
            reps: 200,
            pad_nops: 100,
            spacer: true,
        }
    }

    /// A RAW-hazard pair of the two classes: hazards in both alignments,
    /// so the pair can never dual-issue — the paper's control experiment.
    pub fn with_raw_hazard(older: InsnClass, younger: InsnClass) -> CpiBenchmark {
        // A: r0 <- f(r5, r2) where r5 is B's destination;
        // B: r5 <- f(r0, r4) reads A's destination.
        // Loads cannot read r5 through `insn_of_class` (they read a base
        // register), so the ld/st older uses a register-offset address to
        // carry the hazard; the scratch memory is zeroed, keeping the
        // offset value small and the address valid.
        // B reads A's destination: the measured pair can never issue
        // together.
        let a = insn_of_class(older, Reg::R0, [Reg::R1, Reg::R2], LDST_BASE_A);
        let b = if younger == InsnClass::LdSt {
            // Loads read their base; carry the hazard through a register
            // offset (operand values are staged small, keeping addresses
            // inside the scratch area).
            Insn::ldr(Reg::R3, AddrMode::reg_offset(LDST_BASE_B, Reg::R0))
        } else {
            insn_of_class(younger, Reg::R3, [Reg::R0, Reg::R5], LDST_BASE_B)
        };
        CpiBenchmark {
            label: format!("{older} + {younger} (RAW hazard)"),
            pair: [a, b],
            reps: 200,
            pad_nops: 100,
            spacer: true,
        }
    }

    /// A single-instruction stream (for unit throughput probes: is the
    /// multiplier/LSU pipelined?).
    pub fn stream(class: InsnClass, dependent: bool) -> CpiBenchmark {
        let insn = if dependent {
            if class == InsnClass::LdSt {
                // Address depends on the previous load's value (pointer
                // chase through zeroed scratch memory).
                Insn::ldr(Reg::R0, AddrMode::reg_offset(LDST_BASE_A, Reg::R0))
            } else {
                // Chain through the destination.
                insn_of_class(class, Reg::R0, [Reg::R0, Reg::R2], LDST_BASE_A)
            }
        } else {
            insn_of_class(class, Reg::R0, [Reg::R1, Reg::R2], LDST_BASE_A)
        };
        CpiBenchmark {
            label: format!(
                "{class} stream ({})",
                if dependent {
                    "dependent"
                } else {
                    "independent"
                }
            ),
            pair: [insn, insn],
            reps: 200,
            pad_nops: 100,
            spacer: false,
        }
    }

    /// Number of measured (non-padding) instructions in the window.
    pub fn measured_instructions(&self) -> usize {
        self.reps * 2
    }

    /// Emits the benchmark program: `trig 1; nops; kernel; nops; trig 0`.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures (none expected for generated pairs).
    pub fn program(&self) -> Result<Program, sca_isa::IsaError> {
        let mut builder = ProgramBuilder::new(0)
            .push(Insn::trig(true))
            .nops(self.pad_nops);
        for _ in 0..self.reps {
            builder = builder.push(self.pair[0]).push(self.pair[1]);
            if self.spacer {
                builder = builder.push(Insn::nop());
            }
        }
        builder
            .nops(self.pad_nops)
            .push(Insn::trig(false))
            .push(Insn::halt())
            .build()
    }

    /// The calibration program: identical padding and spacer `nop`s, no
    /// kernel instructions.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures.
    pub fn calibration_program(&self) -> Result<Program, sca_isa::IsaError> {
        let spacers = if self.spacer { self.reps } else { 0 };
        ProgramBuilder::new(0)
            .push(Insn::trig(true))
            .nops(self.pad_nops * 2 + spacers)
            .push(Insn::trig(false))
            .push(Insn::halt())
            .build()
    }
}

/// Outcome of one CPI measurement.
#[derive(Clone, Copy, Debug)]
pub struct CpiMeasurement {
    /// Cycles inside the benchmark trigger window.
    pub window_cycles: u64,
    /// Cycles inside the calibration (nop-only) window.
    pub calibration_cycles: u64,
    /// Clock cycles per measured instruction.
    pub cpi: f64,
}

impl CpiMeasurement {
    /// The paper's dual-issue criterion: a sustained CPI of ~0.5.
    pub fn dual_issued(&self) -> bool {
        self.cpi < 0.75
    }
}

/// Observer that captures trigger-window boundaries.
#[derive(Default)]
struct TriggerWindow {
    start: Option<u64>,
    end: Option<u64>,
}

impl PipelineObserver for TriggerWindow {
    fn trigger(&mut self, cycle: u64, high: bool) {
        if high {
            self.start.get_or_insert(cycle);
        } else if self.start.is_some() {
            self.end.get_or_insert(cycle);
        }
    }
}

/// Runs the paper's measurement protocol for one benchmark: warm the
/// caches with a first execution, then measure the trigger-window cycle
/// count and subtract the nop/trigger calibration.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn measure_cpi(
    benchmark: &CpiBenchmark,
    config: &UarchConfig,
) -> Result<CpiMeasurement, UarchError> {
    let window = |program: &Program| -> Result<u64, UarchError> {
        let mut cpu = Cpu::new(config.clone());
        cpu.load(program)?;
        stage_cpi_registers(&mut cpu);
        // Warm-up execution (the paper loops the pattern to warm both
        // cache levels and measures the steady state).
        cpu.run(&mut NullObserver)?;
        cpu.restart(program.entry());
        let mut obs = TriggerWindow::default();
        cpu.run(&mut obs)?;
        let (Some(start), Some(end)) = (obs.start, obs.end) else {
            return Err(UarchError::BadInstruction {
                addr: 0,
                word: None,
            });
        };
        Ok(end - start)
    };
    let program = benchmark.program().expect("generated benchmarks encode");
    let calibration = benchmark
        .calibration_program()
        .expect("calibration encodes");
    let window_cycles = window(&program)?;
    let calibration_cycles = window(&calibration)?;
    let kernel_cycles = window_cycles.saturating_sub(calibration_cycles);
    let cpi = kernel_cycles as f64 / benchmark.measured_instructions() as f64;
    Ok(CpiMeasurement {
        window_cycles,
        calibration_cycles,
        cpi,
    })
}

/// Presets registers for CPI kernels: small distinct values, plus valid
/// scratch addresses in the `ld/st` base registers.
pub fn stage_cpi_registers(cpu: &mut Cpu) {
    for (i, reg) in [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5]
        .into_iter()
        .enumerate()
    {
        cpu.set_reg(reg, 0x10 + i as u32);
    }
    cpu.set_reg(LDST_BASE_A, LDST_SCRATCH);
    cpu.set_reg(LDST_BASE_B, LDST_SCRATCH + 0x40);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a7() -> UarchConfig {
        UarchConfig::cortex_a7().with_ideal_memory()
    }

    #[test]
    fn mov_pairs_reach_half_cpi() {
        let bench = CpiBenchmark::hazard_free(InsnClass::Mov, InsnClass::Mov);
        let m = measure_cpi(&bench, &a7()).unwrap();
        assert!((m.cpi - 0.5).abs() < 0.05, "CPI {}", m.cpi);
        assert!(m.dual_issued());
    }

    #[test]
    fn raw_hazard_forces_single_issue() {
        let bench = CpiBenchmark::with_raw_hazard(InsnClass::Mov, InsnClass::Mov);
        let m = measure_cpi(&bench, &a7()).unwrap();
        assert!((m.cpi - 1.0).abs() < 0.05, "CPI {}", m.cpi);
        assert!(!m.dual_issued());
    }

    #[test]
    fn alu_alu_single_but_alu_imm_dual() {
        let reg = measure_cpi(
            &CpiBenchmark::hazard_free(InsnClass::Alu, InsnClass::Alu),
            &a7(),
        )
        .unwrap();
        assert!(!reg.dual_issued(), "ALU+ALU CPI {}", reg.cpi);
        let imm = measure_cpi(
            &CpiBenchmark::hazard_free(InsnClass::Alu, InsnClass::AluImm),
            &a7(),
        )
        .unwrap();
        assert!(imm.dual_issued(), "ALU+ALUimm CPI {}", imm.cpi);
    }

    #[test]
    fn pipelined_units_sustain_cpi_one() {
        for class in [InsnClass::Mul, InsnClass::LdSt] {
            let m = measure_cpi(&CpiBenchmark::stream(class, false), &a7()).unwrap();
            assert!((m.cpi - 1.0).abs() < 0.1, "{class} stream CPI {}", m.cpi);
        }
    }

    #[test]
    fn dependent_mul_exposes_latency() {
        let m = measure_cpi(&CpiBenchmark::stream(InsnClass::Mul, true), &a7()).unwrap();
        assert!(m.cpi > 2.5, "dependent mul CPI {}", m.cpi);
    }

    #[test]
    fn nops_are_not_dual_issued() {
        let m = measure_cpi(
            &CpiBenchmark::hazard_free(InsnClass::Nop, InsnClass::Nop),
            &a7(),
        )
        .unwrap();
        assert!((m.cpi - 1.0).abs() < 0.05, "nop CPI {}", m.cpi);
    }

    #[test]
    fn scalar_config_never_reaches_half() {
        let bench = CpiBenchmark::hazard_free(InsnClass::Mov, InsnClass::Mov);
        let m = measure_cpi(&bench, &UarchConfig::scalar().with_ideal_memory()).unwrap();
        assert!((m.cpi - 1.0).abs() < 0.05, "CPI {}", m.cpi);
    }

    #[test]
    fn works_with_real_caches_after_warmup() {
        let bench = CpiBenchmark::hazard_free(InsnClass::Mov, InsnClass::Mov);
        let m = measure_cpi(&bench, &UarchConfig::cortex_a7()).unwrap();
        assert!((m.cpi - 0.5).abs() < 0.05, "CPI {}", m.cpi);
    }
}
