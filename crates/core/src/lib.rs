//! # sca-core — the paper's methodology, executable
//!
//! The primary contribution of *"Side-channel security of superscalar
//! CPUs"* (Barenghi & Pelosi, DAC 2018) is a method: infer the
//! microarchitecture of a CPU from timing, characterize the side-channel
//! leakage of each pipeline component, and use the resulting model to
//! attack (or audit) software. This crate implements all three steps
//! against the simulated core in [`sca_uarch`]:
//!
//! * [`CpiBenchmark`] / [`measure_cpi`] — the Section 3.2 CPI
//!   micro-benchmarks (200 instruction pairs framed by 100 `nop`s,
//!   nop-calibrated);
//! * [`DualIssueMap`] — the measured Table 1 dual-issue matrix;
//! * [`PipelineHypothesis`] — the Figure 2 deduction chain (number of
//!   ALUs, shifter placement, RF ports, unit pipelining, fetch width);
//! * [`table2_benchmarks`] / [`characterize`] — the seven Table 2 leakage
//!   benchmarks with per-component model expressions and >99.5%
//!   Fisher-z significance verdicts;
//! * [`audit_program`] — the leakage audit for arbitrary assembly that
//!   the paper proposes integrating into development toolchains;
//! * [`audit_cipher_target`] — the same audit wired generically to the
//!   `sca-target` cipher portfolio (models at the true key become the
//!   secret expressions; the target's window resolves the cycle span);
//! * [`masking_scenarios`] — the Section 4.2 share-recombination
//!   schedules (vulnerable, spacer-hardened, operand-swapped, and the
//!   `sca-sched` rewriter outputs), shared by the `masking_audit`
//!   example and the integration tests that enforce its findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod cpi;
mod infer;
mod leakchar;
mod scenarios;
mod targets;

pub use audit::{audit_program, AuditConfig, AuditReport, Finding, SecretModel};
pub use cpi::{
    insn_of_class, measure_cpi, stage_cpi_registers, CpiBenchmark, CpiMeasurement, LDST_BASE_A,
    LDST_BASE_B, LDST_SCRATCH,
};
pub use infer::{DualIssueMap, PipelineHypothesis};
pub use leakchar::{
    characterize, run_benchmark, table2_benchmarks, CellResult, CharacterizationConfig,
    Expectation, LeakBenchmark, ModelSpec, RowResult, Table2Report, PAD_NOPS,
};
pub use scenarios::{
    audit_scenario, masking_scenarios, operand_path_leaks, share_models, stage_shares,
    MaskingScenario,
};
pub use targets::{audit_cipher_target, leak_paths};
