//! Leakage audit of arbitrary programs — the "static analysis /
//! countermeasure checking" integration the paper proposes (Sections 2
//! and 5).
//!
//! Given a program, a way to stage random inputs, and a set of *secret
//! expressions* (e.g. "the Hamming distance between share 0 and share 1
//! of a masked value"), the auditor runs the program many times under a
//! [`sca_uarch::RecordingObserver`], collects the per-node transition
//! activity, and reports every `(node, cycle)` whose switching correlates
//! with a secret expression. No power model or noise is involved: this is
//! the noise-free, microarchitecture-aware upper bound on what an
//! attacker could see — exactly what a developer wants from a
//! pre-silicon/pre-deployment check.
//!
//! The flagship use case is the paper's Section 4.2 warning: swapping the
//! operands of a commutative instruction, or letting two shares of a
//! masked secret ride the same operand bus in consecutive instructions,
//! creates leakage invisible to ISA-level reasoning. The audit finds it
//! in seconds.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sca_analysis::{pearson, significance_threshold};
use sca_isa::Program;
use sca_uarch::{Cpu, Node, RecordingObserver, UarchConfig, UarchError};

/// Boxed secret-expression function.
pub type SecretFn = Box<dyn Fn(&[u8]) -> f64 + Send + Sync>;

/// A named secret-dependent expression evaluated over the staged input.
pub struct SecretModel {
    /// Name shown in findings (e.g. `HD(share0, share1)`).
    pub name: String,
    /// The expression.
    pub f: SecretFn,
}

impl SecretModel {
    /// Creates a named secret expression.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&[u8]) -> f64 + Send + Sync + 'static,
    ) -> SecretModel {
        SecretModel {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl fmt::Debug for SecretModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretModel({})", self.name)
    }
}

/// Audit campaign parameters.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Number of random-input executions.
    pub executions: usize,
    /// Detection confidence for the correlation test.
    pub confidence: f64,
    /// Master seed for input generation.
    pub seed: u64,
    /// Restricts the audit to events in `[start, end)` cycles. Programs
    /// under audit are constant-time, so a cycle window selects the same
    /// program region in every execution; without one, auditing a full
    /// cipher would record per-execution activity for every (node,
    /// cycle) pair of the whole run. The countermeasure experiments use
    /// this to focus on the round-1 SubBytes of the masked AES.
    pub window: Option<(u64, u64)>,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            executions: 600,
            confidence: 0.9999,
            seed: 0xaadd17,
            window: None,
        }
    }
}

/// One detected leak.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The leaking microarchitectural node.
    pub node: Node,
    /// Cycle (relative to execution start) of the correlated transition.
    pub cycle: u64,
    /// The secret expression that correlates.
    pub model: String,
    /// Correlation coefficient observed.
    pub corr: f64,
    /// Source line of the instruction retiring closest to the event, if
    /// the program carries a source map.
    pub source_line: Option<usize>,
}

/// The audit outcome.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// All findings, strongest first.
    pub findings: Vec<Finding>,
    /// Executions used.
    pub executions: usize,
}

impl AuditReport {
    /// Whether any secret expression leaks anywhere.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings involving a specific secret expression.
    pub fn findings_for(&self, model: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.model == model).collect()
    }

    /// Renders a human-readable report.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return format!(
                "audit clean: no secret expression correlates with any \
                 microarchitectural node ({} executions)\n",
                self.executions
            );
        }
        let mut out = format!(
            "audit found {} leaking (node, cycle, model) combinations ({} executions):\n",
            self.findings.len(),
            self.executions
        );
        for f in &self.findings {
            out.push_str(&format!(
                "  {:<18} cycle {:<6} {} corr {:+.3}{}\n",
                f.node.to_string(),
                f.cycle,
                f.model,
                f.corr,
                f.source_line
                    .map(|l| format!("  (source line {l})"))
                    .unwrap_or_default(),
            ));
        }
        out
    }
}

/// Runs the audit.
///
/// `stage` receives the CPU and the input bytes before every execution;
/// inputs are uniform random bytes of length `input_len`.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn audit_program(
    uarch: &UarchConfig,
    program: &Program,
    input_len: usize,
    stage: impl Fn(&mut Cpu, &[u8]),
    models: &[SecretModel],
    config: &AuditConfig,
) -> Result<AuditReport, UarchError> {
    use rand::Rng;

    let mut cpu = Cpu::new(uarch.clone());
    cpu.load(program)?;
    // Warm-up.
    stage(&mut cpu, &vec![0u8; input_len]);
    cpu.run(&mut sca_uarch::NullObserver)?;

    let mut rng = StdRng::seed_from_u64(config.seed);
    // (node, cycle) -> per-execution Hamming distance of the transition.
    let mut activity: BTreeMap<(Node, u64), Vec<f64>> = BTreeMap::new();
    let mut inputs: Vec<Vec<u8>> = Vec::with_capacity(config.executions);
    let mut retire_lines: BTreeMap<u64, usize> = BTreeMap::new();

    for execution in 0..config.executions {
        let mut input = vec![0u8; input_len];
        rng.fill(&mut input[..]);
        cpu.restart_seeded(program.entry(), 0xaad017 ^ execution as u64);
        stage(&mut cpu, &input);
        let mut obs = RecordingObserver::new();
        cpu.run(&mut obs)?;
        for event in &obs.events {
            if let Some((start, end)) = config.window {
                if event.cycle < start || event.cycle >= end {
                    continue;
                }
            }
            activity
                .entry((event.node, event.cycle))
                .or_insert_with(|| vec![0.0; config.executions])[execution] =
                f64::from(event.hamming_distance());
        }
        if execution == 0 {
            for &(cycle, addr) in &obs.retirements {
                if let Some(line) = program.source_line(addr) {
                    retire_lines.insert(cycle, line);
                }
            }
        }
        inputs.push(input);
    }

    let threshold = significance_threshold(config.executions as u64, config.confidence);
    let mut findings = Vec::new();
    for model in models {
        let predictions: Vec<f64> = inputs.iter().map(|i| (model.f)(i)).collect();
        for ((node, cycle), series) in &activity {
            let corr = pearson(&predictions, series);
            if corr.abs() >= threshold {
                // Attribute to the closest retirement at or after the
                // event cycle (approximate source location).
                let source_line = retire_lines
                    .range(cycle..)
                    .next()
                    .or_else(|| retire_lines.range(..cycle).next_back())
                    .map(|(_, &line)| line);
                findings.push(Finding {
                    node: *node,
                    cycle: *cycle,
                    model: model.name.clone(),
                    corr,
                    source_line,
                });
            }
        }
    }
    findings.sort_by(|a, b| b.corr.abs().partial_cmp(&a.corr.abs()).expect("finite"));
    Ok(AuditReport {
        findings,
        executions: config.executions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_analysis::input_word;
    use sca_isa::assemble;
    use sca_isa::Reg;

    fn a7() -> UarchConfig {
        UarchConfig::cortex_a7().with_ideal_memory()
    }

    /// Two shares of a masked secret processed back-to-back: their HD
    /// appears on the shared operand bus / IS-EX buffer.
    #[test]
    fn detects_share_recombination_on_operand_bus() {
        let program = assemble(
            "
            nop
            nop
            eor r2, r0, r4     ; uses share0 (r0)
            eor r3, r1, r4     ; uses share1 (r1) -> same bus position
            nop
            nop
            halt
        ",
        )
        .unwrap();
        let models = [SecretModel::new("HD(share0, share1)", |i: &[u8]| {
            f64::from((input_word(i, 0) ^ input_word(i, 1)).count_ones())
        })];
        let report = audit_program(
            &a7(),
            &program,
            8,
            |cpu, input| {
                cpu.set_reg(Reg::R0, input_word(input, 0));
                cpu.set_reg(Reg::R1, input_word(input, 1));
                cpu.set_reg(Reg::R4, 0x5a5a_5a5a);
            },
            &models,
            &AuditConfig {
                executions: 300,
                ..AuditConfig::default()
            },
        )
        .unwrap();
        assert!(!report.is_clean(), "share recombination must be flagged");
        // The leak must involve an IS/EX-class node.
        assert!(
            report
                .findings
                .iter()
                .any(|f| matches!(f.node, Node::OperandBus(_) | Node::IsExOp { .. })),
            "expected an operand-path finding, got {:?}",
            report.findings
        );
    }

    /// The same computation with an unrelated instruction in between and
    /// distinct bus positions: the recombination disappears.
    #[test]
    fn scheduling_distance_removes_the_leak() {
        let program = assemble(
            "
            nop
            nop
            eor r2, r0, r4
            mov r6, r7          ; spacer rewrites the bus
            mov r6, r7
            eor r3, r1, r4
            nop
            nop
            halt
        ",
        )
        .unwrap();
        let models = [SecretModel::new("HD(share0, share1)", |i: &[u8]| {
            f64::from((input_word(i, 0) ^ input_word(i, 1)).count_ones())
        })];
        let report = audit_program(
            &a7(),
            &program,
            8,
            |cpu, input| {
                cpu.set_reg(Reg::R0, input_word(input, 0));
                cpu.set_reg(Reg::R1, input_word(input, 1));
                cpu.set_reg(Reg::R4, 0x5a5a_5a5a);
                cpu.set_reg(Reg::R7, 0x1234_5678);
            },
            &models,
            &AuditConfig {
                executions: 300,
                ..AuditConfig::default()
            },
        )
        .unwrap();
        let bus_findings: Vec<_> = report
            .findings
            .iter()
            .filter(|f| {
                matches!(f.node, Node::OperandBus(_) | Node::IsExOp { .. })
                    && f.model == "HD(share0, share1)"
            })
            .collect();
        assert!(
            bus_findings.is_empty(),
            "spacers should break the recombination: {bus_findings:?}"
        );
    }

    /// A cycle window hides findings outside it without disturbing the
    /// ones inside.
    #[test]
    fn window_restricts_findings() {
        let program = assemble(
            "
            nop
            mov r2, r0      ; the secret crosses the bus early
            nop
            nop
            nop
            nop
            nop
            mov r3, r0      ; ...and again late
            nop
            halt
        ",
        )
        .unwrap();
        let models = || {
            [SecretModel::new("HW(secret)", |i: &[u8]| {
                f64::from(input_word(i, 0).count_ones())
            })]
        };
        let stage = |cpu: &mut Cpu, input: &[u8]| cpu.set_reg(Reg::R0, input_word(input, 0));
        let config = AuditConfig {
            executions: 200,
            ..AuditConfig::default()
        };
        let full = audit_program(&a7(), &program, 4, stage, &models(), &config).unwrap();
        assert!(!full.is_clean());
        let last = full.findings.iter().map(|f| f.cycle).max().unwrap();
        let windowed = audit_program(
            &a7(),
            &program,
            4,
            stage,
            &models(),
            &AuditConfig {
                window: Some((0, 4)),
                ..config
            },
        )
        .unwrap();
        assert!(windowed.findings.iter().all(|f| f.cycle < 4));
        assert!(
            windowed.findings.len() < full.findings.len(),
            "window must exclude the late findings (full had one at cycle {last})"
        );
    }

    #[test]
    fn clean_program_reports_clean() {
        let program = assemble(
            "
            nop
            mov r2, r7
            nop
            halt
        ",
        )
        .unwrap();
        let models = [SecretModel::new("secret", |i: &[u8]| {
            f64::from(input_word(i, 0).count_ones())
        })];
        let report = audit_program(
            &a7(),
            &program,
            4,
            |cpu, _input| {
                // The secret never enters the CPU.
                cpu.set_reg(Reg::R7, 42);
            },
            &models,
            &AuditConfig {
                executions: 200,
                ..AuditConfig::default()
            },
        )
        .unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.render().contains("clean"));
    }

    #[test]
    fn findings_carry_source_lines() {
        let program = assemble(
            "
            nop
            mov r2, r0      ; line 3: secret touches the bus
            nop
            halt
        ",
        )
        .unwrap();
        let models = [SecretModel::new("HW(secret)", |i: &[u8]| {
            f64::from(input_word(i, 0).count_ones())
        })];
        let report = audit_program(
            &a7(),
            &program,
            4,
            |cpu, input| cpu.set_reg(Reg::R0, input_word(input, 0)),
            &models,
            &AuditConfig {
                executions: 200,
                ..AuditConfig::default()
            },
        )
        .unwrap();
        assert!(!report.is_clean());
        assert!(report.findings.iter().any(|f| f.source_line.is_some()));
        assert!(report.render().contains("HW(secret)"));
    }
}
