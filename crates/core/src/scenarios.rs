//! The masking-audit scenarios: one shared code path for the
//! `masking_audit` example, the integration tests that enforce its
//! findings, and the docs.
//!
//! A first-order Boolean masking splits a secret `s` into shares
//! `s0 = s ^ m` and `s1 = m`. ISA-level reasoning says the two shares
//! are never combined; the pipeline disagrees: if two instructions
//! reading the shares issue back-to-back with the shares in the same
//! operand position, the shares meet on the shared operand bus and
//! their Hamming distance — which equals `HW(s)` — leaks. The scenarios
//! below audit a vulnerable schedule and the paper's Section 4.2
//! countermeasures, both hand-written and as produced automatically by
//! the `sca-sched` rewriters.

use sca_isa::{assemble, Program, Reg};
use sca_sched::{harden_program, pin_lanes, HardenConfig, SharePolicy};
use sca_uarch::{Cpu, Node, UarchConfig, UarchError};

use crate::{audit_program, AuditConfig, AuditReport, SecretModel};

/// One masked-code schedule under audit, with its expected verdict.
#[derive(Debug)]
pub struct MaskingScenario {
    /// Short name for reports.
    pub name: &'static str,
    /// What the schedule demonstrates.
    pub description: &'static str,
    /// The program to audit.
    pub program: Program,
    /// Whether the audit must find share recombination on the operand
    /// path (operand buses / IS-EX buffers).
    pub expect_operand_path_leak: bool,
}

/// The secret expression every scenario audits: the Hamming distance
/// between the two shares, i.e. the Hamming weight of the secret.
pub fn share_models() -> [SecretModel; 1] {
    use sca_analysis::input_word;
    [SecretModel::new(
        "HD(share0, share1) = HW(secret)",
        |input: &[u8]| f64::from((input_word(input, 0) ^ input_word(input, 1)).count_ones()),
    )]
}

/// Stages the two shares and the public constants the schedules use.
pub fn stage_shares(cpu: &mut Cpu, input: &[u8]) {
    use sca_analysis::input_word;
    cpu.set_reg(Reg::R0, input_word(input, 0)); // share 0 = s ^ m
    cpu.set_reg(Reg::R1, input_word(input, 1)); // share 1 = m
    cpu.set_reg(Reg::R4, 0x0f0f_0f0f); // public round constant
    cpu.set_reg(Reg::R5, 0x3c3c_3c3c); // another public constant
    cpu.set_reg(Reg::R7, 0x5555_aaaa); // unrelated public value
    cpu.set_reg(Reg::R6, 0); // sca-sched scrub value
    cpu.set_reg(Reg::R10, 0x800); // sca-sched scrub cell
}

/// Operand-path findings (operand buses / IS-EX buffers) in a report.
pub fn operand_path_leaks(report: &AuditReport) -> usize {
    report
        .findings
        .iter()
        .filter(|f| matches!(f.node, Node::OperandBus(_) | Node::IsExOp { .. }))
        .count()
}

/// Builds the masking-audit scenarios: the vulnerable schedule, the two
/// hand-written Section 4.2 countermeasures, and the same two produced
/// automatically by the `sca-sched` rewriters from the vulnerable
/// program.
///
/// # Panics
///
/// Panics only on embedded-source assembler or rewriter errors (a
/// packaging bug).
pub fn masking_scenarios() -> Vec<MaskingScenario> {
    // Vulnerable: both share-processing instructions place their share
    // in the same source-operand position. Two reg-reg ALU ops never
    // dual-issue on the A7 (Table 1), so they execute back-to-back on
    // the same pipe and the shares meet on operand bus 0: the bus
    // transition is HD(s0, s1) = HW(secret).
    let vulnerable = assemble(
        "
        nop
        eor r2, r0, r4     ; share 0 in position 0
        eor r3, r1, r5     ; share 1 in position 0 -> same bus!
        nop
        halt
    ",
    )
    .expect("embedded scenario assembles");

    // Hardening 1: unrelated public-value work separates the two shares
    // in time, scrubbing the shared buses between them — the
    // instruction-scheduling countermeasure of Section 4.2.
    let spaced = assemble(
        "
        nop
        eor r2, r0, r4     ; share 0
        mov r6, r7         ; public spacer rewrites bus 0
        mov r6, r7
        eor r3, r1, r5     ; share 1 — bus no longer holds share 0
        nop
        halt
    ",
    )
    .expect("embedded scenario assembles");

    // Hardening 2: swap the (commutative) operands of the second eor so
    // the shares sit in different positions — the flip side of the
    // paper's operand-swap warning: a swap can create *or* remove
    // leakage, and nothing at the ISA level tells you which.
    let swapped = assemble(
        "
        nop
        eor r2, r0, r4     ; share 0 in position 0
        eor r3, r5, r1     ; share 1 moved to position 1
        nop
        halt
    ",
    )
    .expect("embedded scenario assembles");

    // The same two fixes, derived automatically from the vulnerable
    // schedule by the sca-sched rewriters.
    let policy = SharePolicy::new().with_secret_regs([Reg::R0, Reg::R1]);
    let scheduled = harden_program(
        &vulnerable,
        &policy,
        &HardenConfig {
            min_distance: 2,
            ..HardenConfig::default()
        },
    )
    .expect("vulnerable schedule hardens")
    .program;
    let (pinned, swaps) = pin_lanes(&vulnerable, &policy).expect("vulnerable schedule pins");
    assert!(swaps > 0, "the lane pinner must act on the vulnerable pair");

    vec![
        MaskingScenario {
            name: "vulnerable",
            description: "shares in the same operand position, back to back",
            program: vulnerable,
            expect_operand_path_leak: true,
        },
        MaskingScenario {
            name: "spaced (hand)",
            description: "public spacer instructions between the shares",
            program: spaced,
            expect_operand_path_leak: false,
        },
        MaskingScenario {
            name: "swapped (hand)",
            description: "commutative operand swap moves share 1 to bus 1",
            program: swapped,
            expect_operand_path_leak: false,
        },
        MaskingScenario {
            name: "sca-sched harden",
            description: "share-distance scheduler inserts bus scrubs",
            program: scheduled,
            expect_operand_path_leak: false,
        },
        MaskingScenario {
            name: "sca-sched pin-lanes",
            description: "lane pinner swaps the second eor automatically",
            program: pinned,
            expect_operand_path_leak: false,
        },
    ]
}

/// Audits one scenario with the shared models and staging.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn audit_scenario(
    scenario: &MaskingScenario,
    uarch: &UarchConfig,
    config: &AuditConfig,
) -> Result<AuditReport, UarchError> {
    audit_program(
        uarch,
        &scenario.program,
        8,
        stage_shares,
        &share_models(),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_cover_both_verdicts() {
        let scenarios = masking_scenarios();
        assert_eq!(scenarios.len(), 5);
        assert!(scenarios[0].expect_operand_path_leak);
        assert!(scenarios[1..].iter().all(|s| !s.expect_operand_path_leak));
    }
}
