//! The Table 2 leakage characterization: seven micro-benchmarks, one
//! leakage-model expression per potentially-leaking component, Pearson
//! correlation with >99.5% Fisher-z significance.
//!
//! Each benchmark is a 2–4 instruction kernel framed by 100 `nop`s inside
//! a trigger window, run with fresh random operands per trace (averaged
//! over several executions, as in the paper's protocol), with destination
//! registers pre-charged to their expected results. The model expressions
//! are those printed in the paper's Table 2 (`rB`, `rB ⊕ rD`, `rC ≪ n`,
//! …); the *expected* verdicts encode the paper's findings:
//!
//! * the register file never leaks;
//! * IS/EX buffers leak same-position operand HDs of single-issued
//!   instructions, plus operand HWs when a `nop`'s zeros separate them;
//! * the ALUs leak result HWs; the shifter buffer leaks shifted-value
//!   HWs at ~1/10 weight;
//! * EX/WB leaks HDs between single-issued results, with †-marked
//!   boundary HWs caused by `nop`s zeroing the write-back bus;
//! * dual-issued pairs do not combine operands or results;
//! * the MDR leaks HDs between successive full memory words; the align
//!   buffer leaks HDs between successive sub-word values, with remanence
//!   across intervening word accesses.

use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;

use sca_analysis::{significance_threshold, PearsonAccumulator};
use sca_campaign::{run_sharded, Mergeable, ShardPlan};
use sca_isa::{AddrMode, Insn, Program, ProgramBuilder, Reg, ShiftKind};
use sca_power::{ComponentPowerRecorder, GaussianNoise, LeakageWeights, NoiseSource};
use sca_uarch::{Cpu, NodeKind, NullObserver, UarchConfig, UarchError};

/// Paper-derived expectation for one model cell of Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// Statistically sound leakage (printed red in the paper).
    Red,
    /// Leakage caused by the `nop` boundary effects (red with † in the
    /// paper).
    RedBoundary,
    /// No significant correlation (printed black).
    Black,
}

impl Expectation {
    /// Whether significance is expected.
    pub fn leaks(self) -> bool {
        !matches!(self, Expectation::Black)
    }
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expectation::Red => f.write_str("RED"),
            Expectation::RedBoundary => f.write_str("RED†"),
            Expectation::Black => f.write_str("black"),
        }
    }
}

type ModelFn = Arc<dyn Fn(&[u8]) -> f64 + Send + Sync>;
type StageFn = Arc<dyn Fn(&mut Cpu, &[u8]) + Send + Sync>;

/// One leakage-model expression attached to a component column.
#[derive(Clone)]
pub struct ModelSpec {
    /// Component the model targets (Table 2 column).
    pub component: NodeKind,
    /// The expression as printed in the paper (e.g. `rB ⊕ rD`).
    pub expr: String,
    /// Paper-derived expected verdict.
    pub expected: Expectation,
    model: ModelFn,
}

impl ModelSpec {
    fn new(
        component: NodeKind,
        expr: impl Into<String>,
        expected: Expectation,
        model: impl Fn(&[u8]) -> f64 + Send + Sync + 'static,
    ) -> ModelSpec {
        ModelSpec {
            component,
            expr: expr.into(),
            expected,
            model: Arc::new(model),
        }
    }
}

impl fmt::Debug for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ModelSpec({} / {} / {:?})",
            self.component, self.expr, self.expected
        )
    }
}

/// One of the seven Table 2 micro-benchmarks.
#[derive(Clone)]
pub struct LeakBenchmark {
    /// Row number in the paper's Table 2 (1-based).
    pub row: usize,
    /// The instruction sequence, as displayed in the paper.
    pub sequence: String,
    /// Whether the paper reports the pair as dual-issued.
    pub dual_issued: bool,
    /// Number of random 32-bit input words per trace.
    pub input_words: usize,
    program: Program,
    stage: StageFn,
    /// The model expressions of this row.
    pub models: Vec<ModelSpec>,
}

impl fmt::Debug for LeakBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LeakBenchmark(row {}: {})", self.row, self.sequence)
    }
}

/// Number of framing `nop`s on each side of a kernel (as in the paper).
pub const PAD_NOPS: usize = 100;

/// Scratch addresses used by the memory benchmarks (distinct cache lines
/// and distinct containing words).
const MEM_A: u32 = 0x8000;
const MEM_B: u32 = 0x8040;
const MEM_C: u32 = 0x8080;
const MEM_D: u32 = 0x80c0;

fn kernel_program(kernel: Vec<Insn>) -> Program {
    ProgramBuilder::new(0)
        .push(Insn::trig(true))
        .nops(PAD_NOPS)
        .extend(kernel)
        .nops(PAD_NOPS)
        .push(Insn::trig(false))
        .push(Insn::halt())
        .build()
        .expect("characterization kernels encode")
}

fn word(input: &[u8], i: usize) -> u32 {
    sca_analysis::input_word(input, i)
}

fn hw(v: u32) -> f64 {
    f64::from(v.count_ones())
}

fn hd(a: u32, b: u32) -> f64 {
    f64::from((a ^ b).count_ones())
}

/// Builds all seven benchmarks of Table 2.
pub fn table2_benchmarks() -> Vec<LeakBenchmark> {
    use Expectation::{Black, Red, RedBoundary};
    use NodeKind::{AlignBuffer, Alu, ExWbBuffer, IsExBuffer, Mdr, RegisterFile, ShiftBuffer};

    let mut benchmarks = Vec::new();

    // Row 1: mov rA, rB; nop; mov rC, rD       (rB = w0, rD = w1)
    benchmarks.push(LeakBenchmark {
        row: 1,
        sequence: "mov rA, rB; nop; mov rC, rD".into(),
        dual_issued: false,
        input_words: 2,
        program: kernel_program(vec![
            Insn::mov(Reg::R0, Reg::R1),
            Insn::nop(),
            Insn::mov(Reg::R3, Reg::R2),
        ]),
        stage: Arc::new(|cpu, input| {
            cpu.set_reg(Reg::R1, word(input, 0));
            cpu.set_reg(Reg::R2, word(input, 1));
            // Destination pre-charge (paper, Section 4).
            cpu.set_reg(Reg::R0, word(input, 0));
            cpu.set_reg(Reg::R3, word(input, 1));
        }),
        models: vec![
            ModelSpec::new(RegisterFile, "rB", Black, |i| hw(word(i, 0))),
            ModelSpec::new(RegisterFile, "rD", Black, |i| hw(word(i, 1))),
            ModelSpec::new(IsExBuffer, "rB", Red, |i| hw(word(i, 0))),
            ModelSpec::new(IsExBuffer, "rD", Red, |i| hw(word(i, 1))),
            ModelSpec::new(IsExBuffer, "rB ^ rD", Red, |i| hd(word(i, 0), word(i, 1))),
            ModelSpec::new(ExWbBuffer, "rB (†)", RedBoundary, |i| hw(word(i, 0))),
            ModelSpec::new(ExWbBuffer, "rD (†)", RedBoundary, |i| hw(word(i, 1))),
            ModelSpec::new(ExWbBuffer, "rB ^ rD", Red, |i| hd(word(i, 0), word(i, 1))),
        ],
    });

    // Row 2: add rA, rB, rC; add rD, rE, rF    (w0..w3 = rB, rC, rE, rF)
    benchmarks.push(LeakBenchmark {
        row: 2,
        sequence: "add rA, rB, rC; add rD, rE, rF".into(),
        dual_issued: false,
        input_words: 4,
        program: kernel_program(vec![
            Insn::add(Reg::R0, Reg::R1, Reg::R2),
            Insn::add(Reg::R5, Reg::R3, Reg::R4),
        ]),
        stage: Arc::new(|cpu, input| {
            cpu.set_reg(Reg::R1, word(input, 0));
            cpu.set_reg(Reg::R2, word(input, 1));
            cpu.set_reg(Reg::R3, word(input, 2));
            cpu.set_reg(Reg::R4, word(input, 3));
            cpu.set_reg(Reg::R0, word(input, 0).wrapping_add(word(input, 1)));
            cpu.set_reg(Reg::R5, word(input, 2).wrapping_add(word(input, 3)));
        }),
        models: vec![
            ModelSpec::new(RegisterFile, "rB", Black, |i| hw(word(i, 0))),
            ModelSpec::new(RegisterFile, "rC", Black, |i| hw(word(i, 1))),
            ModelSpec::new(RegisterFile, "rE", Black, |i| hw(word(i, 2))),
            ModelSpec::new(RegisterFile, "rF", Black, |i| hw(word(i, 3))),
            ModelSpec::new(IsExBuffer, "rB ^ rE", Red, |i| hd(word(i, 0), word(i, 2))),
            ModelSpec::new(IsExBuffer, "rC ^ rF", Red, |i| hd(word(i, 1), word(i, 3))),
            ModelSpec::new(IsExBuffer, "rB ^ rF (cross)", Black, |i| {
                hd(word(i, 0), word(i, 3))
            }),
            ModelSpec::new(Alu, "rA", Red, |i| hw(word(i, 0).wrapping_add(word(i, 1)))),
            ModelSpec::new(Alu, "rD", Red, |i| hw(word(i, 2).wrapping_add(word(i, 3)))),
            ModelSpec::new(Alu, "rB", Black, |i| hw(word(i, 0))),
            ModelSpec::new(ExWbBuffer, "rA (†)", RedBoundary, |i| {
                hw(word(i, 0).wrapping_add(word(i, 1)))
            }),
            ModelSpec::new(ExWbBuffer, "rD (†)", RedBoundary, |i| {
                hw(word(i, 2).wrapping_add(word(i, 3)))
            }),
            ModelSpec::new(ExWbBuffer, "rA ^ rD", Red, |i| {
                hd(
                    word(i, 0).wrapping_add(word(i, 1)),
                    word(i, 2).wrapping_add(word(i, 3)),
                )
            }),
        ],
    });

    // Row 3: add rA, rB, rC; add rD, rE, #n    (dual-issued; w0..w2)
    benchmarks.push(LeakBenchmark {
        row: 3,
        sequence: "add rA, rB, rC; add rD, rE, #n (dual-issued)".into(),
        dual_issued: true,
        input_words: 3,
        program: kernel_program(vec![
            Insn::add(Reg::R0, Reg::R1, Reg::R2),
            Insn::add(Reg::R5, Reg::R3, 7u32),
        ]),
        stage: Arc::new(|cpu, input| {
            cpu.set_reg(Reg::R1, word(input, 0));
            cpu.set_reg(Reg::R2, word(input, 1));
            cpu.set_reg(Reg::R3, word(input, 2));
            cpu.set_reg(Reg::R0, word(input, 0).wrapping_add(word(input, 1)));
            cpu.set_reg(Reg::R5, word(input, 2).wrapping_add(7));
        }),
        models: vec![
            ModelSpec::new(RegisterFile, "rB", Black, |i| hw(word(i, 0))),
            ModelSpec::new(RegisterFile, "rE", Black, |i| hw(word(i, 2))),
            // Dual-issued: source operands share no pipeline resource.
            ModelSpec::new(IsExBuffer, "rB ^ rE", Black, |i| hd(word(i, 0), word(i, 2))),
            ModelSpec::new(IsExBuffer, "rC ^ rE", Black, |i| hd(word(i, 1), word(i, 2))),
            ModelSpec::new(Alu, "rA", Red, |i| hw(word(i, 0).wrapping_add(word(i, 1)))),
            ModelSpec::new(Alu, "rD", Red, |i| hw(word(i, 2).wrapping_add(7))),
            ModelSpec::new(ExWbBuffer, "rA (†)", RedBoundary, |i| {
                hw(word(i, 0).wrapping_add(word(i, 1)))
            }),
            ModelSpec::new(ExWbBuffer, "rD (†)", RedBoundary, |i| {
                hw(word(i, 2).wrapping_add(7))
            }),
            // Dual-issued results ride separate write-back buses.
            ModelSpec::new(ExWbBuffer, "rA ^ rD", Black, |i| {
                hd(
                    word(i, 0).wrapping_add(word(i, 1)),
                    word(i, 2).wrapping_add(7),
                )
            }),
        ],
    });

    // Row 4: add rA, rB, rC, lsl #4; add rD, rE, rF, lsl #4  (w0..w3)
    let shifted = |rm: Reg| sca_isa::Operand2::ShiftedReg {
        rm,
        kind: ShiftKind::Lsl,
        amount: sca_isa::ShiftAmount::Imm(4),
    };
    benchmarks.push(LeakBenchmark {
        row: 4,
        sequence: "add rA, rB, rC, lsl #4; add rD, rE, rF, lsl #4".into(),
        dual_issued: false,
        input_words: 4,
        program: kernel_program(vec![
            Insn::add(Reg::R0, Reg::R1, shifted(Reg::R2)),
            Insn::add(Reg::R5, Reg::R3, shifted(Reg::R4)),
        ]),
        stage: Arc::new(|cpu, input| {
            cpu.set_reg(Reg::R1, word(input, 0));
            cpu.set_reg(Reg::R2, word(input, 1));
            cpu.set_reg(Reg::R3, word(input, 2));
            cpu.set_reg(Reg::R4, word(input, 3));
            cpu.set_reg(Reg::R0, word(input, 0).wrapping_add(word(input, 1) << 4));
            cpu.set_reg(Reg::R5, word(input, 2).wrapping_add(word(input, 3) << 4));
        }),
        models: vec![
            ModelSpec::new(RegisterFile, "rB", Black, |i| hw(word(i, 0))),
            ModelSpec::new(IsExBuffer, "rB ^ rE", Red, |i| hd(word(i, 0), word(i, 2))),
            ModelSpec::new(IsExBuffer, "rC ^ rF", Red, |i| hd(word(i, 1), word(i, 3))),
            ModelSpec::new(ShiftBuffer, "rC << n", Red, |i| hw(word(i, 1) << 4)),
            ModelSpec::new(ShiftBuffer, "rF << n", Red, |i| hw(word(i, 3) << 4)),
            ModelSpec::new(Alu, "rA", Red, |i| {
                hw(word(i, 0).wrapping_add(word(i, 1) << 4))
            }),
            ModelSpec::new(Alu, "rD", Red, |i| {
                hw(word(i, 2).wrapping_add(word(i, 3) << 4))
            }),
            ModelSpec::new(ExWbBuffer, "rA (†)", RedBoundary, |i| {
                hw(word(i, 0).wrapping_add(word(i, 1) << 4))
            }),
            ModelSpec::new(ExWbBuffer, "rA ^ rD", Red, |i| {
                hd(
                    word(i, 0).wrapping_add(word(i, 1) << 4),
                    word(i, 2).wrapping_add(word(i, 3) << 4),
                )
            }),
        ],
    });

    // Row 5: ldr rA, [rB]; ldr rC, [rD]   (loaded words w0, w1)
    benchmarks.push(LeakBenchmark {
        row: 5,
        sequence: "ldr rA, [rB]; ldr rC, [rD]".into(),
        dual_issued: false,
        input_words: 2,
        program: kernel_program(vec![
            Insn::ldr(Reg::R0, AddrMode::base(Reg::R8)),
            Insn::ldr(Reg::R2, AddrMode::base(Reg::R9)),
        ]),
        stage: Arc::new(|cpu, input| {
            cpu.set_reg(Reg::R8, MEM_A);
            cpu.set_reg(Reg::R9, MEM_B);
            cpu.mem_mut()
                .write_u32(MEM_A, word(input, 0))
                .expect("scratch mapped");
            cpu.mem_mut()
                .write_u32(MEM_B, word(input, 1))
                .expect("scratch mapped");
            cpu.set_reg(Reg::R0, word(input, 0));
            cpu.set_reg(Reg::R2, word(input, 1));
        }),
        models: vec![
            ModelSpec::new(RegisterFile, "rB", Black, |_| 0.0),
            ModelSpec::new(Mdr, "rA ^ rC", Red, |i| hd(word(i, 0), word(i, 1))),
            ModelSpec::new(ExWbBuffer, "rA (†)", RedBoundary, |i| hw(word(i, 0))),
            ModelSpec::new(ExWbBuffer, "rC (†)", RedBoundary, |i| hw(word(i, 1))),
            ModelSpec::new(ExWbBuffer, "rA ^ rC", Red, |i| hd(word(i, 0), word(i, 1))),
            ModelSpec::new(AlignBuffer, "rA ^ rC", Black, |i| {
                hd(word(i, 0), word(i, 1))
            }),
        ],
    });

    // Row 6: str rA, [rB]; str rC, [rD]   (stored words w0, w1)
    benchmarks.push(LeakBenchmark {
        row: 6,
        sequence: "str rA, [rB]; str rC, [rD]".into(),
        dual_issued: false,
        input_words: 2,
        program: kernel_program(vec![
            Insn::str(Reg::R0, AddrMode::base(Reg::R8)),
            Insn::str(Reg::R2, AddrMode::base(Reg::R9)),
        ]),
        stage: Arc::new(|cpu, input| {
            cpu.set_reg(Reg::R8, MEM_A);
            cpu.set_reg(Reg::R9, MEM_B);
            cpu.set_reg(Reg::R0, word(input, 0));
            cpu.set_reg(Reg::R2, word(input, 1));
            // Target cells hold stale random data from the previous
            // trace; overwrite deterministically so the MDR transition is
            // exactly w0 -> w1.
            cpu.mem_mut().write_u32(MEM_A, 0).expect("scratch mapped");
            cpu.mem_mut().write_u32(MEM_B, 0).expect("scratch mapped");
        }),
        models: vec![
            ModelSpec::new(RegisterFile, "rB", Black, |_| 0.0),
            ModelSpec::new(IsExBuffer, "rA ^ rC", Red, |i| hd(word(i, 0), word(i, 1))),
            ModelSpec::new(Mdr, "rA ^ rC", Red, |i| hd(word(i, 0), word(i, 1))),
            ModelSpec::new(AlignBuffer, "rA ^ rC", Black, |i| {
                hd(word(i, 0), word(i, 1))
            }),
        ],
    });

    // Row 7: ldr rA,[rB]; ldrb rC,[rD]; ldr rE,[rF]; ldrb rG,[rH]
    // Inputs w0..w3 are the full words at the four addresses; the byte
    // loads read the low bytes of w1 and w3.
    benchmarks.push(LeakBenchmark {
        row: 7,
        sequence: "ldr rA,[rB]; ldrb rC,[rD]; ldr rE,[rF]; ldrb rG,[rH]".into(),
        dual_issued: false,
        input_words: 4,
        program: kernel_program(vec![
            Insn::ldr(Reg::R0, AddrMode::base(Reg::R8)),
            Insn::ldrb(Reg::R1, AddrMode::base(Reg::R9)),
            Insn::ldr(Reg::R2, AddrMode::base(Reg::R10)),
            Insn::ldrb(Reg::R3, AddrMode::base(Reg::R11)),
        ]),
        stage: Arc::new(|cpu, input| {
            cpu.set_reg(Reg::R8, MEM_A);
            cpu.set_reg(Reg::R9, MEM_B);
            cpu.set_reg(Reg::R10, MEM_C);
            cpu.set_reg(Reg::R11, MEM_D);
            for (k, addr) in [MEM_A, MEM_B, MEM_C, MEM_D].into_iter().enumerate() {
                cpu.mem_mut()
                    .write_u32(addr, word(input, k))
                    .expect("scratch mapped");
            }
            cpu.set_reg(Reg::R0, word(input, 0));
            cpu.set_reg(Reg::R1, word(input, 1) & 0xff);
            cpu.set_reg(Reg::R2, word(input, 2));
            cpu.set_reg(Reg::R3, word(input, 3) & 0xff);
        }),
        models: vec![
            // MDR sees full words for every access, sub-word included.
            ModelSpec::new(Mdr, "wA ^ wC", Red, |i| hd(word(i, 0), word(i, 1))),
            ModelSpec::new(Mdr, "wC ^ wE", Red, |i| hd(word(i, 1), word(i, 2))),
            ModelSpec::new(Mdr, "wE ^ wG", Red, |i| hd(word(i, 2), word(i, 3))),
            // The align buffer pairs the two byte loads across the
            // intervening word load (data remanence).
            ModelSpec::new(AlignBuffer, "rC ^ rG", Red, |i| {
                hd(word(i, 1) & 0xff, word(i, 3) & 0xff)
            }),
            ModelSpec::new(AlignBuffer, "rC ^ rE (word breaks it?)", Black, |i| {
                hd(word(i, 1) & 0xff, word(i, 2))
            }),
            ModelSpec::new(ExWbBuffer, "rA ^ rC", Red, |i| {
                hd(word(i, 0), word(i, 1) & 0xff)
            }),
            ModelSpec::new(ExWbBuffer, "rE ^ rG", Red, |i| {
                hd(word(i, 2), word(i, 3) & 0xff)
            }),
        ],
    });

    benchmarks
}

/// One evaluated cell of Table 2.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Component column.
    pub component: NodeKind,
    /// Model expression.
    pub expr: String,
    /// Peak |correlation| across the window.
    pub peak_corr: f64,
    /// Sample index of the peak.
    pub peak_sample: usize,
    /// Whether the correlation is significant at the configured level.
    pub significant: bool,
    /// The paper-derived expectation.
    pub expected: Expectation,
}

impl CellResult {
    /// Whether our verdict matches the paper's.
    pub fn matches_paper(&self) -> bool {
        self.significant == self.expected.leaks()
    }
}

/// One evaluated benchmark row.
#[derive(Clone, Debug)]
pub struct RowResult {
    /// Row number (1-based, as in the paper).
    pub row: usize,
    /// Kernel description.
    pub sequence: String,
    /// Whether the kernel dual-issued when run.
    pub dual_issued: bool,
    /// Traces used.
    pub traces: usize,
    /// Per-model outcomes.
    pub cells: Vec<CellResult>,
}

/// The full Table 2 reproduction.
#[derive(Clone, Debug)]
pub struct Table2Report {
    /// All rows.
    pub rows: Vec<RowResult>,
    /// Significance level used (the paper's is 0.995).
    pub confidence: f64,
}

impl Table2Report {
    /// Number of cells whose verdict matches the paper.
    pub fn matching_cells(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| &r.cells)
            .filter(|c| c.matches_paper())
            .count()
    }

    /// Total number of cells.
    pub fn total_cells(&self) -> usize {
        self.rows.iter().map(|r| r.cells.len()).sum()
    }

    /// Renders the table in a paper-like layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Table 2 reproduction — leakage detection at {:.1}% confidence\n",
            self.confidence * 100.0
        ));
        out.push_str(&format!(
            "{} of {} cells match the paper's verdicts\n\n",
            self.matching_cells(),
            self.total_cells()
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "Row {}: {}   [dual-issued: {}; {} traces]\n",
                row.row,
                row.sequence,
                if row.dual_issued { "yes" } else { "no" },
                row.traces
            ));
            for cell in &row.cells {
                let verdict = if cell.significant { "RED  " } else { "black" };
                let mark = if cell.matches_paper() { ' ' } else { '!' };
                out.push_str(&format!(
                    "  {mark} {:<14} {:<24} corr {:+.4} @ {:<5} -> {verdict} (paper: {})\n",
                    cell.component.label(),
                    cell.expr,
                    cell.peak_corr,
                    cell.peak_sample,
                    cell.expected,
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// Configuration of a characterization campaign.
#[derive(Clone, Debug)]
pub struct CharacterizationConfig {
    /// Traces per benchmark (the paper records 100k; simulation needs far
    /// fewer for the same confidence because the noise is configurable).
    pub traces: usize,
    /// Executions averaged per trace (paper: 16).
    pub executions_per_trace: usize,
    /// Measurement noise.
    pub noise: GaussianNoise,
    /// Detection confidence (paper: 0.995).
    pub confidence: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Work-unit granularity of the sharded engine (`--batch`). The
    /// characterization streams each trace into its accumulators
    /// immediately, so unlike the attack campaigns this buffers nothing
    /// — it only sets how many traces a worker processes per engine
    /// step, and never changes results.
    pub batch: usize,
}

impl Default for CharacterizationConfig {
    fn default() -> CharacterizationConfig {
        CharacterizationConfig {
            // Enough for the weakest leak (the barrel-shifter buffer, at
            // ~1/10 the magnitude of the other components) to clear the
            // 99.5% threshold; the paper compensates with 100k traces.
            traces: 4000,
            executions_per_trace: 4,
            noise: GaussianNoise {
                sd: 6.0,
                baseline: 30.0,
            },
            confidence: 0.995,
            seed: 0xdac2018,
            threads: 4,
            batch: sca_campaign::DEFAULT_BATCH,
        }
    }
}

/// Streaming sink of one characterization row: one mergeable Pearson
/// accumulator per model cell, each correlating its expression against
/// its component's power sub-trace.
struct RowSink {
    /// Index-aligned with the benchmark's `models`.
    accs: Vec<PearsonAccumulator>,
    traces: u64,
}

impl Mergeable for RowSink {
    fn merge(&mut self, other: RowSink) {
        for (acc, theirs) in self.accs.iter_mut().zip(&other.accs) {
            acc.merge(theirs);
        }
        self.traces += other.traces;
    }
}

/// Runs one benchmark row and evaluates its models.
///
/// Leakage is attributed per component: the acquisition records one
/// power sub-trace per pipeline component ("ascribing the power
/// consumption of a signal to its driving circuit", as the paper puts
/// it, borrowing EDA practice), and each Table 2 cell correlates its
/// model expression against its own component's sub-trace. This is the
/// simulation equivalent of the paper's "correlation in the correct
/// clock cycle" criterion and is what distinguishes the silent
/// register-file read ports from the operand buses that carry the same
/// values one cycle later.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn run_benchmark(
    benchmark: &LeakBenchmark,
    uarch: &UarchConfig,
    config: &CharacterizationConfig,
) -> Result<RowResult, UarchError> {
    use rand::Rng as _;
    use rand::SeedableRng;

    // Template CPU, warmed by one throwaway execution.
    let mut template = Cpu::new(uarch.clone());
    template.load(&benchmark.program)?;
    (benchmark.stage)(&mut template, &vec![0u8; benchmark.input_words * 4]);
    template.run(&mut NullObserver)?;
    let dual_issued = template.stats().dual_issue_cycles > 0;

    // Noise-free probe runs with distinct inputs determine the window
    // length and, per component, the sample instants whose power is
    // input-dependent — the "correct clock cycle" of each potential
    // leak. Correlations are only meaningful there; testing the whole
    // window would drown the verdicts in multiple-comparison false
    // positives (the paper's per-cycle criterion serves the same
    // purpose).
    let (window_len, instants) = {
        let mut probes: Vec<Vec<Vec<f64>>> = Vec::new();
        for probe_seed in [11u64, 22, 33] {
            let mut probe = template.clone();
            // Identical scramble seed: power differences between probes
            // are then attributable to the input alone. Inputs are
            // pseudorandom (not uniform fills), so HD-type instants with
            // equal-value operands are not missed.
            probe.restart_seeded(0, 77);
            let mut probe_rng = StdRng::seed_from_u64(probe_seed);
            let mut input = vec![0u8; benchmark.input_words * 4];
            probe_rng.fill(&mut input[..]);
            (benchmark.stage)(&mut probe, &input);
            let mut rec = ComponentPowerRecorder::new(LeakageWeights::cortex_a7());
            probe.run(&mut rec)?;
            probes.push(
                NodeKind::ALL
                    .iter()
                    .map(|&kind| rec.windowed_power(kind))
                    .collect(),
            );
        }
        let window_len = probes[0][0].len();
        let mut instants: Vec<Vec<usize>> = vec![Vec::new(); NodeKind::COUNT];
        for kind in NodeKind::ALL {
            for s in 0..window_len {
                let a = probes[0][kind.index()].get(s).copied().unwrap_or(0.0);
                let b = probes[1][kind.index()].get(s).copied().unwrap_or(0.0);
                let c = probes[2][kind.index()].get(s).copied().unwrap_or(0.0);
                if (a - b).abs() > 1e-9 || (a - c).abs() > 1e-9 {
                    instants[kind.index()].push(s);
                }
            }
        }
        (window_len, instants)
    };

    // Streaming acquisition through the sharded campaign engine: each
    // worker synthesizes its index range's multi-channel traces and folds
    // them straight into per-cell Pearson accumulators, so memory is
    // O(cells × window) instead of O(traces × components × window).
    let seed = config.seed ^ ((benchmark.row as u64) << 32);
    let plan = ShardPlan {
        items: config.traces,
        threads: config.threads,
        batch: config.batch,
    };
    let stage = &benchmark.stage;
    let words = benchmark.input_words;
    let noise = config.noise;
    let executions = config.executions_per_trace.max(1);
    // One reusable multi-channel worker per shard (the `SimArena`
    // pattern): CPU clone, recorder and scratch buffers live for the
    // whole index range instead of being allocated per execution.
    struct RowWorker {
        cpu: Cpu,
        recorder: ComponentPowerRecorder,
        accumulated: Vec<Vec<f64>>,
        samples: Vec<f64>,
        channels: Vec<Vec<f32>>,
    }
    let sink = run_sharded(
        &plan,
        || RowWorker {
            cpu: template.clone(),
            recorder: ComponentPowerRecorder::new(LeakageWeights::cortex_a7()),
            accumulated: vec![Vec::new(); NodeKind::COUNT],
            samples: Vec::new(),
            channels: vec![Vec::new(); NodeKind::COUNT],
        },
        || RowSink {
            accs: benchmark
                .models
                .iter()
                .map(|_| PearsonAccumulator::new(window_len))
                .collect(),
            traces: 0,
        },
        |worker, sink, range| {
            for t in range {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 0x9e37));
                let mut input = vec![0u8; words * 4];
                rng.fill(&mut input[..]);
                for channel in &mut worker.accumulated {
                    channel.clear();
                    channel.resize(window_len, 0.0);
                }
                for e in 0..executions {
                    worker
                        .cpu
                        .restart_seeded(0, seed ^ ((t as u64) << 8 | e as u64));
                    stage(&mut worker.cpu, &input);
                    worker.recorder.reset();
                    worker.cpu.run(&mut worker.recorder)?;
                    let mut gauss = noise;
                    for kind in NodeKind::ALL {
                        worker
                            .recorder
                            .windowed_power_into(kind, &mut worker.samples);
                        worker.samples.resize(window_len, 0.0);
                        gauss.add_to(&mut rng, &mut worker.samples);
                        for (a, s) in worker.accumulated[kind.index()]
                            .iter_mut()
                            .zip(&worker.samples)
                        {
                            *a += s;
                        }
                    }
                }
                let inv = 1.0 / executions as f64;
                for (channel, accumulated) in worker.channels.iter_mut().zip(&worker.accumulated) {
                    channel.clear();
                    channel.extend(accumulated.iter().map(|&s| (s * inv) as f32));
                }
                for (spec, acc) in benchmark.models.iter().zip(&mut sink.accs) {
                    acc.add(
                        (spec.model)(&input),
                        &worker.channels[spec.component.index()],
                    );
                }
                sink.traces += 1;
            }
            Ok::<(), UarchError>(())
        },
    )?;

    let n = sink.traces;
    let cells = benchmark
        .models
        .iter()
        .zip(&sink.accs)
        .map(|(spec, acc)| {
            let series = acc.correlations();
            let candidates = &instants[spec.component.index()];
            let (peak_sample, peak_corr) = candidates
                .iter()
                .filter(|&&s| s < series.len())
                .map(|&s| (s, series[s]))
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
                .unwrap_or((0, 0.0));
            // Bonferroni over the candidate instants keeps the per-cell
            // false-positive rate at (1 - confidence).
            let corrected = 1.0 - (1.0 - config.confidence) / candidates.len().max(1) as f64;
            let threshold = significance_threshold(n, corrected);
            CellResult {
                component: spec.component,
                expr: spec.expr.clone(),
                peak_corr,
                peak_sample,
                significant: peak_corr.abs() >= threshold,
                expected: spec.expected,
            }
        })
        .collect();

    Ok(RowResult {
        row: benchmark.row,
        sequence: benchmark.sequence.clone(),
        dual_issued,
        traces: n as usize,
        cells,
    })
}

/// Runs the full Table 2 characterization.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn characterize(
    uarch: &UarchConfig,
    config: &CharacterizationConfig,
) -> Result<Table2Report, UarchError> {
    let rows = table2_benchmarks()
        .iter()
        .map(|b| run_benchmark(b, uarch, config))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Table2Report {
        rows,
        confidence: config.confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> CharacterizationConfig {
        CharacterizationConfig {
            traces: 400,
            executions_per_trace: 2,
            noise: GaussianNoise {
                sd: 4.0,
                baseline: 10.0,
            },
            threads: 4,
            ..CharacterizationConfig::default()
        }
    }

    fn cell<'a>(row: &'a RowResult, component: NodeKind, expr: &str) -> &'a CellResult {
        row.cells
            .iter()
            .find(|c| c.component == component && c.expr == expr)
            .unwrap_or_else(|| panic!("cell {component}/{expr} missing"))
    }

    #[test]
    fn benchmarks_cover_all_seven_rows() {
        let benchmarks = table2_benchmarks();
        assert_eq!(benchmarks.len(), 7);
        for (i, b) in benchmarks.iter().enumerate() {
            assert_eq!(b.row, i + 1);
            assert!(!b.models.is_empty());
        }
    }

    #[test]
    fn row1_nop_interleaved_movs() {
        let benchmarks = table2_benchmarks();
        let uarch = UarchConfig::cortex_a7().with_ideal_memory();
        let row = run_benchmark(&benchmarks[0], &uarch, &quick_config()).unwrap();
        assert!(!row.dual_issued);
        // RF silent; IS/EX shows both the HW (nop zeros) and HD leaks.
        assert!(!cell(&row, NodeKind::RegisterFile, "rB").significant);
        assert!(cell(&row, NodeKind::IsExBuffer, "rB").significant);
        assert!(cell(&row, NodeKind::IsExBuffer, "rB ^ rD").significant);
        assert!(cell(&row, NodeKind::ExWbBuffer, "rB ^ rD").significant);
        assert!(cell(&row, NodeKind::ExWbBuffer, "rB (†)").significant);
    }

    #[test]
    fn row3_dual_issue_suppresses_operand_combination() {
        let benchmarks = table2_benchmarks();
        let uarch = UarchConfig::cortex_a7().with_ideal_memory();
        let row = run_benchmark(&benchmarks[2], &uarch, &quick_config()).unwrap();
        assert!(row.dual_issued, "row 3 pair must dual-issue");
        assert!(!cell(&row, NodeKind::IsExBuffer, "rB ^ rE").significant);
        assert!(!cell(&row, NodeKind::ExWbBuffer, "rA ^ rD").significant);
        assert!(cell(&row, NodeKind::Alu, "rA").significant);
    }

    #[test]
    fn row7_align_buffer_remanence() {
        let benchmarks = table2_benchmarks();
        let uarch = UarchConfig::cortex_a7().with_ideal_memory();
        let row = run_benchmark(&benchmarks[6], &uarch, &quick_config()).unwrap();
        assert!(cell(&row, NodeKind::AlignBuffer, "rC ^ rG").significant);
        assert!(cell(&row, NodeKind::Mdr, "wA ^ wC").significant);
    }

    #[test]
    fn report_renders() {
        let report = Table2Report {
            rows: vec![RowResult {
                row: 1,
                sequence: "mov".into(),
                dual_issued: false,
                traces: 10,
                cells: vec![CellResult {
                    component: NodeKind::Mdr,
                    expr: "x".into(),
                    peak_corr: 0.5,
                    peak_sample: 3,
                    significant: true,
                    expected: Expectation::Red,
                }],
            }],
            confidence: 0.995,
        };
        let text = report.render();
        assert!(text.contains("Row 1"));
        assert!(text.contains("RED"));
        assert!(text.contains("1 of 1"));
    }
}
