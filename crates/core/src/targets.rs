//! Target-generic leakage audits: the [`audit_program`] machinery wired
//! to the `sca-target` cipher portfolio.
//!
//! A [`sca_target::CipherTarget`] already carries everything the audit
//! needs — the program image, the memory-contract staging, leakage
//! models with the true key, and a symbol-level analysis window — so
//! auditing a cipher reduces to adapting the trait: the target's
//! models (evaluated at the true key) become the audit's secret
//! expressions, and its primary window is resolved into absolute
//! cycles by one probe run. No cipher is named anywhere.

use sca_target::{resolve_window, CipherTarget, TargetError};
use sca_uarch::{Node, UarchConfig};

use crate::{audit_program, AuditConfig, AuditReport, SecretModel};

/// Audits a cipher target's models against every microarchitectural
/// node inside the target's primary window.
///
/// The audit constructs its own bare CPU, so each execution stages the
/// full memory contract ([`CipherTarget::stage_constants`]) before the
/// per-execution input — unlike campaigns, which reuse a warmed
/// template.
///
/// # Errors
///
/// Propagates simulator faults; a misconfigured target window surfaces
/// as [`TargetError::Window`] naming the target instead of a panic.
pub fn audit_cipher_target(
    target: &dyn CipherTarget,
    uarch: &UarchConfig,
    config: &AuditConfig,
) -> Result<AuditReport, TargetError> {
    let cpu = target.build(uarch)?;
    let window = resolve_window(target, &cpu, &target.primary_window())?;
    // The audit draws raw random input bytes itself, bypassing the
    // target's `generate`/`finish_input` path — canonicalize before
    // both prediction and staging so derived suffixes (e.g. SPECK's
    // appended ciphertext) are recomputed from the plaintext prefix
    // instead of being read as garbage.
    let canon = target.input_canonicalizer();
    let models: Vec<SecretModel> = target
        .models()
        .into_iter()
        .map(|model| {
            let canon = canon.clone();
            SecretModel::new(model.name.clone(), move |input: &[u8]| {
                model.predict_true(&canon(input))
            })
        })
        .collect();
    Ok(audit_program(
        uarch,
        target.program(),
        target.input_len(),
        |cpu, input| {
            target
                .stage_constants(cpu)
                .expect("target memory contract is mapped");
            target.stage(cpu, &canon(input));
        },
        &models,
        &AuditConfig {
            window: Some(window.absolute),
            ..config.clone()
        },
    )?)
}

/// Counts a report's findings on the operand path (operand buses,
/// IS/EX buffers) and the memory data path (MDR, align buffer) — the
/// two node families the paper's Section 4.2 argument tracks.
pub fn leak_paths(report: &AuditReport) -> (usize, usize) {
    let operand = report
        .findings
        .iter()
        .filter(|f| matches!(f.node, Node::OperandBus(_) | Node::IsExOp { .. }))
        .count();
    let memory = report
        .findings
        .iter()
        .filter(|f| matches!(f.node, Node::Mdr | Node::AlignBuf))
        .count();
    (operand, memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_target::AesTarget;

    /// The unprotected AES target must audit dirty (its S-box outputs
    /// cross the pipeline in the clear) — through the fully generic
    /// trait path.
    #[test]
    fn unprotected_aes_audits_dirty_through_the_trait() {
        let target = AesTarget::default();
        let report = audit_cipher_target(
            &target,
            &UarchConfig::cortex_a7().with_ideal_memory(),
            &AuditConfig {
                executions: 150,
                ..AuditConfig::default()
            },
        )
        .expect("audit runs");
        assert!(!report.is_clean(), "unprotected AES must leak");
        let (operand, memory) = leak_paths(&report);
        assert!(
            operand + memory > 0,
            "expected operand/memory-path findings, got {:?}",
            report.findings
        );
    }
}
