//! The campaign engine: deterministic acquisition fanned across workers,
//! streamed into mergeable sinks.

use rand::rngs::StdRng;

use sca_power::{
    AcquisitionConfig, GaussianNoise, LeakageWeights, SamplingConfig, TraceSynthesizer,
};
use sca_uarch::{Cpu, UarchError};

use crate::{run_sharded, CampaignSink, ShardPlan, SimArena, DEFAULT_BATCH};

/// Default lockstep lane width: the widest block the simulator
/// supports ([`sca_uarch::MAX_LANES`]). Campaigns synthesize traces in
/// groups of this many through one [`sca_uarch::CpuBlock`] pipeline
/// walk; results are bit-identical at every lane count (1 disables the
/// block entirely), so the only trade-off is throughput.
pub const DEFAULT_LANES: usize = sca_uarch::MAX_LANES;

/// Campaign parameters: the acquisition knobs of
/// [`AcquisitionConfig`] plus the sharding batch size.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of averaged traces to acquire.
    pub traces: usize,
    /// Executions averaged into each trace (the paper uses 16).
    pub executions_per_trace: usize,
    /// Sampling chain model.
    pub sampling: SamplingConfig,
    /// Per-execution measurement noise.
    pub noise: GaussianNoise,
    /// Master seed; every trace's RNG stream derives from it.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Traces buffered per worker between sink updates (`--batch`).
    pub batch: usize,
}

impl CampaignConfig {
    /// A quick default campaign of `traces` averaged traces.
    pub fn new(traces: usize) -> CampaignConfig {
        CampaignConfig {
            traces,
            executions_per_trace: 16,
            sampling: SamplingConfig::default(),
            noise: GaussianNoise::bare_metal(),
            seed: 0x5ca_1ab1e,
            threads: 1,
            batch: DEFAULT_BATCH,
        }
    }
}

/// A streaming trace-acquisition campaign over a simulated CPU.
///
/// Wraps a [`TraceSynthesizer`] (so every trace is bit-identical to what
/// the materializing [`TraceSynthesizer::acquire`] path would record)
/// and drives it through the sharded engine: workers synthesize batches
/// of traces and fold them straight into per-worker [`CampaignSink`]s,
/// which merge in worker order at the end. Peak memory is the sink's
/// accumulator plus one batch of traces per worker — never the full
/// `traces × samples` matrix.
#[derive(Clone, Debug)]
pub struct Campaign {
    pub(crate) synth: TraceSynthesizer,
    pub(crate) threads: usize,
    pub(crate) batch: usize,
    pub(crate) lanes: usize,
    pub(crate) window: Option<(usize, usize)>,
}

impl Campaign {
    /// Creates a campaign engine.
    pub fn new(weights: LeakageWeights, config: CampaignConfig) -> Campaign {
        let threads = config.threads.max(1);
        let batch = config.batch.max(1);
        let acquisition = AcquisitionConfig {
            traces: config.traces,
            executions_per_trace: config.executions_per_trace,
            sampling: config.sampling,
            noise: config.noise,
            seed: config.seed,
            threads,
        };
        Campaign {
            synth: TraceSynthesizer::new(weights, acquisition),
            threads,
            batch,
            lanes: DEFAULT_LANES,
            window: None,
        }
    }

    /// Sets the lockstep lane width (builder style): consecutive traces
    /// are synthesized `lanes` at a time through one
    /// [`sca_uarch::CpuBlock`]. Clamped to
    /// `1..=`[`sca_uarch::MAX_LANES`]; 1 disables lockstep entirely.
    /// Results are bit-identical at every setting — the differential
    /// tests in `tests/lockstep_conformance.rs` pin this.
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Campaign {
        self.lanes = lanes.clamp(1, sca_uarch::MAX_LANES);
        self
    }

    /// Restricts the analysis to `samples` points starting at `start`
    /// (builder style). Traces are cropped *before* they reach the
    /// sinks, so accumulators only pay for the window — this is how
    /// `figure3` keeps to round 1 and `figure4` to the SubBytes stores.
    #[must_use]
    pub fn with_window(mut self, start: usize, samples: usize) -> Campaign {
        self.window = Some((start, samples));
        self
    }

    /// The underlying acquisition configuration.
    pub fn config(&self) -> &AcquisitionConfig {
        self.synth.config()
    }

    /// The sharding plan this campaign will run with.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan {
            items: self.synth.config().traces,
            threads: self.threads,
            batch: self.batch,
        }
    }

    /// Runs the campaign, returning the merged sink.
    ///
    /// * `cpu` — loaded (and ideally warmed) template CPU;
    /// * `entry` — program entry point;
    /// * `generate` / `stage` — as in [`TraceSynthesizer::acquire`];
    /// * `sink` — builds one worker's empty sink, given the (windowed)
    ///   samples per trace.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from any worker.
    pub fn run<G, S, K>(
        &self,
        cpu: &Cpu,
        entry: u32,
        generate: G,
        stage: S,
        sink: impl Fn(usize) -> K + Sync,
    ) -> Result<K, UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        K: CampaignSink,
    {
        // No post hook ⇒ everything outside the analysis window is
        // discarded unseen, so synthesis may clip to the window
        // (in-window samples stay bit-identical; see `synth_into`).
        self.run_inner(cpu, entry, generate, stage, |_, _| {}, sink, true)
    }

    /// Like [`Campaign::run`], with a post-processing hook applied to
    /// each raw execution's samples (the OS-noise environments inject
    /// co-resident workload power and jitter through it, exactly as in
    /// [`TraceSynthesizer::acquire_with`]).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from any worker.
    pub fn run_with<G, S, P, K>(
        &self,
        cpu: &Cpu,
        entry: u32,
        generate: G,
        stage: S,
        post: P,
        sink: impl Fn(usize) -> K + Sync,
    ) -> Result<K, UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        P: Fn(&mut StdRng, &mut Vec<f64>) + Sync,
        K: CampaignSink,
    {
        // A post hook sees (and may shift) the whole trace — e.g. the
        // OS-noise jitter moves samples into the window — so synthesis
        // must stay unclipped here.
        self.run_inner(cpu, entry, generate, stage, post, sink, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner<G, S, P, K>(
        &self,
        cpu: &Cpu,
        entry: u32,
        generate: G,
        stage: S,
        post: P,
        sink: impl Fn(usize) -> K + Sync,
        clip: bool,
    ) -> Result<K, UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        P: Fn(&mut StdRng, &mut Vec<f64>) + Sync,
        K: CampaignSink,
    {
        let full = {
            let _span = sca_telemetry::span!("probe");
            self.synth.probe_samples(cpu, entry, &generate, &stage)?
        };
        let (start, samples) = match self.window {
            Some((start, len)) => {
                let start = start.min(full);
                (start, len.min(full - start))
            }
            None => (0, full),
        };

        let plan = self.plan();
        sca_telemetry::counter!("campaign/traces_planned").add(plan.items as u64);
        // Worker threads have empty span stacks; graft their phase spans
        // under the caller's current span so the tree stays hierarchical.
        let parent = sca_telemetry::current_span_path();
        run_sharded(
            &plan,
            || SimArena::with_lanes(&self.synth, cpu, self.lanes),
            || sink(samples),
            |arena, acc, range| {
                {
                    let _span =
                        sca_telemetry::span_at(sca_telemetry::child_path(&parent, "simulate"));
                    arena.begin_batch();
                    let mut index = range.start;
                    while index < range.end {
                        let group = self.lanes.min(range.end - index);
                        arena.push_windowed_group(
                            &self.synth,
                            entry,
                            index,
                            group,
                            (full, start, samples),
                            clip,
                            &generate,
                            &stage,
                            &post,
                        )?;
                        index += group;
                    }
                }
                {
                    let _span =
                        sca_telemetry::span_at(sca_telemetry::child_path(&parent, "absorb"));
                    let (inputs, flat) = arena.batch();
                    acc.absorb_batch(inputs, flat, samples);
                }
                sca_telemetry::counter!("campaign/traces_simulated").add(range.len() as u64);
                sca_telemetry::counter!("campaign/batches").inc();
                arena.publish_metrics();
                Ok(())
            },
        )
    }
}
