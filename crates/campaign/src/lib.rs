//! # sca-campaign — sharded, streaming side-channel campaigns
//!
//! Every experiment in this reproduction — the Figure 3/4 CPA attacks,
//! the Table 2 characterization, the ablations — is the same pipeline:
//!
//! ```text
//!  seed ──► per-trace RNG streams ──► simulate + synthesize ──► statistics
//!            (one per index)           (batched, sharded         (online,
//!                                       across workers)           mergeable)
//! ```
//!
//! This crate owns that pipeline. It splits a campaign's trace indices
//! into contiguous, batch-aligned shards ([`ShardPlan`]), hands each
//! shard to a worker thread that synthesizes its traces with
//! [`sca_power::TraceSynthesizer`] and folds them immediately into a
//! streaming [`CampaignSink`] (online CPA, model correlation), and
//! merges the per-worker sinks in worker order. No trace outlives its
//! batch: a 100k-trace `--full` campaign peaks at the accumulator size —
//! `O(guesses × samples)` for CPA — instead of the `O(traces × samples)`
//! matrix the old materialize-then-correlate flow allocated.
//!
//! ## The determinism contract
//!
//! 1. **Trace level** — trace `i` is a pure function of
//!    `(seed, i)`: its input and its noise come from an RNG stream
//!    derived from the master seed by a SplitMix64 step. Any worker can
//!    produce any trace, bit-for-bit.
//! 2. **Shard level** — the index→worker assignment is a pure function
//!    of the [`ShardPlan`] (no work stealing), and worker sinks merge in
//!    worker order. A campaign is therefore reproducible run-to-run.
//! 3. **Across thread counts** — changing `threads` only re-associates
//!    floating-point sums: accumulated statistics agree to ~1e-12, so
//!    verdicts (recovered key bytes, significance calls) and printed
//!    correlations are identical at any thread count. Changing `batch`
//!    changes nothing at all — it only bounds the transient buffer.
//!
//! ## Example
//!
//! A miniature end-to-end campaign: a kernel that loads a secret-free
//! random word (driving the memory data register), attacked with a
//! Hamming-weight model over all 256 guesses of its low byte — streamed,
//! sharded over 4 workers, and verified against the batch attack.
//!
//! ```
//! use sca_analysis::{cpa_attack, hw8, CpaConfig, FnSelection};
//! use sca_campaign::{Campaign, CampaignConfig, CpaSink};
//! use sca_isa::{assemble, Reg};
//! use sca_power::{GaussianNoise, LeakageWeights, SamplingConfig, TraceSynthesizer};
//! use sca_uarch::{Cpu, UarchConfig};
//!
//! let program = assemble(
//!     "
//!     trig #1
//!     ldr r1, [r10]
//!     nop
//!     nop
//!     nop
//!     trig #0
//!     halt
//! ",
//! )?;
//! let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
//! cpu.load(&program)?;
//! cpu.set_reg(Reg::R10, 0x800);
//!
//! let generate = |rng: &mut rand::rngs::StdRng, _| {
//!     use rand::Rng;
//!     rng.gen::<u32>().to_le_bytes().to_vec()
//! };
//! let stage = |cpu: &mut Cpu, input: &[u8]| {
//!     let word = u32::from_le_bytes([input[0], input[1], input[2], input[3]]);
//!     cpu.mem_mut().write_u32(0x800, word).unwrap();
//! };
//! let model = FnSelection::new("hw(b0 ^ k)", |input: &[u8], k: u8| {
//!     f64::from(hw8(input[0] ^ k))
//! });
//!
//! let config = CampaignConfig {
//!     traces: 40,
//!     executions_per_trace: 2,
//!     sampling: SamplingConfig::per_cycle(),
//!     noise: GaussianNoise { sd: 0.4, baseline: 0.0 },
//!     seed: 7,
//!     threads: 4,
//!     batch: 8,
//! };
//!
//! // Streaming, sharded campaign...
//! let sink = Campaign::new(LeakageWeights::cortex_a7(), config.clone()).run(
//!     &cpu,
//!     program.entry(),
//!     generate,
//!     stage,
//!     |samples| CpaSink::new(&model, 256, samples),
//! )?;
//! let streamed = sink.finish();
//!
//! // ...agrees with materializing every trace and running batch CPA.
//! let synth = TraceSynthesizer::new(
//!     LeakageWeights::cortex_a7(),
//!     sca_power::AcquisitionConfig {
//!         traces: config.traces,
//!         executions_per_trace: config.executions_per_trace,
//!         sampling: config.sampling,
//!         noise: config.noise,
//!         seed: config.seed,
//!         threads: 1,
//!     },
//! );
//! let set = synth.acquire(&cpu, program.entry(), generate, stage)?;
//! let batch = cpa_attack(&set, &model, &CpaConfig { guesses: 256, threads: 1 });
//! assert_eq!(streamed.best_guess(), batch.best_guess());
//! for g in 0..256 {
//!     for (s, b) in streamed.series(g).iter().zip(batch.series(g)) {
//!         assert!((s - b).abs() < 1e-12);
//!     }
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Layering
//!
//! * [`ShardPlan`] / [`run_sharded`] / [`Mergeable`] — the generic
//!   deterministic map-reduce; `sca-core`'s Table 2 characterization
//!   drives its multi-channel acquisition through this directly;
//! * [`SimArena`] — one worker's reusable simulation state (staged CPU,
//!   power recorder, synthesis scratch, batch buffers): created once per
//!   shard and reused across the worker's whole index range, so the
//!   steady-state trace loop is allocation-free;
//! * [`Campaign`] / [`CampaignConfig`] — the standard power-trace
//!   campaign (probe for the window length, synthesize, crop, stream);
//! * [`CampaignSink`] / [`CpaSink`] / [`CorrSink`] / [`TtestSink`] —
//!   streaming reducers built on the mergeable accumulators in
//!   [`sca_analysis`]; `TtestSink` routes each trace into the fixed or
//!   random TVLA population by classifying its input, which is how the
//!   `masked` countermeasure campaigns run fixed-vs-random assessments
//!   through the same sharded engine.
//!
//! Nothing in this crate names a cipher: generation, staging and
//! selection functions arrive as closures/trait objects. The
//! `sca-target` crate exploits exactly that to run its whole cipher
//! portfolio (AES, SPECK64/128, PRESENT-80) through one generic
//! `TargetCampaign` wrapper — sinks and shard plans are target-agnostic
//! by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod engine;
mod shard;
mod sink;
mod store_run;

pub use arena::SimArena;
pub use engine::{Campaign, CampaignConfig, DEFAULT_LANES};
pub use shard::{run_sharded, Mergeable, ShardPlan, DEFAULT_BATCH};
pub use sink::{CampaignSink, Checkpointable, CorrSink, CpaSink, TtestSink};
pub use store_run::{reanalyze_store, CampaignError, KillPoint, StoreOptions, StoredRunReport};
