//! The per-worker simulator arena of the trace-generation fast path.
//!
//! Synthesizing one trace needs a staged simulator, a power recorder,
//! an f64 accumulation buffer, an expanded-sample buffer, an f32 trace
//! buffer and — at the engine layer — a batch of inputs and a flat
//! windowed-trace matrix for the sink. Before the arena existed, most
//! of these were allocated per trace (or per execution); a `--full`
//! campaign churned through millions of short-lived vectors. A
//! [`SimArena`] bundles all of them as worker-owned state: the sharded
//! engine creates one arena per worker (cloning the warmed template CPU
//! exactly once) and reuses it across the worker's entire index range,
//! so the steady-state hot loop performs no heap allocation at all.
//!
//! Reuse never changes results: the simulator is re-pointed at the
//! program with [`Cpu::restart_seeded`] (the cheap architectural reset —
//! pipeline, node and trigger state are overwritten in place, while
//! registers, memory and caches persist exactly as they do across
//! executions on silicon), and every buffer is cleared before refill.
//! Traces remain a pure function of `(seed, index)`; the differential
//! tests in `tests/campaign_determinism.rs` pin arena-vs-fresh
//! byte-identity.

use rand::rngs::StdRng;

use sca_power::{BlockPowerRecorder, PowerRecorder, SynthScratch, TraceSynthesizer};
use sca_uarch::{CacheCounts, Cpu, CpuBlock, UarchError};

/// The lockstep half of an arena: a [`CpuBlock`] stepping several traces
/// through one pipeline walk, with per-lane recorder/scratch buffers.
///
/// Present only when the campaign runs with more than one lane. Dropped
/// (`SimArena::block = None`) the moment a group diverges: divergence
/// means the lanes' cache/memory histories were perturbed mid-run, so
/// the rest of the worker's range falls back to the scalar path, whose
/// per-trace results never depend on such history.
#[derive(Clone, Debug)]
struct BlockSim {
    block: CpuBlock,
    recorder: BlockPowerRecorder,
    scratches: Vec<SynthScratch>,
    traces: Vec<Vec<f32>>,
}

/// Work counts a worker accumulates locally (plain integers, no atomics
/// on the hot path) and publishes to the global telemetry registry at
/// batch boundaries via [`SimArena::publish_metrics`].
#[derive(Clone, Copy, Debug, Default)]
struct WorkerTally {
    /// Cache work attributable to committed traces (warm-up counts the
    /// template clones inherited are drained and discarded up front;
    /// diverged lockstep work is drained and discarded too).
    cache: CacheCounts,
    /// Traces synthesized through the lockstep block.
    lockstep_traces: u64,
    /// Traces synthesized on the scalar path.
    scalar_traces: u64,
    /// Lockstep blocks retired by divergence.
    blocks_poisoned: u64,
}

/// One campaign worker's reusable simulation state: a staged CPU cloned
/// once from the warmed template, a [`PowerRecorder`], and the scratch
/// buffers of the allocation-free synthesis path
/// ([`TraceSynthesizer::synth_into`]).
#[derive(Clone, Debug)]
pub struct SimArena {
    pub(crate) cpu: Cpu,
    pub(crate) recorder: PowerRecorder,
    pub(crate) scratch: SynthScratch,
    /// The current trace (full length, before windowing).
    pub(crate) trace: Vec<f32>,
    /// The batch's inputs, in index order.
    pub(crate) inputs: Vec<Vec<u8>>,
    /// The batch's windowed traces, trace-major `inputs.len() × samples`
    /// — handed to [`crate::CampaignSink::absorb_batch`] directly.
    pub(crate) flat: Vec<f32>,
    /// Lockstep lanes, when enabled (and not poisoned by divergence).
    block: Option<BlockSim>,
    /// Locally-buffered telemetry, published at batch boundaries.
    tally: WorkerTally,
}

impl SimArena {
    /// Creates a worker arena for `synth`, cloning the warmed template
    /// CPU once. The recorder is built with the synthesizer's leakage
    /// weights, so arena traces are bit-identical to the materializing
    /// path's.
    pub fn new(synth: &TraceSynthesizer, template: &Cpu) -> SimArena {
        let mut cpu = template.clone();
        // The clone inherits the template's warm-up hit/miss counts;
        // discard them so the tally attributes cache work to traces only.
        let _ = cpu.drain_cache_counts();
        SimArena {
            cpu,
            recorder: PowerRecorder::new(synth.weights().clone()),
            scratch: SynthScratch::new(),
            trace: Vec::new(),
            inputs: Vec::new(),
            flat: Vec::new(),
            block: None,
            tally: WorkerTally::default(),
        }
    }

    /// Like [`SimArena::new`], but additionally equips the arena with a
    /// `lanes`-wide lockstep [`CpuBlock`] (when `lanes > 1`), so
    /// `SimArena::push_windowed_group` can synthesize whole groups of
    /// traces in one pipeline walk. `lanes` is clamped to
    /// `1..=`[`sca_uarch::MAX_LANES`].
    pub fn with_lanes(synth: &TraceSynthesizer, template: &Cpu, lanes: usize) -> SimArena {
        let mut arena = SimArena::new(synth, template);
        let lanes = lanes.clamp(1, sca_uarch::MAX_LANES);
        if lanes > 1 {
            let mut block = CpuBlock::from_template(template, lanes);
            // Same warm-up-inheritance discard as the scalar CPU above.
            let _ = block.drain_cache_counts(lanes);
            arena.block = Some(BlockSim {
                block,
                recorder: BlockPowerRecorder::new(synth.weights().clone(), lanes),
                scratches: vec![SynthScratch::new(); lanes],
                traces: vec![Vec::new(); lanes],
            });
        }
        arena
    }

    /// The worker's CPU (staged template clone).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Synthesizes the trace at `index` into the arena's buffers and
    /// returns `(trace, input)` — the reusable-state equivalent of
    /// [`TraceSynthesizer::synthesize_trace`], byte-identical to it for
    /// any prior arena history.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn synthesize<G, S, P>(
        &mut self,
        synth: &TraceSynthesizer,
        entry: u32,
        index: usize,
        generate: &G,
        stage: &S,
        post: &P,
    ) -> Result<(&[f32], Vec<u8>), UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        P: Fn(&mut StdRng, &mut Vec<f64>) + Sync,
    {
        let input = synth.synth_into(
            &mut self.cpu,
            &mut self.recorder,
            &mut self.scratch,
            &mut self.trace,
            entry,
            index,
            None,
            generate,
            stage,
            post,
        )?;
        Ok((&self.trace, input))
    }

    /// Starts a new sink batch: clears the input and flat-trace buffers
    /// (keeping their capacity).
    pub(crate) fn begin_batch(&mut self) {
        self.inputs.clear();
        self.flat.clear();
    }

    /// Synthesizes the trace at `index`, pads it to `full` samples, and
    /// appends its `[start, start + samples)` window (and its input) to
    /// the current batch. When `clip` is true the synthesis itself is
    /// clipped to the window (legal only when the post hook is a no-op
    /// — out-of-window samples are then discarded unseen).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_windowed<G, S, P>(
        &mut self,
        synth: &TraceSynthesizer,
        entry: u32,
        index: usize,
        (full, start, samples): (usize, usize, usize),
        clip: bool,
        generate: &G,
        stage: &S,
        post: &P,
    ) -> Result<(), UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        P: Fn(&mut StdRng, &mut Vec<f64>) + Sync,
    {
        let input = synth.synth_into(
            &mut self.cpu,
            &mut self.recorder,
            &mut self.scratch,
            &mut self.trace,
            entry,
            index,
            clip.then_some((start, start + samples)),
            generate,
            stage,
            post,
        )?;
        self.trace.resize(full, 0.0);
        self.flat
            .extend_from_slice(&self.trace[start..start + samples]);
        self.inputs.push(input);
        self.tally.scalar_traces += 1;
        Ok(())
    }

    /// Synthesizes the `count` consecutive traces starting at
    /// `base_index` and appends their windows (and inputs) to the
    /// current batch, exactly like `count` [`SimArena::push_windowed`]
    /// calls in index order.
    ///
    /// When the arena has a lockstep block (and `count > 1`), the whole
    /// group runs through it in one pipeline walk. The results are
    /// bit-identical either way; on lockstep divergence the block is
    /// dropped and this group — and every later group of this arena —
    /// takes the scalar path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_windowed_group<G, S, P>(
        &mut self,
        synth: &TraceSynthesizer,
        entry: u32,
        base_index: usize,
        count: usize,
        (full, start, samples): (usize, usize, usize),
        clip: bool,
        generate: &G,
        stage: &S,
        post: &P,
    ) -> Result<(), UarchError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        P: Fn(&mut StdRng, &mut Vec<f64>) + Sync,
    {
        if count > 1 && self.block.is_some() {
            let block = self.block.as_mut().expect("just checked");
            debug_assert!(count <= block.block.max_lanes());
            let got = synth.synth_block_into(
                &mut block.block,
                &mut block.recorder,
                &mut block.scratches,
                &mut block.traces,
                entry,
                base_index,
                count,
                clip.then_some((start, start + samples)),
                generate,
                stage,
                post,
            );
            match got {
                Some(inputs) => {
                    let counts = block.block.drain_cache_counts(count);
                    self.tally.cache.accumulate(&counts);
                    self.tally.lockstep_traces += count as u64;
                    for (lane, input) in inputs.into_iter().enumerate() {
                        block.traces[lane].resize(full, 0.0);
                        self.flat
                            .extend_from_slice(&block.traces[lane][start..start + samples]);
                        self.inputs.push(input);
                    }
                    return Ok(());
                }
                // Divergence: the lanes' microarchitectural state was
                // perturbed mid-run, so retire the block for good and
                // re-run this group (and all later ones) scalar —
                // `synth_into` is self-contained per trace. The lanes'
                // partial cache work is drained and discarded: only the
                // scalar rerun counts, keeping the totals identical to a
                // single-lane run.
                None => {
                    let block = self.block.as_mut().expect("just checked");
                    let lanes = block.block.max_lanes();
                    let _ = block.block.drain_cache_counts(lanes);
                    self.tally.blocks_poisoned += 1;
                    self.block = None;
                }
            }
        }
        for offset in 0..count {
            self.push_windowed(
                synth,
                entry,
                base_index + offset,
                (full, start, samples),
                clip,
                generate,
                stage,
                post,
            )?;
        }
        Ok(())
    }

    /// The current batch, `(inputs, flat windowed traces)`.
    pub(crate) fn batch(&self) -> (&[Vec<u8>], &[f32]) {
        (&self.inputs, &self.flat)
    }

    /// Publishes the worker's locally-buffered tally to the global
    /// telemetry registry and resets it. Called at batch boundaries so
    /// the hot loop itself never touches shared atomics.
    pub(crate) fn publish_metrics(&mut self) {
        // Attribute the scalar CPU's cache work accumulated this batch.
        let scalar = self.cpu.drain_cache_counts();
        self.tally.cache.accumulate(&scalar);
        let tally = std::mem::take(&mut self.tally);
        let cache = tally.cache;
        if !cache.is_zero() {
            sca_telemetry::counter!("uarch/l1i/accesses").add(cache.l1i_hits + cache.l1i_misses);
            sca_telemetry::counter!("uarch/l1i/misses").add(cache.l1i_misses);
            sca_telemetry::counter!("uarch/l1d/accesses").add(cache.l1d_hits + cache.l1d_misses);
            sca_telemetry::counter!("uarch/l1d/misses").add(cache.l1d_misses);
            sca_telemetry::counter!("uarch/l2/accesses").add(cache.l2_hits + cache.l2_misses);
            sca_telemetry::counter!("uarch/l2/misses").add(cache.l2_misses);
        }
        if tally.lockstep_traces > 0 {
            sca_telemetry::counter!("campaign/lockstep_traces").add(tally.lockstep_traces);
        }
        if tally.scalar_traces > 0 {
            sca_telemetry::counter!("campaign/scalar_traces").add(tally.scalar_traces);
        }
        if tally.blocks_poisoned > 0 {
            sca_telemetry::counter!("campaign/blocks_poisoned").add(tally.blocks_poisoned);
        }
    }
}
