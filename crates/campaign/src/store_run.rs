//! Store-backed campaigns: persistent corpora, crash-safe checkpoints,
//! resumable runs, and zero-resimulation re-analysis.
//!
//! ## Segmented execution
//!
//! A stored campaign runs in *segments* of `checkpoint_every` traces.
//! Each segment is sharded across workers exactly like a plain
//! [`Campaign::run`], its workers append every trace to the
//! [`TraceStore`] as they simulate, and the segment's merged sink folds
//! into a master sink in segment order. After each segment the master's
//! exact accumulator state (f64 bit patterns) and the high-water trace
//! index are appended to the store's checkpoint log — pages are synced
//! *before* the claim, so a checkpoint never overstates what is durable.
//!
//! ## The resume determinism contract
//!
//! Resuming restores the master sink from the last valid checkpoint and
//! re-runs the remaining segments. Because every trace is a pure
//! function of `(seed, index)` and the snapshot restores the master
//! bit-for-bit, a killed-and-resumed run's verdict is **byte-identical**
//! to an uninterrupted stored run with the same `checkpoint_every` and
//! thread count — the floating-point association is pinned by the
//! segment boundaries, not by where the crash happened. Traces already
//! on disk beyond the checkpoint are simply rewritten with identical
//! bytes (slot appends are idempotent).
//!
//! ## Fault injection
//!
//! [`KillPoint`] aborts a run at a chosen point — after a trace, midway
//! through a page write, or midway through a checkpoint record — leaving
//! the directory exactly as a crash would. The crash-recovery test suite
//! sweeps these points and asserts the resume contract above.

use std::path::PathBuf;

use rand::rngs::StdRng;

use sca_analysis::{StateError, StateReader};
use sca_store::{analysis_tag, CorpusKey, StoreError, StoreMeta, TraceStore, META_FILE};
use sca_uarch::{Cpu, UarchError};

use crate::{run_sharded, Campaign, CampaignSink, Checkpointable, ShardPlan, SimArena};

/// Where (if anywhere) a stored campaign injects a crash.
///
/// Kill points emulate the process dying at the most awkward moments:
/// the run returns [`CampaignError::Killed`] and the store directory is
/// left exactly as a real crash would leave it (unsynced appends, torn
/// tails). They exist for the fault-injection tests and the CI
/// crash-resume job; production campaigns use [`KillPoint::None`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KillPoint {
    /// Run to completion.
    #[default]
    None,
    /// Die right after trace `0`-based index `N` is simulated and
    /// appended (no checkpoint covers it yet).
    AfterTrace(u64),
    /// Die midway through trace `at`'s page-slot write, persisting only
    /// the first `keep` bytes of its record — a torn page.
    MidPage {
        /// Trace whose slot write is torn.
        at: u64,
        /// Record bytes that reach the disk.
        keep: usize,
    },
    /// Die midway through the first checkpoint record covering trace
    /// `at`, persisting only the first `keep` bytes of the record — a
    /// torn WAL tail.
    MidCheckpoint {
        /// The checkpoint whose segment contains this trace is torn.
        at: u64,
        /// Record bytes that reach the disk.
        keep: usize,
    },
}

/// Store knobs of a persistent campaign.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Store directory (created if absent).
    pub dir: PathBuf,
    /// Target label recorded in the corpus key.
    pub label: String,
    /// Analysis name — checkpoints are tagged with it, so one corpus
    /// can carry interleaved checkpoint streams for several analyses.
    pub analysis: String,
    /// Traces per segment (a checkpoint lands after each segment).
    pub checkpoint_every: u64,
    /// Resume from the last valid checkpoint instead of starting over.
    pub resume: bool,
    /// Fault injection for the crash-recovery tests.
    pub kill: KillPoint,
    /// Display-only window span in cycles, recorded in the header.
    pub window_cycles: u64,
}

impl StoreOptions {
    /// Options for a fresh stored campaign in `dir`.
    pub fn new(dir: impl Into<PathBuf>, label: &str, analysis: &str) -> StoreOptions {
        StoreOptions {
            dir: dir.into(),
            label: label.to_owned(),
            analysis: analysis.to_owned(),
            checkpoint_every: 1024,
            resume: false,
            kill: KillPoint::None,
            window_cycles: 0,
        }
    }
}

/// What a stored run did: where it resumed, how much it simulated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoredRunReport {
    /// Trace index the run resumed from (0 = from scratch).
    pub resumed_from: u64,
    /// Traces simulated by this run (0 = fully restored from disk).
    pub simulated: u64,
    /// Checkpoints appended by this run.
    pub checkpoints: u64,
    /// Samples per (windowed) trace.
    pub samples: usize,
    /// Highest checkpointed trace index when the run returned — equal
    /// to `total` when the campaign is finished, lower when a bounded
    /// run ([`Campaign::run_stored_bounded`]) yielded early.
    pub high_water: u64,
    /// Total traces the campaign wants.
    pub total: u64,
}

impl StoredRunReport {
    /// Whether the campaign's full trace budget is checkpointed — a
    /// bounded run returns `false` while slices remain.
    pub fn complete(&self) -> bool {
        self.high_water >= self.total
    }
}

/// Everything that can go wrong in a stored campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignError {
    /// Simulator fault during trace synthesis.
    Uarch(UarchError),
    /// Store I/O failure, corruption, or fingerprint mismatch.
    Store(StoreError),
    /// A checkpoint snapshot did not fit the sink it was restored into.
    State(StateError),
    /// The injected [`KillPoint`] fired after `at` traces were durable
    /// or attempted.
    Killed {
        /// Trace index (or checkpoint high-water) at the kill.
        at: u64,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Uarch(e) => write!(f, "simulator fault: {e}"),
            CampaignError::Store(e) => write!(f, "trace store: {e}"),
            CampaignError::State(e) => write!(f, "checkpoint state: {e}"),
            CampaignError::Killed { at } => write!(f, "killed by fault injection at {at}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<UarchError> for CampaignError {
    fn from(e: UarchError) -> CampaignError {
        CampaignError::Uarch(e)
    }
}

impl From<StoreError> for CampaignError {
    fn from(e: StoreError) -> CampaignError {
        CampaignError::Store(e)
    }
}

impl From<StateError> for CampaignError {
    fn from(e: StateError) -> CampaignError {
        CampaignError::State(e)
    }
}

impl Campaign {
    /// The corpus identity this campaign would stamp on a store.
    fn corpus_key(&self, label: &str) -> CorpusKey {
        let cfg = self.synth.config();
        CorpusKey {
            label: label.to_owned(),
            seed: cfg.seed,
            noise_sd_bits: cfg.noise.sd.to_bits(),
            noise_baseline_bits: cfg.noise.baseline.to_bits(),
            executions_per_trace: cfg.executions_per_trace as u64,
        }
    }

    /// Runs the campaign against a persistent [`TraceStore`]: workers
    /// append every trace as they simulate, and the sink's exact state
    /// is checkpointed every `opts.checkpoint_every` traces, so a killed
    /// run resumes from the last checkpoint instead of starting over.
    ///
    /// With `opts.resume` and a store whose last checkpoint already
    /// covers the whole campaign, the sink is restored from disk and
    /// **nothing is simulated at all** (not even the window probe).
    ///
    /// Determinism: a resumed run's sink is byte-identical to an
    /// uninterrupted stored run with the same `checkpoint_every` and
    /// thread count (see the module docs). Like [`Campaign::run`], this
    /// is the no-post-hook path — synthesis clips to the window.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults, store I/O/corruption (including a
    /// [`StoreError::FingerprintMismatch`] when `opts.dir` holds a
    /// different corpus), snapshot mismatches, and reports an injected
    /// crash as [`CampaignError::Killed`].
    pub fn run_stored<G, S, K>(
        &self,
        cpu: &Cpu,
        entry: u32,
        generate: G,
        stage: S,
        sink: impl Fn(usize) -> K + Sync,
        opts: &StoreOptions,
    ) -> Result<(K, StoredRunReport), CampaignError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        K: CampaignSink + Checkpointable,
    {
        self.run_stored_bounded(cpu, entry, generate, stage, sink, opts, u64::MAX)
    }

    /// Like [`Campaign::run_stored`], but simulates at most
    /// `max_new_traces` traces (rounded up to whole checkpoint
    /// segments) before checkpointing and returning — the *job-slice*
    /// primitive of the campaign server's cooperative scheduler.
    ///
    /// The returned sink holds the exact accumulator state of every
    /// trace checkpointed so far, so callers can derive incremental
    /// verdicts from it; `report.complete()` says whether slices
    /// remain. Because each call resumes from the last checkpoint and
    /// the segment boundaries pin the floating-point association, a
    /// campaign executed as any sequence of bounded calls (with
    /// `opts.resume` after the first) finishes byte-identical to one
    /// uninterrupted [`Campaign::run_stored`] with the same
    /// `checkpoint_every` and thread count.
    ///
    /// If work remains, at least one segment runs even when
    /// `max_new_traces` is smaller than the segment length (a slice
    /// must make progress to terminate).
    ///
    /// # Errors
    ///
    /// As [`Campaign::run_stored`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_stored_bounded<G, S, K>(
        &self,
        cpu: &Cpu,
        entry: u32,
        generate: G,
        stage: S,
        sink: impl Fn(usize) -> K + Sync,
        opts: &StoreOptions,
        max_new_traces: u64,
    ) -> Result<(K, StoredRunReport), CampaignError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        K: CampaignSink + Checkpointable,
    {
        let total = self.synth.config().traces as u64;
        let tag = analysis_tag(&opts.analysis);
        let key = self.corpus_key(&opts.label);

        // Fast path: a complete store restores the sink with zero
        // simulator work — no probe, no synthesis.
        if opts.resume && opts.dir.join(META_FILE).exists() {
            let store = TraceStore::open_any(&opts.dir)?;
            let found = store.meta();
            if let Some(what) = key.diff(&found.key) {
                return Err(StoreError::FingerprintMismatch { what }.into());
            }
            if found.total_traces != total {
                return Err(StoreError::FingerprintMismatch {
                    what: format!(
                        "total traces {} on disk vs {total} expected",
                        found.total_traces
                    ),
                }
                .into());
            }
            let want_start = self.window.map_or(0, |(s, _)| s as u64);
            if found.window_start != want_start {
                return Err(StoreError::FingerprintMismatch {
                    what: format!(
                        "window start {} on disk vs {want_start} expected",
                        found.window_start
                    ),
                }
                .into());
            }
            if let Some(ck) = store.last_checkpoint(tag)? {
                if ck.high_water >= total {
                    let samples = found.samples as usize;
                    let mut master = sink(samples);
                    let mut r = StateReader::new(&ck.state);
                    master.load_state(&mut r)?;
                    r.finish()?;
                    return Ok((
                        master,
                        StoredRunReport {
                            resumed_from: total,
                            simulated: 0,
                            checkpoints: 0,
                            samples,
                            high_water: total,
                            total,
                        },
                    ));
                }
            }
        }

        // Slow path: probe the window, open (validating) or create the
        // store, and run segment by segment.
        let full = {
            let _span = sca_telemetry::span!("probe");
            self.synth.probe_samples(cpu, entry, &generate, &stage)?
        };
        let (start, samples) = match self.window {
            Some((start, len)) => {
                let start = start.min(full);
                (start, len.min(full - start))
            }
            None => (0, full),
        };
        let input_len = self.synth.input_for(0, &generate).len() as u64;
        let expected = StoreMeta {
            key,
            window_start: start as u64,
            samples: samples as u64,
            window_cycles: opts.window_cycles,
            total_traces: total,
            input_len,
            page_capacity: 0, // filled in by `create`, validated by `open`
        };
        let store = TraceStore::open_or_create(&opts.dir, &expected)?;

        let mut master = sink(samples);
        let mut resumed_from = 0u64;
        if opts.resume {
            if let Some(ck) = store.last_checkpoint(tag)? {
                let mut r = StateReader::new(&ck.state);
                master.load_state(&mut r)?;
                r.finish()?;
                resumed_from = ck.high_water.min(total);
            }
        }

        let every = opts.checkpoint_every.max(1);
        let mut high_water = resumed_from;
        let mut simulated = 0u64;
        let mut checkpoints = 0u64;
        sca_telemetry::counter!("campaign/traces_planned")
            .add((total - resumed_from).min(max_new_traces));
        while high_water < total && simulated < max_new_traces {
            sca_telemetry::counter!("campaign/segments").inc();
            let seg_end = (high_water + every).min(total);
            let segment = self.run_segment(
                cpu,
                entry,
                &generate,
                &stage,
                &sink,
                &store,
                high_water..seg_end,
                (full, start, samples),
                opts.kill,
            )?;
            master.merge(segment);
            simulated += seg_end - high_water;
            high_water = seg_end;

            let _span = sca_telemetry::span!("checkpoint");
            let mut state = Vec::new();
            master.save_state(&mut state);
            if let KillPoint::MidCheckpoint { at, keep } = opts.kill {
                if at < high_water {
                    store.checkpoint_torn(high_water, tag, state, keep)?;
                    return Err(CampaignError::Killed { at: high_water });
                }
            }
            store.checkpoint(high_water, tag, state)?;
            checkpoints += 1;
        }

        Ok((
            master,
            StoredRunReport {
                resumed_from,
                simulated,
                checkpoints,
                samples,
                high_water,
                total,
            },
        ))
    }

    /// Runs one segment sharded across workers, appending every trace
    /// to `store` as it is simulated. Returns the segment's merged sink.
    #[allow(clippy::too_many_arguments)]
    fn run_segment<G, S, K>(
        &self,
        cpu: &Cpu,
        entry: u32,
        generate: &G,
        stage: &S,
        sink: &(impl Fn(usize) -> K + Sync),
        store: &TraceStore,
        segment: std::ops::Range<u64>,
        (full, start, samples): (usize, usize, usize),
        kill: KillPoint,
    ) -> Result<K, CampaignError>
    where
        G: Fn(&mut StdRng, usize) -> Vec<u8> + Sync,
        S: Fn(&mut Cpu, &[u8]) + Sync,
        K: CampaignSink + Checkpointable,
    {
        let plan = ShardPlan {
            items: (segment.end - segment.start) as usize,
            threads: self.threads,
            batch: self.batch,
        };
        let seg_start = segment.start;
        let no_post = |_: &mut StdRng, _: &mut Vec<f64>| {};
        let parent = sca_telemetry::current_span_path();
        run_sharded(
            &plan,
            || SimArena::with_lanes(&self.synth, cpu, self.lanes),
            || sink(samples),
            |arena, acc, range| {
                arena.begin_batch();
                let mut local = range.start;
                while local < range.end {
                    let group = self.lanes.min(range.end - local);
                    {
                        let _span =
                            sca_telemetry::span_at(sca_telemetry::child_path(&parent, "simulate"));
                        arena.push_windowed_group(
                            &self.synth,
                            entry,
                            (seg_start as usize) + local,
                            group,
                            (full, start, samples),
                            true,
                            generate,
                            stage,
                            &no_post,
                        )?;
                    }
                    // Append the group's traces to the store strictly in
                    // index order (the group was synthesized at once, but
                    // its disk and kill-point semantics must match the
                    // one-trace-at-a-time scalar path).
                    let _span =
                        sca_telemetry::span_at(sca_telemetry::child_path(&parent, "store-io"));
                    let first_input = arena.inputs.len() - group;
                    let first_flat = arena.flat.len() - group * samples;
                    for g in 0..group {
                        let global = seg_start + (local + g) as u64;
                        let input = &arena.inputs[first_input + g];
                        let off = first_flat + g * samples;
                        let trace = &arena.flat[off..off + samples];
                        match kill {
                            KillPoint::MidPage { at, keep } if global == at => {
                                store.append_torn(global, input, trace, keep)?;
                                return Err(CampaignError::Killed { at: global });
                            }
                            _ => store.append(global, input, trace)?,
                        }
                        if kill == KillPoint::AfterTrace(global) {
                            return Err(CampaignError::Killed { at: global });
                        }
                    }
                    local += group;
                }
                {
                    let _span =
                        sca_telemetry::span_at(sca_telemetry::child_path(&parent, "absorb"));
                    let (inputs, flat) = arena.batch();
                    acc.absorb_batch(inputs, flat, samples);
                }
                sca_telemetry::counter!("campaign/traces_simulated").add(range.len() as u64);
                sca_telemetry::counter!("campaign/batches").inc();
                arena.publish_metrics();
                Ok(())
            },
        )
    }
}

/// Streams a stored corpus through a fresh sink — re-analysis with
/// **zero** simulator work (`sca_power::simulator_runs` does not move).
///
/// Traces are visited in strictly increasing index order in batches of
/// `batch`, so the result is byte-identical to a single-threaded
/// [`Campaign::run`] of the same corpus with the same batch size — and
/// independent of how the corpus was produced (straight run, resumed
/// run, or any merge order of partial stores).
///
/// # Errors
///
/// Returns [`StoreError::Incomplete`] (wrapped) at the first missing
/// trace and propagates store I/O errors.
pub fn reanalyze_store<K: CampaignSink>(
    store: &TraceStore,
    batch: usize,
    mut sink: K,
) -> Result<K, CampaignError> {
    let samples = store.meta().samples as usize;
    let total = store.meta().total_traces;
    let batch = batch.max(1);
    let mut inputs: Vec<Vec<u8>> = Vec::with_capacity(batch);
    let mut flat: Vec<f32> = Vec::new();
    store.stream::<CampaignError>(0..total, |_, input, trace| {
        inputs.push(input.to_vec());
        flat.extend_from_slice(trace);
        if inputs.len() >= batch {
            sink.absorb_batch(&inputs, &flat, samples);
            inputs.clear();
            flat.clear();
        }
        Ok(())
    })?;
    if !inputs.is_empty() {
        sink.absorb_batch(&inputs, &flat, samples);
    }
    Ok(sink)
}
