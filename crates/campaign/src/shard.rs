//! Deterministic sharded map-reduce over trace indices.
//!
//! A campaign is a pure function of `(seed, trace index)`: every trace
//! derives its input and noise from its own RNG stream, so any worker can
//! produce any trace. The engine therefore only has to decide *which*
//! indices each worker owns and *how* the workers' partial statistics
//! recombine:
//!
//! * indices are split into contiguous ranges, one per worker, as a
//!   pure function of `(items, threads)` (no work stealing — assignment
//!   never depends on timing);
//! * each worker folds its range, in index order, into its own sink, in
//!   sub-batches of `batch` indices;
//! * worker sinks merge back in worker order.
//!
//! The result is reproducible run-to-run at any fixed `(seed, threads)`,
//! and changing the thread count only re-associates the floating-point
//! sums (agreement to ~1e-12 over realistic campaigns — verdicts and
//! printed correlations are identical). Changing the batch size never
//! changes anything, bit-for-bit: batches only bound how much transient
//! trace data a worker buffers between sink updates, and shard
//! boundaries are deliberately independent of them.

use std::ops::Range;

/// Default batch size: traces buffered per worker between sink updates.
pub const DEFAULT_BATCH: usize = 64;

/// How a campaign's item indices are split across workers.
#[derive(Clone, Copy, Debug)]
pub struct ShardPlan {
    /// Total number of items (traces) to produce.
    pub items: usize,
    /// Worker threads (1 = run on the calling thread).
    pub threads: usize,
    /// Items buffered per worker between sink updates.
    pub batch: usize,
}

impl ShardPlan {
    /// A serial plan with the default batch size.
    pub fn new(items: usize) -> ShardPlan {
        ShardPlan {
            items,
            threads: 1,
            batch: DEFAULT_BATCH,
        }
    }

    /// Sets the worker-thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ShardPlan {
        self.threads = threads.max(1);
        self
    }

    /// Sets the batch size (builder style).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> ShardPlan {
        self.batch = batch.max(1);
        self
    }

    /// The contiguous index range each worker owns. A pure function of
    /// `(items, threads)` — deliberately independent of `batch`, so the
    /// batch size can never move a shard boundary (and therefore never
    /// changes results, bit-for-bit). Empty ranges are dropped, so the
    /// result may hold fewer entries than `threads`.
    pub fn shards(&self) -> Vec<Range<usize>> {
        let threads = self.threads.max(1).min(self.items.max(1));
        let chunk = self.items.div_ceil(threads);
        (0..threads)
            .filter_map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(self.items);
                (lo < hi).then_some(lo..hi)
            })
            .collect()
    }
}

/// Partial state that can recombine with another shard's.
///
/// Implementations must make `merge` equivalent (up to floating-point
/// association) to having absorbed the other shard's items directly.
pub trait Mergeable {
    /// Folds `other` — the state of a worker that processed a disjoint
    /// index range — into `self`.
    fn merge(&mut self, other: Self);
}

impl<A: Mergeable, B: Mergeable> Mergeable for (A, B) {
    fn merge(&mut self, other: (A, B)) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

/// Runs a deterministic sharded map-reduce over `plan.items` indices.
///
/// * `worker` builds one worker's private state (e.g. a cloned CPU) —
///   called once per shard, on the worker's own thread;
/// * `sink` builds one worker's empty accumulator;
/// * `process` folds one batch of indices into the worker's sink, in
///   index order.
///
/// Worker sinks are merged in worker order, so the reduction tree is a
/// pure function of the plan.
///
/// ```
/// use sca_campaign::{run_sharded, Mergeable, ShardPlan};
///
/// struct Sum(f64);
/// impl Mergeable for Sum {
///     fn merge(&mut self, other: Sum) {
///         self.0 += other.0;
///     }
/// }
///
/// let plan = ShardPlan::new(1000).with_threads(4).with_batch(64);
/// let sum = run_sharded(
///     &plan,
///     || (), // no per-worker state needed here
///     || Sum(0.0),
///     |_, sum, range| {
///         for i in range {
///             sum.0 += i as f64;
///         }
///         Ok::<(), std::convert::Infallible>(())
///     },
/// )
/// .unwrap();
/// assert_eq!(sum.0, 499_500.0);
/// ```
///
/// # Errors
///
/// Returns the first error in shard order; remaining shards may or may
/// not have run.
pub fn run_sharded<W, A, E>(
    plan: &ShardPlan,
    worker: impl Fn() -> W + Sync,
    sink: impl Fn() -> A + Sync,
    process: impl Fn(&mut W, &mut A, Range<usize>) -> Result<(), E> + Sync,
) -> Result<A, E>
where
    A: Mergeable + Send,
    E: Send,
{
    let shards = plan.shards();
    let batch = plan.batch.max(1);
    let run_shard = |range: Range<usize>| -> Result<A, E> {
        let mut state = worker();
        let mut acc = sink();
        let mut lo = range.start;
        while lo < range.end {
            let hi = (lo + batch).min(range.end);
            process(&mut state, &mut acc, lo..hi)?;
            lo = hi;
        }
        Ok(acc)
    };

    if shards.len() <= 1 {
        return match shards.into_iter().next() {
            Some(range) => run_shard(range),
            None => Ok(sink()),
        };
    }

    let mut partials: Vec<Result<A, E>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for range in shards {
            let run_shard = &run_shard;
            handles.push(scope.spawn(move || run_shard(range)));
        }
        for handle in handles {
            partials.push(handle.join().expect("campaign worker panicked"));
        }
    });
    // An empty campaign reduces to the identity-merged (empty) sink —
    // never a panic: `shards()` drops empty ranges, so `items == 0`
    // reaches this fold with no partials at all.
    let mut partials = partials.into_iter();
    let Some(first) = partials.next() else {
        return Ok(sink());
    };
    let mut merged = first?;
    for partial in partials {
        merged.merge(partial?);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_all_indices_exactly_once() {
        for items in [0usize, 1, 63, 64, 65, 1000] {
            for threads in [1usize, 2, 3, 8, 40] {
                for batch in [1usize, 7, 64] {
                    let plan = ShardPlan {
                        items,
                        threads,
                        batch,
                    };
                    let shards = plan.shards();
                    let mut covered = 0usize;
                    let mut next = 0usize;
                    for range in &shards {
                        assert_eq!(range.start, next, "contiguous from the left");
                        assert!(range.start < range.end, "no empty shards");
                        covered += range.len();
                        next = range.end;
                    }
                    assert_eq!(
                        covered, items,
                        "items {items} threads {threads} batch {batch}"
                    );
                    assert!(shards.len() <= threads.max(1));
                    // Batch can never move a shard boundary.
                    assert_eq!(
                        shards,
                        ShardPlan {
                            items,
                            threads,
                            batch: 1
                        }
                        .shards()
                    );
                }
            }
        }
    }

    #[derive(Debug, PartialEq)]
    struct Collect(Vec<usize>);
    impl Mergeable for Collect {
        fn merge(&mut self, other: Collect) {
            self.0.extend(other.0);
        }
    }

    #[test]
    fn worker_order_merge_preserves_index_order() {
        for threads in [1usize, 2, 5, 8] {
            let plan = ShardPlan::new(103).with_threads(threads).with_batch(10);
            let out = run_sharded(
                &plan,
                || (),
                || Collect(Vec::new()),
                |_, acc, range| {
                    acc.0.extend(range);
                    Ok::<(), std::convert::Infallible>(())
                },
            )
            .unwrap();
            assert_eq!(out.0, (0..103).collect::<Vec<_>>(), "threads {threads}");
        }
    }

    #[test]
    fn errors_propagate() {
        let plan = ShardPlan::new(10).with_threads(2).with_batch(2);
        let result = run_sharded(
            &plan,
            || (),
            || Collect(Vec::new()),
            |_, _, range| {
                if range.contains(&7) {
                    Err("boom")
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(result.err(), Some("boom"));
    }

    #[test]
    fn zero_items_yield_the_empty_sink() {
        let plan = ShardPlan::new(0).with_threads(4);
        let out = run_sharded(
            &plan,
            || (),
            || Collect(Vec::new()),
            |_, _, _| Ok::<(), std::convert::Infallible>(()),
        )
        .unwrap();
        assert!(out.0.is_empty());
    }

    /// Regression: an empty campaign must return the identity-merged
    /// sink at *any* thread/batch combination — the worker and process
    /// closures must never run, and nothing may panic on the empty
    /// partial list.
    #[test]
    fn empty_campaigns_never_panic_and_never_invoke_workers() {
        for threads in [1usize, 2, 4, 17] {
            for batch in [1usize, 7, 64] {
                let plan = ShardPlan {
                    items: 0,
                    threads,
                    batch,
                };
                assert!(plan.shards().is_empty());
                let out = run_sharded(
                    &plan,
                    || panic!("no worker state for an empty campaign"),
                    || Collect(Vec::new()),
                    |_: &mut (), _, _| -> Result<(), &'static str> {
                        panic!("no batches for an empty campaign")
                    },
                )
                .expect("empty campaign yields the empty sink");
                assert!(out.0.is_empty(), "threads {threads} batch {batch}");
            }
        }
    }
}
