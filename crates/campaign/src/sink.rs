//! Streaming sinks: what a campaign folds its traces into.
//!
//! A sink receives each batch of `(input, trace)` pairs the moment a
//! worker produces it and reduces them on the spot, so no trace outlives
//! its batch. Sinks are [`Mergeable`]: each worker owns a private sink
//! and the engine recombines them in worker order.

use sca_analysis::{
    CpaAccumulator, CpaResult, PearsonAccumulator, SelectionFunction, StateError, StateReader,
    TtestAccumulator,
};

use crate::Mergeable;

/// A streaming consumer of campaign traces.
///
/// `traces` is trace-major `inputs.len() × samples`. Implementations
/// must reduce in index order so results do not depend on batch size.
pub trait CampaignSink: Mergeable + Send {
    /// Folds one batch of traces (in index order) into the sink.
    fn absorb_batch(&mut self, inputs: &[Vec<u8>], traces: &[f32], samples: usize);
}

impl<A: CampaignSink, B: CampaignSink> CampaignSink for (A, B) {
    fn absorb_batch(&mut self, inputs: &[Vec<u8>], traces: &[f32], samples: usize) {
        self.0.absorb_batch(inputs, traces, samples);
        self.1.absorb_batch(inputs, traces, samples);
    }
}

/// A sink whose statistical state can be snapshotted exactly and
/// restored later — the contract behind crash-safe resumable campaigns.
///
/// `save_state` must append the *bit patterns* of every accumulated
/// value (via [`sca_analysis::StateWriter`]); restoring the snapshot
/// into a freshly built sink of the same shape and absorbing further
/// traces must be byte-identical to never having stopped. Scratch
/// buffers and closures are not part of the state — only the
/// accumulators are.
pub trait Checkpointable {
    /// Appends this sink's exact accumulator state to `out`.
    fn save_state(&self, out: &mut Vec<u8>);

    /// Restores state written by
    /// [`save_state`](Checkpointable::save_state) into a sink of the
    /// same shape.
    ///
    /// # Errors
    ///
    /// Fails on truncation, foreign frame tags, or a geometry mismatch.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError>;
}

impl<A: Checkpointable, B: Checkpointable> Checkpointable for (A, B) {
    fn save_state(&self, out: &mut Vec<u8>) {
        self.0.save_state(out);
        self.1.save_state(out);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.0.load_state(r)?;
        self.1.load_state(r)
    }
}

/// Streaming CPA: evaluates a [`SelectionFunction`] for every key guess
/// and folds each batch into a [`CpaAccumulator`].
///
/// Memory is `O(guesses × samples)` — the full trace matrix of the
/// batch attack never exists.
#[derive(Debug)]
pub struct CpaSink<S> {
    selection: S,
    guesses: usize,
    acc: CpaAccumulator,
    /// Scratch prediction buffer, trace-major `batch × guesses`.
    predictions: Vec<f64>,
}

impl<S: SelectionFunction> CpaSink<S> {
    /// Creates a sink attacking `guesses` candidates over traces of
    /// `samples` points.
    pub fn new(selection: S, guesses: usize, samples: usize) -> CpaSink<S> {
        let guesses = guesses.max(1);
        CpaSink {
            selection,
            guesses,
            acc: CpaAccumulator::new(guesses, samples),
            predictions: Vec::new(),
        }
    }

    /// Traces absorbed so far.
    pub fn len(&self) -> u64 {
        self.acc.len()
    }

    /// Whether no trace was absorbed.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Extracts the guess × sample correlation matrix.
    pub fn finish(&self) -> CpaResult {
        self.acc.finish()
    }

    /// The underlying accumulator (e.g. to keep merging across
    /// campaigns).
    pub fn accumulator(&self) -> &CpaAccumulator {
        &self.acc
    }
}

impl<S: SelectionFunction> Mergeable for CpaSink<S> {
    fn merge(&mut self, other: CpaSink<S>) {
        self.acc.merge(&other.acc);
    }
}

impl<S: SelectionFunction> Checkpointable for CpaSink<S> {
    fn save_state(&self, out: &mut Vec<u8>) {
        self.acc.write_state(out);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.acc.load_state(r)
    }
}

impl<S: SelectionFunction> CampaignSink for CpaSink<S> {
    fn absorb_batch(&mut self, inputs: &[Vec<u8>], traces: &[f32], samples: usize) {
        debug_assert_eq!(traces.len(), inputs.len() * samples);
        self.predictions.clear();
        for input in inputs {
            for g in 0..self.guesses {
                self.predictions
                    .push(self.selection.predict(input, g as u8));
            }
        }
        self.acc.absorb_batch(&self.predictions, traces);
    }
}

/// Streaming model correlation: one key-less leakage model against every
/// sample point — the characterization primitive behind Table 2, in
/// `O(samples)` memory.
#[derive(Debug)]
pub struct CorrSink<F> {
    model: F,
    acc: PearsonAccumulator,
}

impl<F: Fn(&[u8]) -> f64 + Send> CorrSink<F> {
    /// Creates a sink correlating `model(input)` over traces of
    /// `samples` points.
    pub fn new(model: F, samples: usize) -> CorrSink<F> {
        CorrSink {
            model,
            acc: PearsonAccumulator::new(samples),
        }
    }

    /// Traces absorbed so far.
    pub fn len(&self) -> u64 {
        self.acc.len()
    }

    /// Whether no trace was absorbed.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Correlation of the model with every sample point.
    pub fn correlations(&self) -> Vec<f64> {
        self.acc.correlations()
    }

    /// Peak |correlation| across the window.
    pub fn peak(&self) -> f64 {
        self.correlations()
            .iter()
            .map(|c| c.abs())
            .fold(0.0, f64::max)
    }
}

impl<F: Fn(&[u8]) -> f64 + Send> Mergeable for CorrSink<F> {
    fn merge(&mut self, other: CorrSink<F>) {
        self.acc.merge(&other.acc);
    }
}

impl<F: Fn(&[u8]) -> f64 + Send> Checkpointable for CorrSink<F> {
    fn save_state(&self, out: &mut Vec<u8>) {
        self.acc.write_state(out);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.acc.load_state(r)
    }
}

impl<F: Fn(&[u8]) -> f64 + Send> CampaignSink for CorrSink<F> {
    fn absorb_batch(&mut self, inputs: &[Vec<u8>], traces: &[f32], samples: usize) {
        for (input, trace) in inputs.iter().zip(traces.chunks_exact(samples)) {
            self.acc.add((self.model)(input), trace);
        }
    }
}

/// Streaming fixed-vs-random Welch t-test (TVLA): each trace is routed
/// into the fixed or random population by a classifier over its input
/// bytes, and folded into a mergeable [`TtestAccumulator`] —
/// `O(samples)` memory, the countermeasure-assessment primitive behind
/// the `masked` experiment.
///
/// The classifier sees the raw campaign input (for the masked AES that
/// is `plaintext ‖ masks`), so a fixed-plaintext/random-mask TVLA
/// campaign classifies on the plaintext prefix alone.
#[derive(Debug)]
pub struct TtestSink<F> {
    classify: F,
    acc: TtestAccumulator,
}

impl<F: Fn(&[u8]) -> bool + Send> TtestSink<F> {
    /// Creates a sink over traces of `samples` points; `classify`
    /// returns `true` for inputs belonging to the fixed population.
    pub fn new(classify: F, samples: usize) -> TtestSink<F> {
        TtestSink {
            classify,
            acc: TtestAccumulator::new(samples),
        }
    }

    /// Traces absorbed as `(fixed, random)`.
    pub fn counts(&self) -> (u64, u64) {
        self.acc.counts()
    }

    /// Point-wise Welch t statistics.
    ///
    /// # Panics
    ///
    /// Panics if either population holds fewer than two traces.
    pub fn t_statistics(&self) -> Vec<f64> {
        self.acc.t_statistics()
    }

    /// Largest |t| across the window.
    ///
    /// # Panics
    ///
    /// Panics if either population holds fewer than two traces.
    pub fn max_t(&self) -> f64 {
        self.t_statistics()
            .iter()
            .map(|t| t.abs())
            .fold(0.0, f64::max)
    }

    /// Whether any sample crosses the TVLA threshold.
    ///
    /// # Panics
    ///
    /// Panics if either population holds fewer than two traces.
    pub fn leaks(&self) -> bool {
        self.acc.leaks()
    }
}

impl<F: Fn(&[u8]) -> bool + Send> Mergeable for TtestSink<F> {
    fn merge(&mut self, other: TtestSink<F>) {
        self.acc.merge(&other.acc);
    }
}

impl<F: Fn(&[u8]) -> bool + Send> Checkpointable for TtestSink<F> {
    fn save_state(&self, out: &mut Vec<u8>) {
        self.acc.write_state(out);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.acc.load_state(r)
    }
}

impl<F: Fn(&[u8]) -> bool + Send> CampaignSink for TtestSink<F> {
    fn absorb_batch(&mut self, inputs: &[Vec<u8>], traces: &[f32], samples: usize) {
        for (input, trace) in inputs.iter().zip(traces.chunks_exact(samples)) {
            if (self.classify)(input) {
                self.acc.add_fixed(trace);
            } else {
                self.acc.add_random(trace);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_analysis::{cpa_attack, hw8, CpaConfig, FnSelection, TraceSet};

    fn tiny_set() -> TraceSet {
        let mut set = TraceSet::new(3);
        for pt in [0x00u8, 0x13, 0x37, 0x5a, 0xa5, 0xc3, 0xff, 0x42] {
            let leak = hw8(pt) as f32;
            set.push(vec![leak, 1.0, -leak], vec![pt]);
        }
        set
    }

    fn model() -> FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync> {
        FnSelection::new("hw(pt^k)", |input: &[u8], k: u8| {
            f64::from(hw8(input[0] ^ k))
        })
    }

    #[test]
    fn cpa_sink_matches_batch_attack() {
        let set = tiny_set();
        let mut sink = CpaSink::new(model(), 256, 3);
        let mut inputs = Vec::new();
        let mut flat = Vec::new();
        for (input, trace) in set.iter() {
            inputs.push(input.to_vec());
            flat.extend_from_slice(trace);
        }
        sink.absorb_batch(&inputs, &flat, 3);
        assert_eq!(sink.len(), set.len() as u64);
        let streamed = sink.finish();
        let batch = cpa_attack(
            &set,
            &model(),
            &CpaConfig {
                guesses: 256,
                threads: 1,
            },
        );
        for g in 0..256 {
            assert_eq!(streamed.series(g), batch.series(g), "guess {g}");
        }
    }

    #[test]
    fn corr_sink_matches_model_correlation() {
        let set = tiny_set();
        let mut sink = CorrSink::new(|input: &[u8]| f64::from(hw8(input[0])), 3);
        for (input, trace) in set.iter() {
            sink.absorb_batch(&[input.to_vec()], trace, 3);
        }
        let reference = sca_analysis::model_correlation(
            &set,
            &sca_analysis::InputModel::new("hw(pt)", |input: &[u8]| f64::from(hw8(input[0]))),
        );
        assert_eq!(sink.correlations(), reference);
        assert!(sink.peak() > 0.99, "direct leak: {}", sink.peak());
    }

    #[test]
    fn ttest_sink_matches_batch_welch() {
        use sca_analysis::welch_t;
        let mut fixed = TraceSet::new(3);
        let mut random = TraceSet::new(3);
        let mut sink = TtestSink::new(|input: &[u8]| input[0] == 0, 3);
        for i in 0..20u32 {
            let wobble = f64::from(i).sin() as f32;
            let f = vec![2.0 + wobble, 0.0, 1.0];
            let r = vec![-1.0 - wobble, 0.0, 1.0 + wobble];
            sink.absorb_batch(&[vec![0u8], vec![1u8]], &[f.clone(), r.clone()].concat(), 3);
            fixed.push(f, vec![0]);
            random.push(r, vec![1]);
        }
        assert_eq!(sink.counts(), (20, 20));
        let batch = welch_t(&fixed, &random);
        for (s, b) in sink.t_statistics().iter().zip(&batch) {
            assert!((s - b).abs() < 1e-9, "{s} vs {b}");
        }
        assert!(sink.leaks());
        assert!(sink.max_t() > sca_analysis::TVLA_THRESHOLD);
    }

    #[test]
    fn ttest_sink_merges_across_shards() {
        let make = || TtestSink::new(|input: &[u8]| input[0] == 0, 1);
        let mut whole = make();
        let mut shard0 = make();
        let mut shard1 = make();
        for i in 0..30u32 {
            let input = vec![(i % 2) as u8];
            let trace = vec![if i % 2 == 0 { 5.0 } else { -5.0 } + (i as f32 * 0.37).sin()];
            whole.absorb_batch(std::slice::from_ref(&input), &trace, 1);
            let shard = if i < 13 { &mut shard0 } else { &mut shard1 };
            shard.absorb_batch(&[input], &trace, 1);
        }
        shard0.merge(shard1);
        assert_eq!(shard0.counts(), whole.counts());
        for (a, b) in shard0.t_statistics().iter().zip(whole.t_statistics()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn tuple_sink_feeds_both() {
        let set = tiny_set();
        let mut pair = (
            CpaSink::new(model(), 256, 3),
            CorrSink::new(|input: &[u8]| f64::from(hw8(input[0])), 3),
        );
        for (input, trace) in set.iter() {
            pair.absorb_batch(&[input.to_vec()], trace, 3);
        }
        assert_eq!(pair.0.len(), set.len() as u64);
        assert_eq!(pair.1.len(), set.len() as u64);
    }
}
