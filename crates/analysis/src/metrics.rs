//! Attack-effort metrics: how the correct key's rank evolves with the
//! number of traces.
//!
//! The paper reports single operating points (100k traces bare metal,
//! hundreds of averaged traces under Linux); a library user evaluating a
//! countermeasure wants the whole curve — "how many traces until rank 0"
//! is the standard measurement-to-disclosure metric. The evolution is
//! computed in one streaming pass using mergeable Pearson accumulators.

use crate::{PearsonAccumulator, SelectionFunction, TraceSet};

/// The attack state at one checkpoint of the trace budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankPoint {
    /// Traces consumed so far.
    pub traces: usize,
    /// Rank of the correct key (0 = attack succeeds).
    pub rank: usize,
    /// Peak |correlation| of the correct key at this point.
    pub correct_peak: f64,
    /// Peak |correlation| of the best wrong guess.
    pub best_wrong_peak: f64,
}

/// Computes the correct-key rank at increasing trace counts, in one pass.
///
/// `checkpoints` are trace counts at which to snapshot (values larger
/// than the set are clamped; duplicates and zeros are ignored). Guesses
/// are `0..=255`.
///
/// ```no_run
/// # use sca_analysis::{rank_evolution, FnSelection};
/// # let traces = sca_power::TraceSet::new(0);
/// let model = FnSelection::new("m", |i: &[u8], k: u8| f64::from(i[0] ^ k));
/// let curve = rank_evolution(&traces, &model, 0x2b, &[50, 100, 200, 400]);
/// let needed = curve.iter().find(|p| p.rank == 0).map(|p| p.traces);
/// # let _ = needed;
/// ```
pub fn rank_evolution(
    traces: &TraceSet,
    selection: &dyn SelectionFunction,
    correct: u8,
    checkpoints: &[usize],
) -> Vec<RankPoint> {
    let samples = traces.samples_per_trace();
    let mut accumulators: Vec<PearsonAccumulator> =
        (0..256).map(|_| PearsonAccumulator::new(samples)).collect();

    let mut points: Vec<usize> = checkpoints
        .iter()
        .copied()
        .map(|c| c.min(traces.len()))
        .filter(|&c| c > 0)
        .collect();
    points.sort_unstable();
    points.dedup();

    let mut out = Vec::with_capacity(points.len());
    let mut next = points.iter().copied().peekable();
    for (index, (input, trace)) in traces.iter().enumerate() {
        // Parallelize the 256 accumulator updates across threads.
        std::thread::scope(|scope| {
            let chunk = 64;
            for (g0, accs) in accumulators.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (i, acc) in accs.iter_mut().enumerate() {
                        let guess = (g0 * chunk + i) as u8;
                        acc.add(selection.predict(input, guess), trace);
                    }
                });
            }
        });
        while next.peek() == Some(&(index + 1)) {
            let n = next.next().expect("peeked");
            let peaks: Vec<f64> = accumulators
                .iter()
                .map(|acc| {
                    acc.correlations()
                        .iter()
                        .fold(0.0f64, |best, &r| best.max(r.abs()))
                })
                .collect();
            let correct_peak = peaks[usize::from(correct)];
            let rank = peaks.iter().filter(|&&p| p > correct_peak).count();
            let best_wrong_peak = peaks
                .iter()
                .enumerate()
                .filter(|(g, _)| *g != usize::from(correct))
                .map(|(_, &p)| p)
                .fold(0.0, f64::max);
            out.push(RankPoint {
                traces: n,
                rank,
                correct_peak,
                best_wrong_peak,
            });
        }
    }
    out
}

/// The smallest checkpoint at which the attack reaches rank 0 and stays
/// there for all later checkpoints, if any — the "traces to disclosure"
/// summary metric.
pub fn traces_to_rank0(curve: &[RankPoint]) -> Option<usize> {
    let mut candidate = None;
    for point in curve {
        if point.rank == 0 {
            candidate.get_or_insert(point.traces);
        } else {
            candidate = None;
        }
    }
    candidate
}

/// A rule-of-thumb forecast of traces-to-disclosure from an observed
/// peak correlation: `ceil(3 + 8 / ln²((1+ρ)/(1-ρ)))` — Mangard's
/// success-rate formula for a 90%-confidence distinguishing experiment,
/// the standard way to extrapolate "how many more traces" while an
/// attack is still below rank 0.
///
/// Used by the campaign server's streamed progress events: once a
/// partial campaign reaches rank 0 the *measured* crossing
/// ([`traces_to_rank0`]) is authoritative, but before that this
/// estimate is the only forward-looking number available. Returns
/// `None` for `ρ ≤ 0` or non-finite inputs (no correlation ⇒ no
/// forecast); `ρ ≥ 1` forecasts the 3-trace floor.
#[must_use]
pub fn estimate_traces_to_disclosure(rho: f64) -> Option<u64> {
    if !rho.is_finite() || rho <= 0.0 {
        return None;
    }
    if rho >= 1.0 {
        return Some(3);
    }
    // Fisher z-transform: z = ln((1+ρ)/(1-ρ)) = 2·atanh(ρ).
    let z = ((1.0 + rho) / (1.0 - rho)).ln();
    let n = 3.0 + 8.0 / (z * z);
    Some(n.ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hw8, FnSelection};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sbox(x: u8) -> u8 {
        let y = u32::from(x).wrapping_add(113);
        let cube = y.wrapping_mul(y).wrapping_mul(y);
        (cube ^ (cube >> 8) ^ (cube >> 17)) as u8
    }

    fn noisy_traces(key: u8, n: usize, noise: f64) -> TraceSet {
        let mut rng = StdRng::seed_from_u64(9);
        let mut set = TraceSet::new(4);
        for _ in 0..n {
            let pt: u8 = rng.gen();
            let leak = f64::from(hw8(sbox(pt ^ key)));
            let mut t = vec![0.0f32; 4];
            for (i, v) in t.iter_mut().enumerate() {
                *v = (rng.gen_range(-noise..noise) + if i == 2 { leak } else { 0.0 }) as f32;
            }
            set.push(t, vec![pt]);
        }
        set
    }

    fn model() -> FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync> {
        FnSelection::new("hw(S(pt^k))", |i: &[u8], k: u8| {
            f64::from(hw8(sbox(i[0] ^ k)))
        })
    }

    #[test]
    fn rank_improves_with_traces() {
        let set = noisy_traces(0x42, 600, 6.0);
        let curve = rank_evolution(&set, &model(), 0x42, &[20, 100, 300, 600]);
        assert_eq!(curve.len(), 4);
        assert_eq!(
            curve.last().expect("nonempty").rank,
            0,
            "600 traces suffice"
        );
        // Monotone trace counts; final rank better or equal to earliest.
        assert!(curve.first().expect("nonempty").rank >= curve.last().expect("nonempty").rank);
    }

    #[test]
    fn evolution_matches_full_cpa_at_the_end() {
        let set = noisy_traces(0x17, 200, 2.0);
        let curve = rank_evolution(&set, &model(), 0x17, &[200]);
        let full = crate::cpa_attack(
            &set,
            &model(),
            &crate::CpaConfig {
                guesses: 256,
                threads: 4,
            },
        );
        assert_eq!(curve[0].rank, full.rank_of(0x17));
        let (_, peak) = full.peak(0x17);
        assert!((curve[0].correct_peak - peak.abs()).abs() < 1e-12);
    }

    #[test]
    fn traces_to_rank0_requires_stability() {
        let curve = vec![
            RankPoint {
                traces: 10,
                rank: 0,
                correct_peak: 0.5,
                best_wrong_peak: 0.4,
            },
            RankPoint {
                traces: 20,
                rank: 3,
                correct_peak: 0.4,
                best_wrong_peak: 0.5,
            },
            RankPoint {
                traces: 30,
                rank: 0,
                correct_peak: 0.6,
                best_wrong_peak: 0.3,
            },
        ];
        assert_eq!(
            traces_to_rank0(&curve),
            Some(30),
            "early luck at n=10 does not count"
        );
        assert_eq!(traces_to_rank0(&[]), None);
    }

    #[test]
    fn disclosure_estimate_tracks_correlation_strength() {
        // Stronger correlation ⇒ fewer traces; the curve must be
        // monotone and hit the known anchors of Mangard's formula.
        let strong = estimate_traces_to_disclosure(0.8).expect("valid rho");
        let medium = estimate_traces_to_disclosure(0.3).expect("valid rho");
        let weak = estimate_traces_to_disclosure(0.05).expect("valid rho");
        assert!(strong < medium && medium < weak);
        // ρ=0.05 ⇒ z≈0.1, n ≈ 3 + 8/0.01 ≈ 803.
        assert!((750..=850).contains(&weak), "weak={weak}");
        assert_eq!(estimate_traces_to_disclosure(1.5), Some(3));
    }

    #[test]
    fn disclosure_estimate_rejects_unusable_correlations() {
        assert_eq!(estimate_traces_to_disclosure(0.0), None);
        assert_eq!(estimate_traces_to_disclosure(-0.4), None);
        assert_eq!(estimate_traces_to_disclosure(f64::NAN), None);
        assert_eq!(estimate_traces_to_disclosure(f64::INFINITY), None);
    }

    #[test]
    fn checkpoints_are_clamped_and_deduped() {
        let set = noisy_traces(0x01, 50, 1.0);
        let curve = rank_evolution(&set, &model(), 0x01, &[0, 25, 25, 500]);
        let ns: Vec<usize> = curve.iter().map(|p| p.traces).collect();
        assert_eq!(ns, vec![25, 50]);
    }
}
