//! # sca-analysis — side-channel attack and assessment statistics
//!
//! The analysis layer of the DAC 2018 reproduction: Pearson-correlation
//! CPA (the paper's distinguisher), the Fisher-z confidence tests behind
//! its ">99.5% leakage detection" and ">99% key distinguishability"
//! criteria, plus Welch t-test (TVLA) and SNR assessments.
//!
//! * [`pearson`] / [`PearsonAccumulator`] — correlation, one-pass and
//!   mergeable;
//! * [`SelectionFunction`] / [`FnSelection`] / [`InputModel`] — attack and
//!   characterization leakage models;
//! * [`cpa_attack`] / [`CpaResult`] — the guess × sample correlation
//!   matrix with ranking and success metrics;
//! * [`CpaAccumulator`] / [`TtestAccumulator`] — streaming, shard-
//!   mergeable versions of CPA and the Welch t-test; the `sca-campaign`
//!   engine runs its CPA campaigns through [`CpaAccumulator`] in
//!   `O(guesses × samples)` memory, and [`TtestAccumulator`] offers the
//!   same one-pass contract for TVLA-style assessments;
//! * [`significance_threshold`] / [`distinguishing_confidence`] — the
//!   paper's statistical criteria;
//! * [`welch_t`] / [`snr`] — complementary leakage assessments;
//! * [`StateWriter`] / [`StateReader`] — exact bit-pattern snapshots of
//!   accumulator state (`write_state`/`load_state` on every streaming
//!   accumulator), the serialization layer under `sca-store`'s
//!   checkpoint log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cpa;
#[doc(hidden)]
pub mod kernels;
mod metrics;
mod models;
mod pearson;
mod snapshot;
mod snr;
mod stats;
mod ttest;

pub use cpa::{cpa_attack, model_correlation, CpaAccumulator, CpaConfig, CpaResult};
pub use metrics::{estimate_traces_to_disclosure, rank_evolution, traces_to_rank0, RankPoint};
pub use models::{hd32, hw32, hw8, input_word, FnSelection, InputModel, SelectionFunction};
pub use pearson::{pearson, PearsonAccumulator};
pub use snapshot::{StateError, StateReader, StateWriter};
pub use snr::snr;
pub use stats::{
    correlation_confidence, distinguishing_confidence, fisher_z, normal_cdf, normal_quantile,
    significance_threshold, significant,
};
pub use ttest::{leaks, welch_t, TtestAccumulator, TVLA_THRESHOLD};

// Re-exported so attack code only needs this crate.
pub use sca_power::TraceSet;
