//! Statistical significance machinery.
//!
//! The paper declares a leakage present "whenever its power model
//! reported, in the correct clock cycle, a correlation distinguishable
//! from zero with a statistical confidence >99.5%", and declares the
//! Figure 4 attack successful because "the correct key is distinguishable
//! from the best wrong guess with a statistical confidence >99%". Both
//! tests live here, built on the Fisher z-transform of the correlation
//! coefficient.

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.15e-9 — far below anything these
/// confidence tests need).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 on `erf`, |error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let erf = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

/// Fisher z-transform of a correlation coefficient.
pub fn fisher_z(r: f64) -> f64 {
    r.clamp(-0.999_999, 0.999_999).atanh()
}

/// The smallest |r| that is distinguishable from zero with two-sided
/// `confidence` given `n` observations.
///
/// ```
/// // With 100k traces (the paper's Table 2 campaigns), even tiny
/// // correlations are significant:
/// let r = sca_analysis::significance_threshold(100_000, 0.995);
/// assert!(r < 0.01);
/// ```
///
/// # Panics
///
/// Panics if `n < 4` or `confidence` is not in `(0, 1)`.
pub fn significance_threshold(n: u64, confidence: f64) -> f64 {
    assert!(n >= 4, "need at least 4 observations");
    let z = normal_quantile(0.5 + confidence / 2.0);
    (z / ((n as f64) - 3.0).sqrt()).tanh()
}

/// Two-sided confidence that a sample correlation `r` over `n`
/// observations reflects a non-zero true correlation.
pub fn correlation_confidence(r: f64, n: u64) -> f64 {
    if n < 4 {
        return 0.0;
    }
    let z = fisher_z(r).abs() * ((n as f64) - 3.0).sqrt();
    2.0 * normal_cdf(z) - 1.0
}

/// Whether `r` is distinguishable from zero at the given confidence —
/// the paper's leakage-detection criterion (it uses 99.5%).
pub fn significant(r: f64, n: u64, confidence: f64) -> bool {
    n >= 4 && r.abs() >= significance_threshold(n, confidence)
}

/// One-sided confidence that the true correlation behind `r_best` exceeds
/// the one behind `r_second` (independent-sample approximation on the
/// Fisher z scale) — the paper's key-recovery success criterion
/// (it uses 99% between the correct key and the best wrong guess).
pub fn distinguishing_confidence(r_best: f64, r_second: f64, n: u64) -> f64 {
    if n < 4 {
        return 0.0;
    }
    let dz = fisher_z(r_best) - fisher_z(r_second);
    let se = (2.0 / ((n as f64) - 3.0)).sqrt();
    normal_cdf(dz / se)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_round_trips_cdf() {
        for p in [0.001, 0.01, 0.25, 0.5, 0.75, 0.995, 0.9995] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p={p}");
        }
    }

    #[test]
    fn known_quantiles() {
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575_829).abs() < 1e-4);
        assert!(normal_quantile(0.5).abs() < 1e-9);
    }

    #[test]
    fn threshold_shrinks_with_traces() {
        let small = significance_threshold(100, 0.995);
        let large = significance_threshold(100_000, 0.995);
        assert!(large < small);
        assert!(small < 0.3);
        assert!(large < 0.01);
    }

    #[test]
    fn significance_consistency() {
        let n = 1000;
        let thr = significance_threshold(n, 0.995);
        assert!(significant(thr * 1.01, n, 0.995));
        assert!(!significant(thr * 0.99, n, 0.995));
        assert!(significant(-thr * 1.2, n, 0.995), "two-sided");
        // Confidence at the threshold is the threshold confidence.
        let c = correlation_confidence(thr, n);
        assert!((c - 0.995).abs() < 1e-3, "confidence {c}");
    }

    #[test]
    fn distinguishing_confidence_behaviour() {
        // Clearly separated correlations with plenty of traces.
        assert!(distinguishing_confidence(0.3, 0.05, 10_000) > 0.999);
        // Equal correlations: 50/50.
        let c = distinguishing_confidence(0.1, 0.1, 10_000);
        assert!((c - 0.5).abs() < 1e-9);
        // Reversed order: below half.
        assert!(distinguishing_confidence(0.05, 0.3, 10_000) < 0.001);
        // The paper's Figure 4 regime: ~0.02 peak over ~100 averaged
        // traces... distinguishability there relies on the margin; verify
        // monotonicity in n.
        let few = distinguishing_confidence(0.25, 0.02, 100);
        let many = distinguishing_confidence(0.25, 0.02, 1000);
        assert!(many > few);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn threshold_requires_observations() {
        significance_threshold(3, 0.99);
    }
}
