//! Correlation Power Analysis.
//!
//! For every key-byte guess, correlate the predicted leakage (from a
//! [`SelectionFunction`]) with the measured traces at every sample point;
//! the guess whose correlation peaks highest is the attack's key
//! candidate. This reproduces the attacks of Section 5 of the paper
//! (Figures 3 and 4).

use crate::{distinguishing_confidence, PearsonAccumulator, SelectionFunction, TraceSet};

/// CPA attack parameters.
#[derive(Clone, Copy, Debug)]
pub struct CpaConfig {
    /// Number of key guesses (256 for a key byte).
    pub guesses: usize,
    /// Worker threads across guesses.
    pub threads: usize,
}

impl CpaConfig {
    /// One key byte, eight threads.
    pub fn key_byte() -> CpaConfig {
        CpaConfig {
            guesses: 256,
            threads: 8,
        }
    }
}

impl Default for CpaConfig {
    fn default() -> CpaConfig {
        CpaConfig::key_byte()
    }
}

/// Result of a CPA attack: the full guess × sample correlation matrix.
#[derive(Clone, Debug)]
pub struct CpaResult {
    guesses: usize,
    samples: usize,
    /// Row-major `guess × sample` correlations.
    corr: Vec<f64>,
    /// Traces used.
    n: u64,
}

impl CpaResult {
    /// Number of traces the attack consumed.
    pub fn traces_used(&self) -> u64 {
        self.n
    }

    /// Number of samples per trace.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of guesses evaluated.
    pub fn guesses(&self) -> usize {
        self.guesses
    }

    /// Correlation series for one guess.
    ///
    /// # Panics
    ///
    /// Panics if `guess` is out of range.
    pub fn series(&self, guess: usize) -> &[f64] {
        &self.corr[guess * self.samples..(guess + 1) * self.samples]
    }

    /// Peak absolute correlation of a guess, with its sample index.
    pub fn peak(&self, guess: usize) -> (usize, f64) {
        let series = self.series(guess);
        let mut best = (0usize, 0.0f64);
        for (i, &r) in series.iter().enumerate() {
            if r.abs() > best.1.abs() {
                best = (i, r);
            }
        }
        best
    }

    /// The guess with the highest peak |correlation|.
    pub fn best_guess(&self) -> usize {
        (0..self.guesses)
            .max_by(|&a, &b| {
                self.peak(a)
                    .1
                    .abs()
                    .partial_cmp(&self.peak(b).1.abs())
                    .expect("correlations are finite")
            })
            .expect("at least one guess")
    }

    /// Guesses ordered best-first by peak |correlation|.
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.guesses).collect();
        order.sort_by(|&a, &b| {
            self.peak(b)
                .1
                .abs()
                .partial_cmp(&self.peak(a).1.abs())
                .expect("correlations are finite")
        });
        order
    }

    /// Rank of a guess (0 = best) — the key-rank metric.
    pub fn rank_of(&self, guess: usize) -> usize {
        self.ranking()
            .iter()
            .position(|&g| g == guess)
            .expect("guess in range")
    }

    /// Peak |correlation| of the best *wrong* guess, given the correct
    /// key.
    pub fn best_wrong_peak(&self, correct: usize) -> f64 {
        (0..self.guesses)
            .filter(|&g| g != correct)
            .map(|g| self.peak(g).1.abs())
            .fold(0.0, f64::max)
    }

    /// Confidence that the correct guess's peak exceeds the best wrong
    /// guess's — the paper's Figure 4 success criterion (>99%).
    pub fn success_confidence(&self, correct: usize) -> f64 {
        let r_correct = self.peak(correct).1.abs();
        let r_wrong = self.best_wrong_peak(correct);
        distinguishing_confidence(r_correct, r_wrong, self.n)
    }
}

/// Runs a CPA attack over a trace set.
///
/// ```no_run
/// use sca_analysis::{cpa_attack, CpaConfig, FnSelection, hw8};
/// # let traces = sca_power::TraceSet::new(0);
/// let model = FnSelection::new("hw(pt ^ k)", |input: &[u8], k: u8| {
///     f64::from(hw8(input[0] ^ k))
/// });
/// let result = cpa_attack(&traces, &model, &CpaConfig::key_byte());
/// let recovered = result.best_guess();
/// # let _ = recovered;
/// ```
pub fn cpa_attack(
    traces: &TraceSet,
    selection: &dyn SelectionFunction,
    config: &CpaConfig,
) -> CpaResult {
    let samples = traces.samples_per_trace();
    let guesses = config.guesses.max(1);
    let n = traces.len() as u64;
    let mut corr = vec![0.0f64; guesses * samples];

    let threads = config.threads.max(1).min(guesses);
    let chunk = guesses.div_ceil(threads);
    // Split the output matrix into disjoint per-thread slices.
    let mut slices: Vec<&mut [f64]> = corr.chunks_mut(chunk * samples).collect();
    std::thread::scope(|scope| {
        for (w, slice) in slices.iter_mut().enumerate() {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(guesses);
            scope.spawn(move || {
                for guess in lo..hi {
                    let mut acc = PearsonAccumulator::new(samples);
                    for (input, trace) in traces.iter() {
                        acc.add(selection.predict(input, guess as u8), trace);
                    }
                    let series = acc.correlations();
                    let base = (guess - lo) * samples;
                    slice[base..base + samples].copy_from_slice(&series);
                }
            });
        }
    });

    CpaResult {
        guesses,
        samples,
        corr,
        n,
    }
}

/// Evaluates a single key-less model against the traces, returning its
/// correlation series — the characterization primitive behind Table 2.
pub fn model_correlation(traces: &TraceSet, model: &dyn SelectionFunction) -> Vec<f64> {
    let mut acc = PearsonAccumulator::new(traces.samples_per_trace());
    for (input, trace) in traces.iter() {
        acc.add(model.predict(input, 0), trace);
    }
    acc.correlations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hw8, FnSelection};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A nonlinear 8-bit permutation (x ↦ x^3-like construction). An
    /// affine map would create perfectly anticorrelated "ghost" keys and
    /// make CPA ranks meaningless.
    fn sbox(x: u8) -> u8 {
        let y = u32::from(x).wrapping_add(113);
        let cube = y.wrapping_mul(y).wrapping_mul(y);
        (cube ^ (cube >> 8) ^ (cube >> 17)) as u8
    }

    /// Builds a synthetic campaign: power at sample 3 is HW(S(pt ^ key))
    /// plus noise, other samples are noise.
    fn synthetic_traces(key: u8, traces: usize, noise_sd: f64) -> TraceSet {
        let mut rng = StdRng::seed_from_u64(1);
        let mut set = TraceSet::new(8);
        for _ in 0..traces {
            let pt: u8 = rng.gen();
            let leak = f64::from(hw8(sbox(pt ^ key)));
            let mut trace = vec![0.0f32; 8];
            for (i, t) in trace.iter_mut().enumerate() {
                let noise: f64 = rng.gen_range(-noise_sd..noise_sd);
                *t = (noise + if i == 3 { leak } else { 0.0 }) as f32;
            }
            set.push(trace, vec![pt]);
        }
        set
    }

    fn sbox_model() -> FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync> {
        FnSelection::new("hw(S(pt^k))", |input: &[u8], k: u8| {
            f64::from(hw8(sbox(input[0] ^ k)))
        })
    }

    #[test]
    fn recovers_key_from_clean_traces() {
        let set = synthetic_traces(0x3c, 300, 0.5);
        let result = cpa_attack(
            &set,
            &sbox_model(),
            &CpaConfig {
                guesses: 256,
                threads: 4,
            },
        );
        assert_eq!(result.best_guess(), 0x3c);
        assert_eq!(result.rank_of(0x3c), 0);
        let (sample, r) = result.peak(0x3c);
        assert_eq!(sample, 3, "leak localized at the right instant");
        assert!(r > 0.9, "peak correlation {r}");
        assert!(result.success_confidence(0x3c) > 0.99);
    }

    #[test]
    fn noisy_traces_need_more_data() {
        let few = synthetic_traces(0x77, 40, 8.0);
        let many = synthetic_traces(0x77, 2000, 8.0);
        let config = CpaConfig {
            guesses: 256,
            threads: 4,
        };
        let result_many = cpa_attack(&many, &sbox_model(), &config);
        assert_eq!(result_many.best_guess(), 0x77, "2000 noisy traces suffice");
        let rank_few = cpa_attack(&few, &sbox_model(), &config).rank_of(0x77);
        let rank_many = result_many.rank_of(0x77);
        assert!(rank_many <= rank_few, "more traces cannot hurt the rank");
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let set = synthetic_traces(0x11, 200, 1.0);
        let a = cpa_attack(
            &set,
            &sbox_model(),
            &CpaConfig {
                guesses: 256,
                threads: 1,
            },
        );
        let b = cpa_attack(
            &set,
            &sbox_model(),
            &CpaConfig {
                guesses: 256,
                threads: 7,
            },
        );
        for g in 0..256 {
            assert_eq!(a.series(g), b.series(g), "guess {g}");
        }
    }

    #[test]
    fn ranking_is_a_permutation() {
        let set = synthetic_traces(0x00, 100, 2.0);
        let result = cpa_attack(
            &set,
            &sbox_model(),
            &CpaConfig {
                guesses: 256,
                threads: 4,
            },
        );
        let mut ranking = result.ranking();
        ranking.sort_unstable();
        assert_eq!(ranking, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn model_correlation_detects_input_leak() {
        let set = synthetic_traces(0x00, 400, 0.5);
        // With key 0, the leak is hw(sbox(pt)).
        let model =
            crate::InputModel::new("hw(S(pt))", |input: &[u8]| f64::from(hw8(sbox(input[0]))));
        let series = model_correlation(&set, &model);
        assert!(series[3] > 0.9, "corr at leak sample: {}", series[3]);
        assert!(series[0].abs() < 0.2, "corr elsewhere: {}", series[0]);
    }
}
