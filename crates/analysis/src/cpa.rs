//! Correlation Power Analysis.
//!
//! For every key-byte guess, correlate the predicted leakage (from a
//! [`SelectionFunction`]) with the measured traces at every sample point;
//! the guess whose correlation peaks highest is the attack's key
//! candidate. This reproduces the attacks of Section 5 of the paper
//! (Figures 3 and 4).
//!
//! Two evaluation styles share the same mathematics:
//!
//! * [`cpa_attack`] — the *batch* attack over a materialized
//!   [`TraceSet`], parallelized across guesses;
//! * [`CpaAccumulator`] — the *online* attack: each trace is folded into
//!   running sums the moment it is acquired and then discarded, so a
//!   campaign's memory footprint is `O(guesses × samples)` regardless of
//!   trace count. Accumulators over disjoint trace shards merge by plain
//!   addition, which is what lets the `sca-campaign` engine spread one
//!   campaign across worker threads.
//!
//! ## The online-accumulator math
//!
//! Pearson's coefficient between a guess's predicted leakage `x` and the
//! power at sample `s`, `y_s`, only needs five raw moments besides the
//! trace count `n`:
//!
//! ```text
//! Σx, Σx², Σy_s, Σy_s², Σx·y_s
//!
//!              n·Σxy − Σx·Σy
//! r(x, y) = ─────────────────────────────────────
//!           √(n·Σx² − (Σx)²) · √(n·Σy² − (Σy)²)
//! ```
//!
//! Every moment is a sum over traces, so updating with one more trace is
//! `O(guesses × samples)` work and merging two shard accumulators is an
//! element-wise add. The division by `n` is deferred to
//! [`CpaAccumulator::finish`], exactly as in [`PearsonAccumulator`] —
//! a single-shard streaming run is therefore bit-identical to the batch
//! attack, and a sharded run agrees to floating-point association
//! (≲ 1e-12 over realistic campaigns).

use crate::{distinguishing_confidence, PearsonAccumulator, SelectionFunction, TraceSet};

/// CPA attack parameters.
#[derive(Clone, Copy, Debug)]
pub struct CpaConfig {
    /// Number of key guesses (256 for a key byte).
    pub guesses: usize,
    /// Worker threads across guesses.
    pub threads: usize,
}

impl CpaConfig {
    /// One key byte, eight threads.
    pub fn key_byte() -> CpaConfig {
        CpaConfig {
            guesses: 256,
            threads: 8,
        }
    }
}

impl Default for CpaConfig {
    fn default() -> CpaConfig {
        CpaConfig::key_byte()
    }
}

/// Result of a CPA attack: the full guess × sample correlation matrix.
#[derive(Clone, Debug)]
pub struct CpaResult {
    guesses: usize,
    samples: usize,
    /// Row-major `guess × sample` correlations.
    corr: Vec<f64>,
    /// Traces used.
    n: u64,
}

impl CpaResult {
    /// Number of traces the attack consumed.
    pub fn traces_used(&self) -> u64 {
        self.n
    }

    /// Number of samples per trace.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of guesses evaluated.
    pub fn guesses(&self) -> usize {
        self.guesses
    }

    /// Correlation series for one guess.
    ///
    /// # Panics
    ///
    /// Panics if `guess` is out of range.
    pub fn series(&self, guess: usize) -> &[f64] {
        &self.corr[guess * self.samples..(guess + 1) * self.samples]
    }

    /// Peak absolute correlation of a guess, with its sample index.
    pub fn peak(&self, guess: usize) -> (usize, f64) {
        let series = self.series(guess);
        let mut best = (0usize, 0.0f64);
        for (i, &r) in series.iter().enumerate() {
            if r.abs() > best.1.abs() {
                best = (i, r);
            }
        }
        best
    }

    /// The guess with the highest peak |correlation|.
    pub fn best_guess(&self) -> usize {
        (0..self.guesses)
            .max_by(|&a, &b| {
                self.peak(a)
                    .1
                    .abs()
                    .partial_cmp(&self.peak(b).1.abs())
                    .expect("correlations are finite")
            })
            .expect("at least one guess")
    }

    /// Guesses ordered best-first by peak |correlation|.
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.guesses).collect();
        order.sort_by(|&a, &b| {
            self.peak(b)
                .1
                .abs()
                .partial_cmp(&self.peak(a).1.abs())
                .expect("correlations are finite")
        });
        order
    }

    /// Rank of a guess (0 = best) — the key-rank metric.
    pub fn rank_of(&self, guess: usize) -> usize {
        self.ranking()
            .iter()
            .position(|&g| g == guess)
            .expect("guess in range")
    }

    /// Peak |correlation| of the best *wrong* guess, given the correct
    /// key.
    pub fn best_wrong_peak(&self, correct: usize) -> f64 {
        (0..self.guesses)
            .filter(|&g| g != correct)
            .map(|g| self.peak(g).1.abs())
            .fold(0.0, f64::max)
    }

    /// Confidence that the correct guess's peak exceeds the best wrong
    /// guess's — the paper's Figure 4 success criterion (>99%).
    pub fn success_confidence(&self, correct: usize) -> f64 {
        let r_correct = self.peak(correct).1.abs();
        let r_wrong = self.best_wrong_peak(correct);
        distinguishing_confidence(r_correct, r_wrong, self.n)
    }
}

/// One-pass, mergeable CPA state — the streaming core of the campaign
/// engine.
///
/// Holds the raw moments described in the module docs: per guess
/// `Σx, Σx²`, per sample `Σy, Σy²`, and the `guess × sample` matrix
/// `Σx·y`. Feed traces with [`absorb`](CpaAccumulator::absorb) (or the
/// cache-blocked [`absorb_batch`](CpaAccumulator::absorb_batch)), combine
/// worker shards with [`merge`](CpaAccumulator::merge), and extract the
/// correlation matrix with [`finish`](CpaAccumulator::finish).
///
/// Streaming a trace set through one accumulator reproduces
/// [`cpa_attack`] bit-for-bit; sharding only perturbs the sums'
/// floating-point association:
///
/// ```
/// use sca_analysis::{cpa_attack, hw8, CpaAccumulator, CpaConfig, FnSelection, SelectionFunction};
///
/// let model = FnSelection::new("hw(pt ^ k)", |input: &[u8], k: u8| {
///     f64::from(hw8(input[0] ^ k))
/// });
/// let mut set = sca_analysis::TraceSet::new(2);
/// for pt in [0x00u8, 0x5a, 0xa5, 0xff, 0x3c, 0xc3] {
///     set.push(vec![f32::from(pt), 1.0], vec![pt]);
/// }
///
/// // Stream the same traces through two shards, then merge.
/// let mut shard_a = CpaAccumulator::new(256, 2);
/// let mut shard_b = CpaAccumulator::new(256, 2);
/// let mut predictions = vec![0.0f64; 256];
/// for (i, (input, trace)) in set.iter().enumerate() {
///     for (g, p) in predictions.iter_mut().enumerate() {
///         *p = model.predict(input, g as u8);
///     }
///     let shard = if i % 2 == 0 { &mut shard_a } else { &mut shard_b };
///     shard.absorb(&predictions, trace);
/// }
/// shard_a.merge(&shard_b);
/// let streamed = shard_a.finish();
///
/// let batch = cpa_attack(&set, &model, &CpaConfig::key_byte());
/// for g in 0..256 {
///     for (r, b) in streamed.series(g).iter().zip(batch.series(g)) {
///         assert!((r - b).abs() < 1e-12);
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct CpaAccumulator {
    guesses: usize,
    samples: usize,
    n: u64,
    /// Per guess: Σx.
    sum_x: Vec<f64>,
    /// Per guess: Σx².
    sum_xx: Vec<f64>,
    /// Per sample: Σy.
    sum_y: Vec<f64>,
    /// Per sample: Σy².
    sum_yy: Vec<f64>,
    /// Row-major `guess × sample`: Σx·y.
    sum_xy: Vec<f64>,
}

impl CpaAccumulator {
    /// Creates an empty accumulator for `guesses × samples` correlations.
    pub fn new(guesses: usize, samples: usize) -> CpaAccumulator {
        let guesses = guesses.max(1);
        CpaAccumulator {
            guesses,
            samples,
            n: 0,
            sum_x: vec![0.0; guesses],
            sum_xx: vec![0.0; guesses],
            sum_y: vec![0.0; samples],
            sum_yy: vec![0.0; samples],
            sum_xy: vec![0.0; guesses * samples],
        }
    }

    /// Number of traces absorbed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether any trace was absorbed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of guesses tracked.
    pub fn guesses(&self) -> usize {
        self.guesses
    }

    /// Samples per trace.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Folds one trace into the sums. `predictions[g]` is the modeled
    /// leakage of this trace's input under guess `g`.
    ///
    /// # Panics
    ///
    /// Panics if `predictions` or `trace` have the wrong length.
    pub fn absorb(&mut self, predictions: &[f64], trace: &[f32]) {
        self.absorb_batch(predictions, trace);
    }

    /// Folds a batch of traces into the sums in one cache-blocked pass.
    ///
    /// `predictions` is trace-major `batch × guesses`, `traces` is
    /// trace-major `batch × samples`. Per element the update order equals
    /// repeated [`absorb`](CpaAccumulator::absorb) calls, so batching
    /// never changes the result — it only sweeps the large `Σx·y` matrix
    /// once per batch instead of once per trace, which is where a
    /// streaming campaign spends most of its memory bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent with the accumulator
    /// geometry.
    pub fn absorb_batch(&mut self, predictions: &[f64], traces: &[f32]) {
        assert_eq!(
            predictions.len() % self.guesses,
            0,
            "predictions not a whole number of traces"
        );
        let batch = predictions.len() / self.guesses;
        assert_eq!(
            traces.len(),
            batch * self.samples,
            "traces length disagrees with predictions"
        );
        self.n += batch as u64;
        // `chunks_exact(0)` panics; a zero-sample geometry (fully
        // clipped window) still counts traces and prediction moments.
        if self.samples > 0 {
            for trace in traces.chunks_exact(self.samples) {
                crate::kernels::moments(&mut self.sum_y, &mut self.sum_yy, trace);
            }
        }
        for g in 0..self.guesses {
            let row = &mut self.sum_xy[g * self.samples..(g + 1) * self.samples];
            for t in 0..batch {
                let x = predictions[t * self.guesses + g];
                self.sum_x[g] += x;
                self.sum_xx[g] += x * x;
                let trace = &traces[t * self.samples..(t + 1) * self.samples];
                crate::kernels::axpy(row, x, trace);
            }
        }
    }

    /// The scalar reference of [`absorb_batch`](Self::absorb_batch):
    /// plain per-element loops, compiled identically under every feature
    /// setting. The SIMD conformance harness streams the same data
    /// through both entry points and asserts bit-identical state; it is
    /// `#[doc(hidden)]` because campaigns should always use
    /// `absorb_batch`.
    ///
    /// # Panics
    ///
    /// As [`absorb_batch`](Self::absorb_batch).
    #[doc(hidden)]
    pub fn absorb_batch_scalar(&mut self, predictions: &[f64], traces: &[f32]) {
        assert_eq!(
            predictions.len() % self.guesses,
            0,
            "predictions not a whole number of traces"
        );
        let batch = predictions.len() / self.guesses;
        assert_eq!(
            traces.len(),
            batch * self.samples,
            "traces length disagrees with predictions"
        );
        self.n += batch as u64;
        if self.samples > 0 {
            for trace in traces.chunks_exact(self.samples) {
                crate::kernels::moments_scalar(&mut self.sum_y, &mut self.sum_yy, trace);
            }
        }
        for g in 0..self.guesses {
            let row = &mut self.sum_xy[g * self.samples..(g + 1) * self.samples];
            for t in 0..batch {
                let x = predictions[t * self.guesses + g];
                self.sum_x[g] += x;
                self.sum_xx[g] += x * x;
                let trace = &traces[t * self.samples..(t + 1) * self.samples];
                crate::kernels::axpy_scalar(row, x, trace);
            }
        }
    }

    /// Raw moment state `(n, Σx, Σx², Σy, Σy², Σx·y)` — exposed for the
    /// SIMD conformance harness, which asserts bit-identity of every
    /// moment rather than of the (rounded) correlation output.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn raw_moments(&self) -> (u64, &[f64], &[f64], &[f64], &[f64], &[f64]) {
        (
            self.n,
            &self.sum_x,
            &self.sum_xx,
            &self.sum_y,
            &self.sum_yy,
            &self.sum_xy,
        )
    }

    /// Merges a shard that absorbed a disjoint set of traces.
    ///
    /// # Panics
    ///
    /// Panics on geometry mismatch.
    pub fn merge(&mut self, other: &CpaAccumulator) {
        assert_eq!(self.guesses, other.guesses, "guess count mismatch");
        assert_eq!(self.samples, other.samples, "sample count mismatch");
        self.n += other.n;
        let add = |a: &mut Vec<f64>, b: &Vec<f64>| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        };
        add(&mut self.sum_x, &other.sum_x);
        add(&mut self.sum_xx, &other.sum_xx);
        add(&mut self.sum_y, &other.sum_y);
        add(&mut self.sum_yy, &other.sum_yy);
        add(&mut self.sum_xy, &other.sum_xy);
    }

    /// Appends this accumulator's exact state (bit patterns, not
    /// decimal) to a checkpoint snapshot.
    pub fn write_state(&self, out: &mut Vec<u8>) {
        let mut w = crate::StateWriter::new(out);
        w.tag(b"CPAS");
        w.u64(self.guesses as u64);
        w.u64(self.samples as u64);
        w.u64(self.n);
        w.f64_slice(&self.sum_x);
        w.f64_slice(&self.sum_xx);
        w.f64_slice(&self.sum_y);
        w.f64_slice(&self.sum_yy);
        w.f64_slice(&self.sum_xy);
    }

    /// Restores state written by [`write_state`](Self::write_state) into
    /// an accumulator of the same geometry.
    ///
    /// # Errors
    ///
    /// Fails on truncation, a foreign frame tag, or a geometry mismatch.
    pub fn load_state(&mut self, r: &mut crate::StateReader<'_>) -> Result<(), crate::StateError> {
        r.expect_tag(b"CPAS")?;
        let guesses = r.u64()?;
        let samples = r.u64()?;
        if guesses != self.guesses as u64 || samples != self.samples as u64 {
            return Err(crate::StateError::new(format!(
                "CPA snapshot is {guesses} x {samples}, accumulator is {} x {}",
                self.guesses, self.samples
            )));
        }
        self.n = r.u64()?;
        r.f64_into(&mut self.sum_x)?;
        r.f64_into(&mut self.sum_xx)?;
        r.f64_into(&mut self.sum_y)?;
        r.f64_into(&mut self.sum_yy)?;
        r.f64_into(&mut self.sum_xy)?;
        Ok(())
    }

    /// Extracts the correlation matrix (same formula, in the same
    /// evaluation order, as [`PearsonAccumulator::correlations`]).
    pub fn finish(&self) -> CpaResult {
        let mut corr = vec![0.0f64; self.guesses * self.samples];
        if self.n >= 2 {
            let n = self.n as f64;
            let var_y: Vec<f64> = self
                .sum_y
                .iter()
                .zip(&self.sum_yy)
                .map(|(&sy, &syy)| syy - sy * sy / n)
                .collect();
            for g in 0..self.guesses {
                let var_x = self.sum_xx[g] - self.sum_x[g] * self.sum_x[g] / n;
                let row = &mut corr[g * self.samples..(g + 1) * self.samples];
                for (s, r) in row.iter_mut().enumerate() {
                    let cov = self.sum_xy[g * self.samples + s] - self.sum_x[g] * self.sum_y[s] / n;
                    *r = if var_x <= 0.0 || var_y[s] <= 0.0 {
                        0.0
                    } else {
                        cov / (var_x.sqrt() * var_y[s].sqrt())
                    };
                }
            }
        }
        CpaResult {
            guesses: self.guesses,
            samples: self.samples,
            corr,
            n: self.n,
        }
    }
}

/// Runs a CPA attack over a trace set.
///
/// ```no_run
/// use sca_analysis::{cpa_attack, CpaConfig, FnSelection, hw8};
/// # let traces = sca_power::TraceSet::new(0);
/// let model = FnSelection::new("hw(pt ^ k)", |input: &[u8], k: u8| {
///     f64::from(hw8(input[0] ^ k))
/// });
/// let result = cpa_attack(&traces, &model, &CpaConfig::key_byte());
/// let recovered = result.best_guess();
/// # let _ = recovered;
/// ```
pub fn cpa_attack(
    traces: &TraceSet,
    selection: &dyn SelectionFunction,
    config: &CpaConfig,
) -> CpaResult {
    let samples = traces.samples_per_trace();
    let guesses = config.guesses.max(1);
    let n = traces.len() as u64;
    let mut corr = vec![0.0f64; guesses * samples];

    let threads = config.threads.max(1).min(guesses);
    let chunk = guesses.div_ceil(threads);
    // Split the output matrix into disjoint per-thread slices.
    let mut slices: Vec<&mut [f64]> = corr.chunks_mut(chunk * samples).collect();
    std::thread::scope(|scope| {
        for (w, slice) in slices.iter_mut().enumerate() {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(guesses);
            scope.spawn(move || {
                for guess in lo..hi {
                    let mut acc = PearsonAccumulator::new(samples);
                    for (input, trace) in traces.iter() {
                        acc.add(selection.predict(input, guess as u8), trace);
                    }
                    let series = acc.correlations();
                    let base = (guess - lo) * samples;
                    slice[base..base + samples].copy_from_slice(&series);
                }
            });
        }
    });

    CpaResult {
        guesses,
        samples,
        corr,
        n,
    }
}

/// Evaluates a single key-less model against the traces, returning its
/// correlation series — the characterization primitive behind Table 2.
pub fn model_correlation(traces: &TraceSet, model: &dyn SelectionFunction) -> Vec<f64> {
    let mut acc = PearsonAccumulator::new(traces.samples_per_trace());
    for (input, trace) in traces.iter() {
        acc.add(model.predict(input, 0), trace);
    }
    acc.correlations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hw8, FnSelection};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A nonlinear 8-bit permutation (x ↦ x^3-like construction). An
    /// affine map would create perfectly anticorrelated "ghost" keys and
    /// make CPA ranks meaningless.
    fn sbox(x: u8) -> u8 {
        let y = u32::from(x).wrapping_add(113);
        let cube = y.wrapping_mul(y).wrapping_mul(y);
        (cube ^ (cube >> 8) ^ (cube >> 17)) as u8
    }

    /// Builds a synthetic campaign: power at sample 3 is HW(S(pt ^ key))
    /// plus noise, other samples are noise.
    fn synthetic_traces(key: u8, traces: usize, noise_sd: f64) -> TraceSet {
        let mut rng = StdRng::seed_from_u64(1);
        let mut set = TraceSet::new(8);
        for _ in 0..traces {
            let pt: u8 = rng.gen();
            let leak = f64::from(hw8(sbox(pt ^ key)));
            let mut trace = vec![0.0f32; 8];
            for (i, t) in trace.iter_mut().enumerate() {
                let noise: f64 = rng.gen_range(-noise_sd..noise_sd);
                *t = (noise + if i == 3 { leak } else { 0.0 }) as f32;
            }
            set.push(trace, vec![pt]);
        }
        set
    }

    fn sbox_model() -> FnSelection<impl Fn(&[u8], u8) -> f64 + Send + Sync> {
        FnSelection::new("hw(S(pt^k))", |input: &[u8], k: u8| {
            f64::from(hw8(sbox(input[0] ^ k)))
        })
    }

    #[test]
    fn recovers_key_from_clean_traces() {
        let set = synthetic_traces(0x3c, 300, 0.5);
        let result = cpa_attack(
            &set,
            &sbox_model(),
            &CpaConfig {
                guesses: 256,
                threads: 4,
            },
        );
        assert_eq!(result.best_guess(), 0x3c);
        assert_eq!(result.rank_of(0x3c), 0);
        let (sample, r) = result.peak(0x3c);
        assert_eq!(sample, 3, "leak localized at the right instant");
        assert!(r > 0.9, "peak correlation {r}");
        assert!(result.success_confidence(0x3c) > 0.99);
    }

    #[test]
    fn noisy_traces_need_more_data() {
        let few = synthetic_traces(0x77, 40, 8.0);
        let many = synthetic_traces(0x77, 2000, 8.0);
        let config = CpaConfig {
            guesses: 256,
            threads: 4,
        };
        let result_many = cpa_attack(&many, &sbox_model(), &config);
        assert_eq!(result_many.best_guess(), 0x77, "2000 noisy traces suffice");
        let rank_few = cpa_attack(&few, &sbox_model(), &config).rank_of(0x77);
        let rank_many = result_many.rank_of(0x77);
        assert!(rank_many <= rank_few, "more traces cannot hurt the rank");
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let set = synthetic_traces(0x11, 200, 1.0);
        let a = cpa_attack(
            &set,
            &sbox_model(),
            &CpaConfig {
                guesses: 256,
                threads: 1,
            },
        );
        let b = cpa_attack(
            &set,
            &sbox_model(),
            &CpaConfig {
                guesses: 256,
                threads: 7,
            },
        );
        for g in 0..256 {
            assert_eq!(a.series(g), b.series(g), "guess {g}");
        }
    }

    #[test]
    fn ranking_is_a_permutation() {
        let set = synthetic_traces(0x00, 100, 2.0);
        let result = cpa_attack(
            &set,
            &sbox_model(),
            &CpaConfig {
                guesses: 256,
                threads: 4,
            },
        );
        let mut ranking = result.ranking();
        ranking.sort_unstable();
        assert_eq!(ranking, (0..256).collect::<Vec<_>>());
    }

    fn predictions_for(model: &dyn crate::SelectionFunction, input: &[u8]) -> Vec<f64> {
        (0..256).map(|g| model.predict(input, g as u8)).collect()
    }

    #[test]
    fn streaming_single_shard_is_bit_identical_to_batch() {
        let set = synthetic_traces(0x3c, 120, 1.5);
        let model = sbox_model();
        let mut acc = CpaAccumulator::new(256, set.samples_per_trace());
        for (input, trace) in set.iter() {
            acc.absorb(&predictions_for(&model, input), trace);
        }
        let streamed = acc.finish();
        let batch = cpa_attack(
            &set,
            &model,
            &CpaConfig {
                guesses: 256,
                threads: 3,
            },
        );
        assert_eq!(streamed.traces_used(), batch.traces_used());
        for g in 0..256 {
            assert_eq!(streamed.series(g), batch.series(g), "guess {g}");
        }
    }

    #[test]
    fn batched_absorb_is_bit_identical_to_single_absorb() {
        let set = synthetic_traces(0x77, 50, 2.0);
        let model = sbox_model();
        let samples = set.samples_per_trace();
        let mut one_by_one = CpaAccumulator::new(256, samples);
        for (input, trace) in set.iter() {
            one_by_one.absorb(&predictions_for(&model, input), trace);
        }
        // Same traces in batches of 7 (last one ragged).
        let mut batched = CpaAccumulator::new(256, samples);
        let mut preds = Vec::new();
        let mut flat = Vec::new();
        for (i, (input, trace)) in set.iter().enumerate() {
            preds.extend(predictions_for(&model, input));
            flat.extend_from_slice(trace);
            if (i + 1) % 7 == 0 || i + 1 == set.len() {
                batched.absorb_batch(&preds, &flat);
                preds.clear();
                flat.clear();
            }
        }
        assert_eq!(one_by_one.len(), batched.len());
        let a = one_by_one.finish();
        let b = batched.finish();
        for g in 0..256 {
            assert_eq!(a.series(g), b.series(g), "guess {g}");
        }
    }

    #[test]
    fn merged_shards_match_batch_cpa() {
        let set = synthetic_traces(0x11, 90, 1.0);
        let model = sbox_model();
        let samples = set.samples_per_trace();
        let mut shards: Vec<CpaAccumulator> =
            (0..4).map(|_| CpaAccumulator::new(256, samples)).collect();
        for (i, (input, trace)) in set.iter().enumerate() {
            shards[i % 4].absorb(&predictions_for(&model, input), trace);
        }
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.merge(shard);
        }
        let streamed = merged.finish();
        let batch = cpa_attack(
            &set,
            &model,
            &CpaConfig {
                guesses: 256,
                threads: 2,
            },
        );
        assert_eq!(streamed.best_guess(), batch.best_guess());
        for g in 0..256 {
            for (r, b) in streamed.series(g).iter().zip(batch.series(g)) {
                assert!((r - b).abs() < 1e-12, "guess {g}: {r} vs {b}");
            }
        }
    }

    #[test]
    fn empty_accumulator_finishes_to_zeros() {
        let acc = CpaAccumulator::new(8, 3);
        assert!(acc.is_empty());
        let result = acc.finish();
        assert_eq!(result.guesses(), 8);
        assert_eq!(result.samples(), 3);
        assert!(result.series(0).iter().all(|&r| r == 0.0));
    }

    #[test]
    fn model_correlation_detects_input_leak() {
        let set = synthetic_traces(0x00, 400, 0.5);
        // With key 0, the leak is hw(sbox(pt)).
        let model =
            crate::InputModel::new("hw(S(pt))", |input: &[u8]| f64::from(hw8(sbox(input[0]))));
        let series = model_correlation(&set, &model);
        assert!(series[3] > 0.9, "corr at leak sample: {}", series[3]);
        assert!(series[0].abs() < 0.2, "corr elsewhere: {}", series[0]);
    }
}
