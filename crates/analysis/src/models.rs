//! Attack-side leakage models (selection functions).
//!
//! A CPA attack predicts, for every key guess, a leakage value from each
//! trace's public input. The paper uses two such models against AES:
//! the Hamming weight of a SubBytes output byte (Figure 3) and the
//! Hamming distance between two consecutively stored SubBytes output
//! bytes (Figure 4). Those concrete models live in `sca-aes`; this module
//! defines the trait plus generic combinators so the characterization
//! tooling can also express per-component models (`rB`, `rB ⊕ rD`, …).

use std::fmt;

/// Predicts a leakage value from a trace's input bytes under a key guess.
///
/// Implementations must be `Send + Sync`: attacks evaluate guesses on
/// worker threads.
pub trait SelectionFunction: Send + Sync {
    /// Hypothetical leakage for `input` under `guess`.
    fn predict(&self, input: &[u8], guess: u8) -> f64;

    /// Human-readable model name for reports.
    fn name(&self) -> String {
        "selection".to_owned()
    }
}

// A shared reference to a model is itself a model, so sharded campaigns
// can hand one selection function to many worker-local sinks.
impl<T: SelectionFunction + ?Sized> SelectionFunction for &T {
    fn predict(&self, input: &[u8], guess: u8) -> f64 {
        (**self).predict(input, guess)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// Hamming weight of a byte.
#[inline]
pub fn hw8(v: u8) -> u32 {
    v.count_ones()
}

/// Hamming weight of a 32-bit word.
#[inline]
pub fn hw32(v: u32) -> u32 {
    v.count_ones()
}

/// Hamming distance between two words.
#[inline]
pub fn hd32(a: u32, b: u32) -> u32 {
    (a ^ b).count_ones()
}

/// A selection function defined by a plain function pointer or closure:
/// `predict = f(input, guess)`.
pub struct FnSelection<F> {
    f: F,
    name: String,
}

impl<F> FnSelection<F>
where
    F: Fn(&[u8], u8) -> f64 + Send + Sync,
{
    /// Wraps a closure as a named selection function.
    pub fn new(name: impl Into<String>, f: F) -> FnSelection<F> {
        FnSelection {
            f,
            name: name.into(),
        }
    }
}

impl<F> SelectionFunction for FnSelection<F>
where
    F: Fn(&[u8], u8) -> f64 + Send + Sync,
{
    fn predict(&self, input: &[u8], guess: u8) -> f64 {
        (self.f)(input, guess)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl<F> fmt::Debug for FnSelection<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnSelection({})", self.name)
    }
}

/// Key-less "model evaluation" used by the leakage characterization: the
/// Table 2 expressions (`rB`, `rB ⊕ rD`, `rC ≪ n`, …) depend only on the
/// known random inputs, not on a secret. Wraps a `Fn(&[u8]) -> f64`.
pub struct InputModel<F> {
    f: F,
    name: String,
}

impl<F> InputModel<F>
where
    F: Fn(&[u8]) -> f64 + Send + Sync,
{
    /// Wraps a closure as a named input-only model.
    pub fn new(name: impl Into<String>, f: F) -> InputModel<F> {
        InputModel {
            f,
            name: name.into(),
        }
    }
}

impl<F> SelectionFunction for InputModel<F>
where
    F: Fn(&[u8]) -> f64 + Send + Sync,
{
    fn predict(&self, input: &[u8], _guess: u8) -> f64 {
        (self.f)(input)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl<F> fmt::Debug for InputModel<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InputModel({})", self.name)
    }
}

/// Reads the little-endian `u32` at byte offset `4 * word_index` of an
/// input. Characterization benchmarks serialize their random operands as
/// consecutive LE words.
///
/// # Panics
///
/// Panics if the input is too short.
pub fn input_word(input: &[u8], word_index: usize) -> u32 {
    let o = word_index * 4;
    u32::from_le_bytes([input[o], input[o + 1], input[o + 2], input[o + 3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_helpers() {
        assert_eq!(hw8(0xff), 8);
        assert_eq!(hw8(0x00), 0);
        assert_eq!(hw32(0xffff_ffff), 32);
        assert_eq!(hd32(0b1010, 0b0101), 4);
        assert_eq!(hd32(7, 7), 0);
    }

    #[test]
    fn fn_selection_applies_guess() {
        let sel = FnSelection::new("pt^k", |input: &[u8], k: u8| f64::from(hw8(input[0] ^ k)));
        assert_eq!(sel.predict(&[0x0f], 0xf0), 8.0);
        assert_eq!(sel.predict(&[0x0f], 0x0f), 0.0);
        assert_eq!(sel.name(), "pt^k");
    }

    #[test]
    fn input_model_ignores_guess() {
        let m = InputModel::new("hw(w0)", |input: &[u8]| {
            f64::from(hw32(input_word(input, 0)))
        });
        let bytes = 0xff00_00ffu32.to_le_bytes();
        assert_eq!(m.predict(&bytes, 0), 16.0);
        assert_eq!(m.predict(&bytes, 255), 16.0);
    }

    #[test]
    fn input_word_extracts_le() {
        let mut input = Vec::new();
        input.extend(0x1122_3344u32.to_le_bytes());
        input.extend(0xaabb_ccddu32.to_le_bytes());
        assert_eq!(input_word(&input, 0), 0x1122_3344);
        assert_eq!(input_word(&input, 1), 0xaabb_ccdd);
    }
}
