//! Signal-to-noise ratio of a labeled trace set.
//!
//! SNR = Var(signal) / E(noise variance), where the signal is the
//! class-conditional mean. Complements Pearson correlation for judging
//! how exploitable a leak is at each sample point.

use std::collections::BTreeMap;

use crate::TraceSet;

/// Per-sample SNR for traces labeled by `label(input)`.
///
/// Classes with a single trace contribute no noise estimate; if all
/// classes are singletons the SNR is reported as 0.
pub fn snr<L>(traces: &TraceSet, label: L) -> Vec<f64>
where
    L: Fn(&[u8]) -> u64,
{
    let width = traces.samples_per_trace();
    let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for i in 0..traces.len() {
        groups.entry(label(traces.input(i))).or_default().push(i);
    }

    // Per-class means.
    let mut class_means: Vec<Vec<f64>> = Vec::with_capacity(groups.len());
    let mut class_sizes: Vec<usize> = Vec::with_capacity(groups.len());
    for members in groups.values() {
        let mut mean = vec![0.0f64; width];
        for &i in members {
            for (m, &s) in mean.iter_mut().zip(traces.trace(i)) {
                *m += f64::from(s);
            }
        }
        for m in &mut mean {
            *m /= members.len() as f64;
        }
        class_means.push(mean);
        class_sizes.push(members.len());
    }

    // Signal variance: variance of class means (weighted by class size).
    let total: usize = class_sizes.iter().sum();
    let mut grand = vec![0.0f64; width];
    for (mean, &size) in class_means.iter().zip(&class_sizes) {
        for (g, m) in grand.iter_mut().zip(mean) {
            *g += m * size as f64;
        }
    }
    for g in &mut grand {
        *g /= total as f64;
    }
    let mut signal_var = vec![0.0f64; width];
    for (mean, &size) in class_means.iter().zip(&class_sizes) {
        for ((sv, m), g) in signal_var.iter_mut().zip(mean).zip(&grand) {
            let d = m - g;
            *sv += d * d * size as f64;
        }
    }
    for sv in &mut signal_var {
        *sv /= total as f64;
    }

    // Noise: within-class variance, averaged.
    let mut noise_var = vec![0.0f64; width];
    let mut noise_obs = 0usize;
    for (members, mean) in groups.values().zip(&class_means) {
        if members.len() < 2 {
            continue;
        }
        for &i in members {
            for ((nv, &s), m) in noise_var.iter_mut().zip(traces.trace(i)).zip(mean) {
                let d = f64::from(s) - m;
                *nv += d * d;
            }
        }
        noise_obs += members.len();
    }
    if noise_obs == 0 {
        return vec![0.0; width];
    }
    for nv in &mut noise_var {
        *nv /= noise_obs as f64;
    }

    signal_var
        .iter()
        .zip(&noise_var)
        .map(|(&s, &n)| if n <= 0.0 { 0.0 } else { s / n })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn snr_peaks_where_signal_lives() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut set = TraceSet::new(3);
        for _ in 0..600 {
            let class: u8 = rng.gen_range(0..4);
            let mut t = vec![0.0f32; 3];
            for (i, v) in t.iter_mut().enumerate() {
                *v =
                    rng.gen_range(-0.5f32..0.5) + if i == 1 { f32::from(class) * 2.0 } else { 0.0 };
            }
            set.push(t, vec![class]);
        }
        let series = snr(&set, |input| u64::from(input[0]));
        assert!(series[1] > 10.0, "SNR at signal: {}", series[1]);
        assert!(series[0] < 0.5, "SNR at noise: {}", series[0]);
        assert!(series[2] < 0.5);
    }

    #[test]
    fn pure_noise_has_low_snr() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut set = TraceSet::new(2);
        for _ in 0..400 {
            let class: u8 = rng.gen_range(0..2);
            set.push(
                vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)],
                vec![class],
            );
        }
        let series = snr(&set, |input| u64::from(input[0]));
        assert!(series.iter().all(|&s| s < 0.2), "{series:?}");
    }

    #[test]
    fn singleton_classes_degrade_gracefully() {
        let mut set = TraceSet::new(1);
        set.push(vec![1.0], vec![0]);
        set.push(vec![2.0], vec![1]);
        assert_eq!(snr(&set, |input| u64::from(input[0])), vec![0.0]);
    }
}
