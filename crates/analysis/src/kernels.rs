//! Explicit-width vector kernels for the CPA hot loops.
//!
//! The streaming accumulator's per-batch work is three element-wise
//! loops (the `Σy/Σy²` sweep and, per guess × trace, the `Σx·y` row
//! update). With the `simd` feature (default on) those loops run in
//! fixed-width chunks — [`F64_LANES`] elements at a time with a scalar
//! tail — which is the shape LLVM reliably turns into packed vector
//! code on stable Rust, with no nightly intrinsics and no external
//! crates.
//!
//! ## The bit-identity argument
//!
//! Every kernel here is *element-wise*: output element `i` is computed
//! from exactly the same inputs, with exactly the same operations in
//! the same order, as the scalar reference. Chunking only changes how
//! the iteration space is traversed, never the per-element arithmetic
//! — there is no horizontal reduction and no re-association anywhere —
//! so IEEE-754 guarantees the results are bit-identical at every lane
//! count, including the scalar tail. `tests/simd_conformance.rs`
//! enforces this differentially against the `*_scalar` references
//! below, which are compiled (and exercised) under both feature
//! settings.

/// Lane width of the `f64` kernels (AVX2-sized: 4 × 64-bit).
pub const F64_LANES: usize = 4;

/// Lane width of the `f32`-input kernels (8 × 32-bit loads widened to
/// two 4 × 64-bit vectors).
pub const F32_LANES: usize = 8;

/// Scalar reference: `sum_y[i] += trace[i]`, `sum_yy[i] += trace[i]²`
/// over `min(len)` elements, exactly one trace's second-moment sweep.
#[doc(hidden)]
pub fn moments_scalar(sum_y: &mut [f64], sum_yy: &mut [f64], trace: &[f32]) {
    for ((sy, syy), &y) in sum_y.iter_mut().zip(sum_yy.iter_mut()).zip(trace) {
        let y = f64::from(y);
        *sy += y;
        *syy += y * y;
    }
}

/// Scalar reference: `row[i] += x * trace[i]` — one guess × trace
/// update of the `Σx·y` matrix.
#[doc(hidden)]
pub fn axpy_scalar(row: &mut [f64], x: f64, trace: &[f32]) {
    for (r, &y) in row.iter_mut().zip(trace) {
        *r += x * f64::from(y);
    }
}

/// `Σy`/`Σy²` sweep, vectorized in [`F32_LANES`]-wide chunks.
#[cfg(feature = "simd")]
pub fn moments(sum_y: &mut [f64], sum_yy: &mut [f64], trace: &[f32]) {
    let n = sum_y.len().min(sum_yy.len()).min(trace.len());
    let (sy, syy, tr) = (&mut sum_y[..n], &mut sum_yy[..n], &trace[..n]);
    let mut sy_c = sy.chunks_exact_mut(F32_LANES);
    let mut syy_c = syy.chunks_exact_mut(F32_LANES);
    let mut tr_c = tr.chunks_exact(F32_LANES);
    for ((sy, syy), tr) in (&mut sy_c).zip(&mut syy_c).zip(&mut tr_c) {
        for i in 0..F32_LANES {
            let y = f64::from(tr[i]);
            sy[i] += y;
            syy[i] += y * y;
        }
    }
    moments_scalar(
        sy_c.into_remainder(),
        syy_c.into_remainder(),
        tr_c.remainder(),
    );
}

/// `Σy`/`Σy²` sweep (scalar build).
#[cfg(not(feature = "simd"))]
pub fn moments(sum_y: &mut [f64], sum_yy: &mut [f64], trace: &[f32]) {
    moments_scalar(sum_y, sum_yy, trace);
}

/// `row[i] += x * trace[i]`, vectorized in [`F64_LANES`]-wide chunks.
#[cfg(feature = "simd")]
pub fn axpy(row: &mut [f64], x: f64, trace: &[f32]) {
    let n = row.len().min(trace.len());
    let (row, tr) = (&mut row[..n], &trace[..n]);
    let mut row_c = row.chunks_exact_mut(F64_LANES);
    let mut tr_c = tr.chunks_exact(F64_LANES);
    for (r, t) in (&mut row_c).zip(&mut tr_c) {
        for i in 0..F64_LANES {
            r[i] += x * f64::from(t[i]);
        }
    }
    axpy_scalar(row_c.into_remainder(), x, tr_c.remainder());
}

/// `row[i] += x * trace[i]` (scalar build).
#[cfg(not(feature = "simd"))]
pub fn axpy(row: &mut [f64], x: f64, trace: &[f32]) {
    axpy_scalar(row, x, trace);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_matches_scalar_including_tails() {
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100] {
            let trace: Vec<f32> = (0..len).map(|i| (i as f32).sin() * 3.7).collect();
            let mut sy_a = vec![0.25f64; len];
            let mut syy_a = vec![0.5f64; len];
            let mut sy_b = sy_a.clone();
            let mut syy_b = syy_a.clone();
            moments(&mut sy_a, &mut syy_a, &trace);
            moments_scalar(&mut sy_b, &mut syy_b, &trace);
            assert_eq!(sy_a, sy_b, "len {len}");
            assert_eq!(syy_a, syy_b, "len {len}");
        }
    }

    #[test]
    fn axpy_matches_scalar_including_tails() {
        for len in [0usize, 1, 2, 3, 4, 5, 11, 12, 13, 40, 97] {
            let trace: Vec<f32> = (0..len).map(|i| (i as f32).cos() * 1.9).collect();
            let mut a = vec![0.125f64; len];
            let mut b = a.clone();
            axpy(&mut a, 2.625, &trace);
            axpy_scalar(&mut b, 2.625, &trace);
            assert_eq!(a, b, "len {len}");
        }
    }
}
