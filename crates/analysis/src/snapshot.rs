//! Exact binary snapshots of streaming accumulator state.
//!
//! Checkpointable campaigns serialize their sinks' accumulators and
//! later restore them to the *bit-identical* floating-point state — a
//! resumed campaign must produce the same verdict bytes as one that
//! never stopped, so values round-trip through [`f64::to_bits`], never
//! through decimal formatting. The vendored `serde` is marker-only (see
//! `vendor/serde`), so the format here is self-contained little-endian,
//! each accumulator framed by a 4-byte tag.

use std::fmt;

/// Why restoring a snapshot failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateError {
    /// What went wrong, human-readable.
    pub what: String,
}

impl StateError {
    pub(crate) fn new(what: impl Into<String>) -> StateError {
        StateError { what: what.into() }
    }
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "accumulator state error: {}", self.what)
    }
}

impl std::error::Error for StateError {}

/// Little-endian writer for accumulator snapshots. Appends to a caller
/// buffer so several accumulators can share one checkpoint record.
#[derive(Debug)]
pub struct StateWriter<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> StateWriter<'a> {
    /// Wraps a buffer to append snapshot fields to.
    pub fn new(out: &'a mut Vec<u8>) -> StateWriter<'a> {
        StateWriter { out }
    }

    /// Writes a 4-byte frame tag.
    pub fn tag(&mut self, tag: &[u8; 4]) {
        self.out.extend_from_slice(tag);
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a slice of `f64`s (bit patterns, no length prefix — the
    /// reader knows the geometry).
    pub fn f64_slice(&mut self, vs: &[f64]) {
        for &v in vs {
            self.f64(v);
        }
    }
}

/// Little-endian reader over a snapshot, tracking its position so
/// composed states parse in sequence.
#[derive(Debug)]
pub struct StateReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a snapshot buffer.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> StateReader<'a> {
        StateReader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| StateError::new("truncated snapshot"))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// Consumes and checks a 4-byte frame tag.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a different tag (snapshot/sink mismatch).
    pub fn expect_tag(&mut self, tag: &[u8; 4]) -> Result<(), StateError> {
        let found = self.take(4)?;
        if found != tag {
            return Err(StateError::new(format!(
                "expected frame {:?}, found {:?}",
                String::from_utf8_lossy(tag),
                String::from_utf8_lossy(found),
            )));
        }
        Ok(())
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads `len` `f64` bit patterns into `out` (which must already
    /// have length `len` — geometry comes from the accumulator).
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn f64_into(&mut self, out: &mut [f64]) -> Result<(), StateError> {
        for v in out.iter_mut() {
            *v = self.f64()?;
        }
        Ok(())
    }

    /// Asserts the whole snapshot was consumed.
    ///
    /// # Errors
    ///
    /// Fails when trailing bytes remain (composed-state misparse).
    pub fn finish(&self) -> Result<(), StateError> {
        if self.at != self.bytes.len() {
            return Err(StateError::new(format!(
                "{} trailing snapshot bytes",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_bit_patterns_round_trip() {
        let values = [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            1.0 / 3.0,
            -f64::INFINITY,
        ];
        let mut buf = Vec::new();
        let mut w = StateWriter::new(&mut buf);
        w.tag(b"TEST");
        w.u64(values.len() as u64);
        w.f64_slice(&values);
        let mut r = StateReader::new(&buf);
        r.expect_tag(b"TEST").unwrap();
        assert_eq!(r.u64().unwrap(), values.len() as u64);
        let mut back = vec![0.0f64; values.len()];
        r.f64_into(&mut back).unwrap();
        r.finish().unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wrong_tag_truncation_and_trailing_bytes_fail() {
        let mut buf = Vec::new();
        let mut w = StateWriter::new(&mut buf);
        w.tag(b"AAAA");
        w.u64(7);
        let mut r = StateReader::new(&buf);
        assert!(r.expect_tag(b"BBBB").is_err());
        let mut r = StateReader::new(&buf);
        r.expect_tag(b"AAAA").unwrap();
        assert!(r.finish().is_err(), "trailing bytes must be rejected");
        r.u64().unwrap();
        assert!(r.u64().is_err(), "truncation must be rejected");
        r.finish().unwrap();
    }
}
