//! Welch's t-test (TVLA-style leakage assessment).
//!
//! A complement to the paper's correlation-based detection: fixed-vs-
//! random trace populations are compared point-wise; |t| > 4.5 is the
//! conventional leakage-assessment threshold.

use crate::TraceSet;

/// Point-wise Welch t statistics between two trace populations.
///
/// Shorter of the two widths is used; populations need not be equal size.
///
/// # Panics
///
/// Panics if either set has fewer than two traces.
pub fn welch_t(a: &TraceSet, b: &TraceSet) -> Vec<f64> {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "need at least two traces per population"
    );
    let width = a.samples_per_trace().min(b.samples_per_trace());
    let stats = |set: &TraceSet| -> (Vec<f64>, Vec<f64>) {
        let n = set.len() as f64;
        let mut mean = vec![0.0f64; width];
        for i in 0..set.len() {
            for (m, &s) in mean.iter_mut().zip(set.trace(i)) {
                *m += f64::from(s);
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; width];
        for i in 0..set.len() {
            for ((v, &s), m) in var.iter_mut().zip(set.trace(i)).zip(&mean) {
                let d = f64::from(s) - m;
                *v += d * d;
            }
        }
        for v in &mut var {
            *v /= n - 1.0;
        }
        (mean, var)
    };
    let (mean_a, var_a) = stats(a);
    let (mean_b, var_b) = stats(b);
    let na = a.len() as f64;
    let nb = b.len() as f64;
    (0..width)
        .map(|i| {
            let se = (var_a[i] / na + var_b[i] / nb).sqrt();
            if se == 0.0 {
                0.0
            } else {
                (mean_a[i] - mean_b[i]) / se
            }
        })
        .collect()
}

/// The conventional TVLA detection threshold.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Whether any sample's |t| crosses the TVLA threshold.
pub fn leaks(a: &TraceSet, b: &TraceSet) -> bool {
    welch_t(a, b).iter().any(|t| t.abs() > TVLA_THRESHOLD)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn population(mean_at_2: f32, n: usize, seed: u64) -> TraceSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = TraceSet::new(4);
        for _ in 0..n {
            let mut t = vec![0.0f32; 4];
            for (i, v) in t.iter_mut().enumerate() {
                *v = rng.gen_range(-1.0f32..1.0) + if i == 2 { mean_at_2 } else { 0.0 };
            }
            set.push(t, vec![]);
        }
        set
    }

    #[test]
    fn detects_mean_difference() {
        let a = population(3.0, 200, 1);
        let b = population(0.0, 200, 2);
        let t = welch_t(&a, &b);
        assert!(t[2] > TVLA_THRESHOLD, "t at leaking sample: {}", t[2]);
        assert!(t[0].abs() < TVLA_THRESHOLD, "t elsewhere: {}", t[0]);
        assert!(leaks(&a, &b));
    }

    #[test]
    fn identical_populations_do_not_leak() {
        let a = population(0.0, 200, 3);
        let b = population(0.0, 200, 4);
        assert!(!leaks(&a, &b));
    }

    #[test]
    fn zero_variance_yields_zero_t() {
        let mut a = TraceSet::new(1);
        a.push(vec![1.0], vec![]);
        a.push(vec![1.0], vec![]);
        let mut b = TraceSet::new(1);
        b.push(vec![1.0], vec![]);
        b.push(vec![1.0], vec![]);
        assert_eq!(welch_t(&a, &b), vec![0.0]);
    }
}
