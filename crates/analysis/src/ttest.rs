//! Welch's t-test (TVLA-style leakage assessment).
//!
//! A complement to the paper's correlation-based detection: fixed-vs-
//! random trace populations are compared point-wise; |t| > 4.5 is the
//! conventional leakage-assessment threshold.

use crate::TraceSet;

/// Point-wise Welch t statistics between two trace populations.
///
/// Shorter of the two widths is used; populations need not be equal size.
///
/// # Panics
///
/// Panics if either set has fewer than two traces.
pub fn welch_t(a: &TraceSet, b: &TraceSet) -> Vec<f64> {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "need at least two traces per population"
    );
    let width = a.samples_per_trace().min(b.samples_per_trace());
    let stats = |set: &TraceSet| -> (Vec<f64>, Vec<f64>) {
        let n = set.len() as f64;
        let mut mean = vec![0.0f64; width];
        for i in 0..set.len() {
            for (m, &s) in mean.iter_mut().zip(set.trace(i)) {
                *m += f64::from(s);
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; width];
        for i in 0..set.len() {
            for ((v, &s), m) in var.iter_mut().zip(set.trace(i)).zip(&mean) {
                let d = f64::from(s) - m;
                *v += d * d;
            }
        }
        for v in &mut var {
            *v /= n - 1.0;
        }
        (mean, var)
    };
    let (mean_a, var_a) = stats(a);
    let (mean_b, var_b) = stats(b);
    let na = a.len() as f64;
    let nb = b.len() as f64;
    (0..width)
        .map(|i| {
            let se = (var_a[i] / na + var_b[i] / nb).sqrt();
            if se == 0.0 {
                0.0
            } else {
                (mean_a[i] - mean_b[i]) / se
            }
        })
        .collect()
}

/// The conventional TVLA detection threshold.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Whether any sample's |t| crosses the TVLA threshold.
pub fn leaks(a: &TraceSet, b: &TraceSet) -> bool {
    welch_t(a, b).iter().any(|t| t.abs() > TVLA_THRESHOLD)
}

/// Per-sample Welford state: running mean and centered second moment.
#[derive(Clone, Debug)]
struct Welford {
    n: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl Welford {
    fn new(width: usize) -> Welford {
        Welford {
            n: 0,
            mean: vec![0.0; width],
            m2: vec![0.0; width],
        }
    }

    fn add(&mut self, trace: &[f32]) {
        assert_eq!(trace.len(), self.mean.len(), "trace width mismatch");
        self.n += 1;
        let n = self.n as f64;
        for ((mean, m2), &y) in self.mean.iter_mut().zip(&mut self.m2).zip(trace) {
            let y = f64::from(y);
            let delta = y - *mean;
            *mean += delta / n;
            *m2 += delta * (y - *mean);
        }
    }

    /// Chan et al.'s parallel combination of two Welford states.
    fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        for i in 0..self.mean.len() {
            let delta = other.mean[i] - self.mean[i];
            self.mean[i] += delta * nb / n;
            self.m2[i] += other.m2[i] + delta * delta * na * nb / n;
        }
        self.n += other.n;
    }

    fn variance(&self, i: usize) -> f64 {
        self.m2[i] / (self.n as f64 - 1.0)
    }

    fn write_state(&self, out: &mut Vec<u8>) {
        let mut w = crate::StateWriter::new(out);
        w.u64(self.n);
        w.f64_slice(&self.mean);
        w.f64_slice(&self.m2);
    }

    fn load_state(&mut self, r: &mut crate::StateReader<'_>) -> Result<(), crate::StateError> {
        self.n = r.u64()?;
        r.f64_into(&mut self.mean)?;
        r.f64_into(&mut self.m2)?;
        Ok(())
    }
}

/// Streaming Welch t-test: one-pass Welford statistics over the fixed
/// and random populations, mergeable across campaign shards.
///
/// The batch [`welch_t`] needs both trace populations in memory; this
/// accumulator keeps only a running mean and centered second moment per
/// sample (`O(samples)` state), updated as traces arrive and combined
/// across worker shards with Chan's parallel-variance formula.
///
/// ```
/// use sca_analysis::{welch_t, TraceSet, TtestAccumulator};
///
/// let mut fixed = TraceSet::new(2);
/// let mut random = TraceSet::new(2);
/// let mut acc = TtestAccumulator::new(2);
/// for i in 0..12u32 {
///     let wobble = (i as f32 * 0.817).sin();
///     let fixed_trace = vec![1.0 + wobble, 5.0];
///     let random_trace = vec![1.0 - wobble, -1.0 + wobble];
///     acc.add_fixed(&fixed_trace);
///     acc.add_random(&random_trace);
///     fixed.push(fixed_trace, vec![]);
///     random.push(random_trace, vec![]);
/// }
/// for (streamed, batch) in acc.t_statistics().iter().zip(welch_t(&fixed, &random)) {
///     assert!((streamed - batch).abs() < 1e-9);
/// }
/// assert!(acc.leaks()); // sample 1 separates the populations
/// ```
#[derive(Clone, Debug)]
pub struct TtestAccumulator {
    fixed: Welford,
    random: Welford,
}

impl TtestAccumulator {
    /// Creates an accumulator for traces of `width` samples.
    pub fn new(width: usize) -> TtestAccumulator {
        TtestAccumulator {
            fixed: Welford::new(width),
            random: Welford::new(width),
        }
    }

    /// Absorbs one fixed-input trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace width disagrees with the accumulator.
    pub fn add_fixed(&mut self, trace: &[f32]) {
        self.fixed.add(trace);
    }

    /// Absorbs one random-input trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace width disagrees with the accumulator.
    pub fn add_random(&mut self, trace: &[f32]) {
        self.random.add(trace);
    }

    /// Traces absorbed as `(fixed, random)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.fixed.n, self.random.n)
    }

    /// Merges a shard that absorbed disjoint traces.
    pub fn merge(&mut self, other: &TtestAccumulator) {
        self.fixed.merge(&other.fixed);
        self.random.merge(&other.random);
    }

    /// Point-wise Welch t statistics (same convention as [`welch_t`]).
    ///
    /// # Panics
    ///
    /// Panics if either population holds fewer than two traces.
    pub fn t_statistics(&self) -> Vec<f64> {
        assert!(
            self.fixed.n >= 2 && self.random.n >= 2,
            "need at least two traces per population"
        );
        let na = self.fixed.n as f64;
        let nb = self.random.n as f64;
        (0..self.fixed.mean.len())
            .map(|i| {
                let se = (self.fixed.variance(i) / na + self.random.variance(i) / nb).sqrt();
                if se == 0.0 {
                    0.0
                } else {
                    (self.fixed.mean[i] - self.random.mean[i]) / se
                }
            })
            .collect()
    }

    /// Whether any sample's |t| crosses [`TVLA_THRESHOLD`].
    pub fn leaks(&self) -> bool {
        self.t_statistics().iter().any(|t| t.abs() > TVLA_THRESHOLD)
    }

    /// Appends this accumulator's exact state (bit patterns) to a
    /// checkpoint snapshot.
    pub fn write_state(&self, out: &mut Vec<u8>) {
        let mut w = crate::StateWriter::new(out);
        w.tag(b"TTST");
        w.u64(self.fixed.mean.len() as u64);
        self.fixed.write_state(out);
        self.random.write_state(out);
    }

    /// Restores state written by [`write_state`](Self::write_state) into
    /// an accumulator of the same width.
    ///
    /// # Errors
    ///
    /// Fails on truncation, a foreign frame tag, or a width mismatch.
    pub fn load_state(&mut self, r: &mut crate::StateReader<'_>) -> Result<(), crate::StateError> {
        r.expect_tag(b"TTST")?;
        let width = r.u64()?;
        if width != self.fixed.mean.len() as u64 {
            return Err(crate::StateError::new(format!(
                "t-test snapshot has width {width}, accumulator has {}",
                self.fixed.mean.len()
            )));
        }
        self.fixed.load_state(r)?;
        self.random.load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn population(mean_at_2: f32, n: usize, seed: u64) -> TraceSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = TraceSet::new(4);
        for _ in 0..n {
            let mut t = vec![0.0f32; 4];
            for (i, v) in t.iter_mut().enumerate() {
                *v = rng.gen_range(-1.0f32..1.0) + if i == 2 { mean_at_2 } else { 0.0 };
            }
            set.push(t, vec![]);
        }
        set
    }

    #[test]
    fn detects_mean_difference() {
        let a = population(3.0, 200, 1);
        let b = population(0.0, 200, 2);
        let t = welch_t(&a, &b);
        assert!(t[2] > TVLA_THRESHOLD, "t at leaking sample: {}", t[2]);
        assert!(t[0].abs() < TVLA_THRESHOLD, "t elsewhere: {}", t[0]);
        assert!(leaks(&a, &b));
    }

    #[test]
    fn identical_populations_do_not_leak() {
        let a = population(0.0, 200, 3);
        let b = population(0.0, 200, 4);
        assert!(!leaks(&a, &b));
    }

    #[test]
    fn streaming_ttest_matches_batch_and_merges() {
        let a = population(2.0, 150, 5);
        let b = population(0.0, 170, 6);
        let batch = welch_t(&a, &b);
        // Two shards, round-robin traces, then merged.
        let mut shard0 = TtestAccumulator::new(4);
        let mut shard1 = TtestAccumulator::new(4);
        for i in 0..a.len() {
            let shard = if i % 2 == 0 { &mut shard0 } else { &mut shard1 };
            shard.add_fixed(a.trace(i));
        }
        for i in 0..b.len() {
            let shard = if i % 3 == 0 { &mut shard0 } else { &mut shard1 };
            shard.add_random(b.trace(i));
        }
        shard0.merge(&shard1);
        assert_eq!(shard0.counts(), (150, 170));
        let streamed = shard0.t_statistics();
        for (s, w) in streamed.iter().zip(&batch) {
            assert!((s - w).abs() < 1e-9, "{s} vs {w}");
        }
        assert!(shard0.leaks());
    }

    #[test]
    #[should_panic(expected = "two traces per population")]
    fn streaming_ttest_needs_two_traces() {
        let mut acc = TtestAccumulator::new(1);
        acc.add_fixed(&[1.0]);
        acc.add_random(&[1.0]);
        acc.add_random(&[2.0]);
        let _ = acc.t_statistics();
    }

    #[test]
    fn zero_variance_yields_zero_t() {
        let mut a = TraceSet::new(1);
        a.push(vec![1.0], vec![]);
        a.push(vec![1.0], vec![]);
        let mut b = TraceSet::new(1);
        b.push(vec![1.0], vec![]);
        b.push(vec![1.0], vec![]);
        assert_eq!(welch_t(&a, &b), vec![0.0]);
    }
}
