//! Pearson correlation, plain and streaming.
//!
//! Pearson's correlation coefficient between a predicted leakage and the
//! measured power is the paper's side-channel distinguisher (after
//! Bruneau et al., cited as [9] there).

/// Pearson correlation of two equal-length series.
///
/// Returns 0 when either series has zero variance (a flat prediction
/// cannot correlate with anything — and, for an attack, should not).
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((sca_analysis::pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series must have equal length");
    let n = x.len() as f64;
    if x.is_empty() {
        return 0.0;
    }
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mean_x;
        let dy = b - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Streaming correlation of one predictor against many sample points.
///
/// Accumulates raw moments so traces can be fed one at a time (or merged
/// across threads) without holding the whole matrix; correlations are
/// extracted at the end. This is the standard one-pass CPA layout.
#[derive(Clone, Debug)]
pub struct PearsonAccumulator {
    n: u64,
    sum_x: f64,
    sum_xx: f64,
    sum_y: Vec<f64>,
    sum_yy: Vec<f64>,
    sum_xy: Vec<f64>,
}

impl PearsonAccumulator {
    /// Creates an accumulator for `samples` trace points.
    pub fn new(samples: usize) -> PearsonAccumulator {
        PearsonAccumulator {
            n: 0,
            sum_x: 0.0,
            sum_xx: 0.0,
            sum_y: vec![0.0; samples],
            sum_yy: vec![0.0; samples],
            sum_xy: vec![0.0; samples],
        }
    }

    /// Number of observations added.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether any observation was added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds one observation: predictor value `x` and its trace.
    ///
    /// # Panics
    ///
    /// Panics if `trace` length differs from the accumulator width.
    pub fn add(&mut self, x: f64, trace: &[f32]) {
        assert_eq!(trace.len(), self.sum_y.len(), "trace width mismatch");
        self.n += 1;
        self.sum_x += x;
        self.sum_xx += x * x;
        for (i, &y) in trace.iter().enumerate() {
            let y = f64::from(y);
            self.sum_y[i] += y;
            self.sum_yy[i] += y * y;
            self.sum_xy[i] += x * y;
        }
    }

    /// Merges another accumulator (e.g. from a worker thread).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn merge(&mut self, other: &PearsonAccumulator) {
        assert_eq!(self.sum_y.len(), other.sum_y.len(), "width mismatch");
        self.n += other.n;
        self.sum_x += other.sum_x;
        self.sum_xx += other.sum_xx;
        for i in 0..self.sum_y.len() {
            self.sum_y[i] += other.sum_y[i];
            self.sum_yy[i] += other.sum_yy[i];
            self.sum_xy[i] += other.sum_xy[i];
        }
    }

    /// Appends this accumulator's exact state (bit patterns) to a
    /// checkpoint snapshot.
    pub fn write_state(&self, out: &mut Vec<u8>) {
        let mut w = crate::StateWriter::new(out);
        w.tag(b"PEAR");
        w.u64(self.sum_y.len() as u64);
        w.u64(self.n);
        w.f64(self.sum_x);
        w.f64(self.sum_xx);
        w.f64_slice(&self.sum_y);
        w.f64_slice(&self.sum_yy);
        w.f64_slice(&self.sum_xy);
    }

    /// Restores state written by [`write_state`](Self::write_state) into
    /// an accumulator of the same width.
    ///
    /// # Errors
    ///
    /// Fails on truncation, a foreign frame tag, or a width mismatch.
    pub fn load_state(&mut self, r: &mut crate::StateReader<'_>) -> Result<(), crate::StateError> {
        r.expect_tag(b"PEAR")?;
        let samples = r.u64()?;
        if samples != self.sum_y.len() as u64 {
            return Err(crate::StateError::new(format!(
                "Pearson snapshot has {samples} samples, accumulator has {}",
                self.sum_y.len()
            )));
        }
        self.n = r.u64()?;
        self.sum_x = r.f64()?;
        self.sum_xx = r.f64()?;
        r.f64_into(&mut self.sum_y)?;
        r.f64_into(&mut self.sum_yy)?;
        r.f64_into(&mut self.sum_xy)?;
        Ok(())
    }

    /// Correlation at every sample point.
    pub fn correlations(&self) -> Vec<f64> {
        let n = self.n as f64;
        if self.n < 2 {
            return vec![0.0; self.sum_y.len()];
        }
        let var_x = self.sum_xx - self.sum_x * self.sum_x / n;
        self.sum_y
            .iter()
            .zip(&self.sum_yy)
            .zip(&self.sum_xy)
            .map(|((&sy, &syy), &sxy)| {
                let var_y = syy - sy * sy / n;
                let cov = sxy - self.sum_x * sy / n;
                if var_x <= 0.0 || var_y <= 0.0 {
                    0.0
                } else {
                    cov / (var_x.sqrt() * var_y.sqrt())
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_inverse_correlation() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn uncorrelated_is_small() {
        // Deterministic pseudo-random-ish sequences.
        let x: Vec<f64> = (0..1000).map(|i| f64::from((i * 7919) % 101)).collect();
        let y: Vec<f64> = (0..1000).map(|i| f64::from((i * 104729) % 97)).collect();
        assert!(pearson(&x, &y).abs() < 0.1);
    }

    #[test]
    fn accumulator_matches_direct_computation() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0];
        let traces: Vec<Vec<f32>> = vec![
            vec![1.0, 9.0],
            vec![4.5, 2.0],
            vec![2.0, 7.0],
            vec![8.5, 1.0],
            vec![5.0, 4.0],
        ];
        let mut acc = PearsonAccumulator::new(2);
        for (x, t) in xs.iter().zip(&traces) {
            acc.add(*x, t);
        }
        let corr = acc.correlations();
        for s in 0..2 {
            let ys: Vec<f64> = traces.iter().map(|t| f64::from(t[s])).collect();
            let direct = pearson(&xs, &ys);
            assert!(
                (corr[s] - direct).abs() < 1e-12,
                "sample {s}: {} vs {direct}",
                corr[s]
            );
        }
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..20).map(|i| f64::from(i % 7)).collect();
        let traces: Vec<Vec<f32>> = (0..20)
            .map(|i| vec![(i as f32).sin(), (i as f32) * 0.5])
            .collect();
        let mut whole = PearsonAccumulator::new(2);
        let mut left = PearsonAccumulator::new(2);
        let mut right = PearsonAccumulator::new(2);
        for (i, (x, t)) in xs.iter().zip(&traces).enumerate() {
            whole.add(*x, t);
            if i < 10 {
                left.add(*x, t);
            } else {
                right.add(*x, t);
            }
        }
        left.merge(&right);
        let a = whole.correlations();
        let b = left.correlations();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn too_few_observations_yield_zero() {
        let mut acc = PearsonAccumulator::new(1);
        assert_eq!(acc.correlations(), vec![0.0]);
        acc.add(1.0, &[2.0]);
        assert_eq!(acc.correlations(), vec![0.0]);
    }
}
