//! Exact serialize/deserialize round-trips for every checkpointable
//! accumulator type.
//!
//! A checkpoint snapshot must restore the *bit-identical* accumulator:
//! a resumed campaign folds further traces into the restored state and
//! its verdict has to match an uninterrupted run byte for byte. These
//! tests pin that contract for `CpaAccumulator`, `PearsonAccumulator`
//! and `TtestAccumulator` (which previously had no round-trip coverage
//! at all), including the empty and single-trace edge cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sca_analysis::{CpaAccumulator, PearsonAccumulator, StateReader, TtestAccumulator};

fn trace(rng: &mut StdRng, samples: usize) -> Vec<f32> {
    (0..samples).map(|_| rng.gen_range(-4.0f32..4.0)).collect()
}

fn predictions(rng: &mut StdRng, guesses: usize) -> Vec<f64> {
    (0..guesses).map(|_| rng.gen_range(0.0f64..8.0)).collect()
}

/// Every f64 the two CPA accumulators would print must share bits; the
/// cheapest complete check is comparing the serialized states.
fn assert_cpa_identical(a: &CpaAccumulator, b: &CpaAccumulator) {
    let (mut sa, mut sb) = (Vec::new(), Vec::new());
    a.write_state(&mut sa);
    b.write_state(&mut sb);
    assert_eq!(sa, sb, "accumulator states must be bit-identical");
}

fn roundtrip_cpa(acc: &CpaAccumulator) -> CpaAccumulator {
    let mut state = Vec::new();
    acc.write_state(&mut state);
    let mut back = CpaAccumulator::new(acc.guesses(), acc.samples());
    let mut r = StateReader::new(&state);
    back.load_state(&mut r).expect("load");
    r.finish().expect("no trailing bytes");
    back
}

#[test]
fn cpa_round_trips_exactly_at_every_fill_level() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut acc = CpaAccumulator::new(16, 5);
    // Empty, single-trace, then a longer run — exact at each step.
    for step in 0..20 {
        let back = roundtrip_cpa(&acc);
        assert_eq!(back.len(), acc.len(), "step {step}");
        assert_cpa_identical(&acc, &back);
        // The restored accumulator keeps absorbing identically.
        let (p, t) = (predictions(&mut rng, 16), trace(&mut rng, 5));
        let mut cont_orig = acc.clone();
        let mut cont_back = back;
        cont_orig.absorb(&p, &t);
        cont_back.absorb(&p, &t);
        assert_cpa_identical(&cont_orig, &cont_back);
        acc.absorb(&p, &t);
    }
}

#[test]
fn cpa_restores_irrational_sums_bit_for_bit() {
    let mut acc = CpaAccumulator::new(4, 3);
    // Values with no short binary representation.
    acc.absorb(
        &[1.0 / 3.0, std::f64::consts::PI, -2.0 / 7.0, 1e-300],
        &[0.1, -0.3, 7e-30],
    );
    let back = roundtrip_cpa(&acc);
    for g in 0..4 {
        let (a, b) = (acc.finish(), back.finish());
        assert_eq!(a.series(g), b.series(g), "guess {g}");
    }
}

#[test]
fn cpa_rejects_geometry_mismatch_and_foreign_tags() {
    let acc = CpaAccumulator::new(8, 3);
    let mut state = Vec::new();
    acc.write_state(&mut state);
    let mut wrong = CpaAccumulator::new(8, 4);
    assert!(wrong.load_state(&mut StateReader::new(&state)).is_err());
    let mut pearson = PearsonAccumulator::new(3);
    let mut pearson_state = Vec::new();
    pearson.write_state(&mut pearson_state);
    let mut cpa = CpaAccumulator::new(8, 3);
    assert!(
        cpa.load_state(&mut StateReader::new(&pearson_state))
            .is_err(),
        "a Pearson snapshot must not restore into a CPA accumulator"
    );
    assert!(
        pearson.load_state(&mut StateReader::new(&state)).is_err(),
        "a CPA snapshot must not restore into a Pearson accumulator"
    );
}

#[test]
fn cpa_rejects_truncated_state() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut acc = CpaAccumulator::new(4, 3);
    acc.absorb(&predictions(&mut rng, 4), &trace(&mut rng, 3));
    let mut state = Vec::new();
    acc.write_state(&mut state);
    let mut back = CpaAccumulator::new(4, 3);
    assert!(back
        .load_state(&mut StateReader::new(&state[..state.len() - 1]))
        .is_err());
}

#[test]
fn pearson_round_trips_exactly_including_empty_and_single() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut acc = PearsonAccumulator::new(6);
    for step in 0..10 {
        let mut state = Vec::new();
        acc.write_state(&mut state);
        let mut back = PearsonAccumulator::new(6);
        let mut r = StateReader::new(&state);
        back.load_state(&mut r).expect("load");
        r.finish().expect("no trailing bytes");
        assert_eq!(back.len(), acc.len(), "step {step}");
        assert_eq!(back.correlations(), acc.correlations(), "step {step}");
        let mut restate = Vec::new();
        back.write_state(&mut restate);
        assert_eq!(restate, state, "step {step}");
        acc.add(rng.gen_range(0.0f64..8.0), &trace(&mut rng, 6));
    }
}

#[test]
fn ttest_round_trips_exactly_including_empty_and_single() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut acc = TtestAccumulator::new(5);
    // Checked at: empty, single fixed trace, balanced, lopsided.
    for step in 0..14 {
        let mut state = Vec::new();
        acc.write_state(&mut state);
        let mut back = TtestAccumulator::new(5);
        let mut r = StateReader::new(&state);
        back.load_state(&mut r).expect("load");
        r.finish().expect("no trailing bytes");
        assert_eq!(back.counts(), acc.counts(), "step {step}");
        let mut restate = Vec::new();
        back.write_state(&mut restate);
        assert_eq!(restate, state, "step {step} state must be bit-identical");
        if step % 3 == 0 {
            acc.add_fixed(&trace(&mut rng, 5));
        } else {
            acc.add_random(&trace(&mut rng, 5));
        }
    }
    // With enough traces, statistics of original and restored agree.
    let mut state = Vec::new();
    acc.write_state(&mut state);
    let mut back = TtestAccumulator::new(5);
    back.load_state(&mut StateReader::new(&state)).unwrap();
    assert_eq!(back.t_statistics(), acc.t_statistics());
    assert_eq!(back.leaks(), acc.leaks());
}

#[test]
fn ttest_rejects_width_mismatch() {
    let acc = TtestAccumulator::new(5);
    let mut state = Vec::new();
    acc.write_state(&mut state);
    let mut wrong = TtestAccumulator::new(4);
    assert!(wrong.load_state(&mut StateReader::new(&state)).is_err());
}

#[test]
fn restored_ttest_continues_identically() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut acc = TtestAccumulator::new(3);
    for _ in 0..5 {
        acc.add_fixed(&trace(&mut rng, 3));
        acc.add_random(&trace(&mut rng, 3));
    }
    let mut state = Vec::new();
    acc.write_state(&mut state);
    let mut back = TtestAccumulator::new(3);
    back.load_state(&mut StateReader::new(&state)).unwrap();
    for _ in 0..5 {
        let (f, r) = (trace(&mut rng, 3), trace(&mut rng, 3));
        acc.add_fixed(&f);
        acc.add_random(&r);
        back.add_fixed(&f);
        back.add_random(&r);
    }
    let (mut sa, mut sb) = (Vec::new(), Vec::new());
    acc.write_state(&mut sa);
    back.write_state(&mut sb);
    assert_eq!(sa, sb, "continued states must be bit-identical");
}

#[test]
fn composed_states_share_one_buffer() {
    // The campaign's checkpoint record concatenates several
    // accumulators; parsing must consume each frame exactly.
    let mut rng = StdRng::seed_from_u64(17);
    let mut cpa = CpaAccumulator::new(4, 3);
    let mut tt = TtestAccumulator::new(3);
    cpa.absorb(&predictions(&mut rng, 4), &trace(&mut rng, 3));
    tt.add_fixed(&trace(&mut rng, 3));
    let mut state = Vec::new();
    cpa.write_state(&mut state);
    tt.write_state(&mut state);
    let mut cpa_back = CpaAccumulator::new(4, 3);
    let mut tt_back = TtestAccumulator::new(3);
    let mut r = StateReader::new(&state);
    cpa_back.load_state(&mut r).unwrap();
    tt_back.load_state(&mut r).unwrap();
    r.finish().unwrap();
    assert_cpa_identical(&cpa, &cpa_back);
    assert_eq!(tt_back.counts(), tt.counts());
}
