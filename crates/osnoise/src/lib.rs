//! # sca-osnoise — realistic operating-system measurement environments
//!
//! Reproduces the Figure 4 conditions of the DAC 2018 paper: the AES
//! victim runs as an unpinned userspace process on a loaded Ubuntu while
//! Apache serves 1000 requests/s on the second core. Three effects are
//! modeled, each contributing to the ~5x drop in correlation amplitude
//! the paper reports:
//!
//! * [`WorkloadProfile`] — additive power from a co-resident workload,
//!   profiled by actually running an Apache-like request loop on its own
//!   simulated core;
//! * [`PreemptionModel`] — scheduler time slices replacing segments of
//!   the capture with foreign activity;
//! * [`TraceJitter`] — per-execution trigger/clock misalignment;
//! * [`LinuxEnvironment`] — the composition, pluggable into
//!   `sca_power::TraceSynthesizer::acquire_with`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod scheduler;
mod system;
mod workload;

pub use scheduler::{PreemptionModel, TraceJitter};
pub use system::LinuxEnvironment;
pub use workload::WorkloadProfile;
