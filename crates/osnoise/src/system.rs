//! The composite Linux environment model.
//!
//! Combines the three effects that separate the paper's Figure 4 from its
//! Figure 3: additive second-core workload power (Apache under HTTPerf at
//! 1000 requests/s), occasional preemption of the victim process, and
//! per-execution trigger jitter. Plugs into
//! `sca_power::TraceSynthesizer::acquire_with` as the post-processing
//! hook.

use rand::rngs::StdRng;

use sca_power::SamplingConfig;
use sca_uarch::UarchError;

use crate::{PreemptionModel, TraceJitter, WorkloadProfile};

/// A full operating-system noise environment.
#[derive(Clone, Debug)]
pub struct LinuxEnvironment {
    /// Second-core workload mixed into every execution.
    pub workload: Option<WorkloadProfile>,
    /// Scheduler preemption model.
    pub preemption: PreemptionModel,
    /// Trigger/clock jitter.
    pub jitter: TraceJitter,
}

impl LinuxEnvironment {
    /// No OS at all — bare metal, as in Sections 3–4 of the paper.
    pub fn bare_metal() -> LinuxEnvironment {
        LinuxEnvironment {
            workload: None,
            preemption: PreemptionModel::none(),
            jitter: TraceJitter::none(),
        }
    }

    /// An idle Ubuntu: background GUI activity, light preemption.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults while profiling the workload.
    pub fn idle_linux(sampling: &SamplingConfig) -> Result<LinuxEnvironment, UarchError> {
        Ok(LinuxEnvironment {
            workload: Some(WorkloadProfile::idle_like(sampling)?.with_gain(0.5)),
            preemption: PreemptionModel {
                probability: 0.02,
                min_slice: 20,
                max_slice: 100,
                foreign_power: 15.0,
            },
            jitter: TraceJitter { max_shift: 1 },
        })
    }

    /// The paper's Figure 4 environment: Apache serving 1000 requests/s
    /// with both cores at full load, GUI running, no affinity/priority for
    /// the victim.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults while profiling the workload.
    pub fn loaded_apache(sampling: &SamplingConfig) -> Result<LinuxEnvironment, UarchError> {
        Ok(LinuxEnvironment {
            // Both cores at full load: the second core's switching power
            // rides the shared rail at full amplitude.
            workload: Some(WorkloadProfile::apache_like(sampling)?.with_gain(2.0)),
            preemption: PreemptionModel::loaded(),
            jitter: TraceJitter { max_shift: 2 },
        })
    }

    /// Applies the environment to one execution's samples — pass this to
    /// `TraceSynthesizer::acquire_with` as the `post` hook:
    ///
    /// ```no_run
    /// # use sca_power::{AcquisitionConfig, LeakageWeights, SamplingConfig, TraceSynthesizer};
    /// # use sca_osnoise::LinuxEnvironment;
    /// # fn demo(synth: &TraceSynthesizer, cpu: &sca_uarch::Cpu) -> Result<(), Box<dyn std::error::Error>> {
    /// let env = LinuxEnvironment::loaded_apache(&SamplingConfig::default())?;
    /// let traces = synth.acquire_with(
    ///     cpu,
    ///     0,
    ///     |rng, _| { use rand::Rng; vec![rng.gen::<u8>(); 16] },
    ///     |cpu, input| { /* stage input */ },
    ///     |rng, samples| env.apply(rng, samples),
    /// )?;
    /// # Ok(()) }
    /// ```
    pub fn apply(&self, rng: &mut StdRng, samples: &mut Vec<f64>) {
        if let Some(workload) = &self.workload {
            workload.add_window(rng, samples);
        }
        self.preemption.apply(rng, samples);
        self.jitter.apply(rng, samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bare_metal_is_identity() {
        let env = LinuxEnvironment::bare_metal();
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples = vec![1.0, 2.0, 3.0];
        env.apply(&mut rng, &mut samples);
        assert_eq!(samples, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn loaded_environment_raises_power_and_variance() {
        let sampling = SamplingConfig::per_cycle();
        let env = LinuxEnvironment::loaded_apache(&sampling).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut mean_delta = 0.0;
        const RUNS: usize = 50;
        for _ in 0..RUNS {
            let mut samples = vec![0.0; 200];
            env.apply(&mut rng, &mut samples);
            mean_delta += samples.iter().sum::<f64>() / samples.len() as f64;
        }
        mean_delta /= RUNS as f64;
        assert!(mean_delta > 1.0, "added mean power {mean_delta}");
    }

    #[test]
    fn idle_is_quieter_than_loaded() {
        let sampling = SamplingConfig::per_cycle();
        let idle = LinuxEnvironment::idle_linux(&sampling).unwrap();
        let loaded = LinuxEnvironment::loaded_apache(&sampling).unwrap();
        let mean_added = |env: &LinuxEnvironment, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut total = 0.0;
            for _ in 0..30 {
                let mut samples = vec![0.0; 300];
                env.apply(&mut rng, &mut samples);
                total += samples.iter().sum::<f64>();
            }
            total
        };
        assert!(mean_added(&idle, 3) < mean_added(&loaded, 3));
    }

    #[test]
    fn environment_is_deterministic_per_seed() {
        let sampling = SamplingConfig::per_cycle();
        let env = LinuxEnvironment::loaded_apache(&sampling).unwrap();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut samples = vec![1.0; 64];
            env.apply(&mut rng, &mut samples);
            samples
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
