//! Co-resident workload power profiles.
//!
//! The Figure 4 environment runs Apache at 1000 requests/s on the second
//! Cortex-A7 core while the victim encrypts on the first. Both cores
//! share the power rail the probe measures, so the second core's
//! switching activity is additive noise from the attacker's viewpoint.
//!
//! Rather than co-simulating a second CPU inside every acquisition (which
//! would double the cost of every trace), a [`WorkloadProfile`] *runs the
//! workload once* on its own simulated core, records the resulting power
//! series, and then serves randomly-positioned windows of it per
//! execution. The spectrum and amplitude are those of real pipeline
//! activity; only the phase is randomized, which matches the asynchrony
//! between the cores.

use rand::rngs::StdRng;
use rand::Rng;

use sca_isa::assemble;
use sca_power::{LeakageWeights, PowerRecorder, SamplingConfig};
use sca_uarch::{Cpu, UarchConfig, UarchError};

/// A request-serving loop: reads a buffer, computes a rolling checksum,
/// writes a response — the memory/ALU mix of a small HTTP server hot
/// path.
const APACHE_LIKE_ASM: &str = "
        .equ REQBUF, 0x2000
        .equ RSPBUF, 0x2400

start:  mov   r10, #REQBUF
        mov   r11, #RSPBUF
        mov   r9, #64          ; requests to serve
serve:  mov   r0, #0           ; checksum
        mov   r1, #0           ; offset
        mov   r2, #32          ; words per request
copy:   ldr   r3, [r10, r1]
        add   r0, r0, r3
        eor   r0, r0, r0, lsl #3
        str   r3, [r11, r1]
        add   r1, r1, #4
        subs  r2, r2, #1
        bne   copy
        str   r0, [r11, #128]
        subs  r9, r9, #1
        bne   serve
        halt
";

/// An idle/GUI-ish background loop: sparse activity, mostly ALU.
const IDLE_LIKE_ASM: &str = "
start:  mov   r9, #200
tick:   mov   r0, r0
        nop
        nop
        nop
        add   r1, r1, #1
        nop
        nop
        subs  r9, r9, #1
        bne   tick
        halt
";

/// A recorded power profile of a co-resident workload.
#[derive(Clone, Debug)]
pub struct WorkloadProfile {
    samples: Vec<f64>,
    /// Scale factor applied when mixing into victim traces.
    gain: f64,
}

impl WorkloadProfile {
    /// Runs `source` (assembly) on a fresh simulated core and records its
    /// power at the given sampling rate.
    ///
    /// # Errors
    ///
    /// Propagates assembler or simulator failures.
    pub fn from_asm(
        source: &str,
        config: UarchConfig,
        sampling: &SamplingConfig,
    ) -> Result<WorkloadProfile, UarchError> {
        let program = assemble(source).map_err(|e| {
            // An invalid embedded workload is a packaging bug; surface it
            // as a bad-instruction style error with the line number lost.
            let _ = e;
            UarchError::BadInstruction {
                addr: 0,
                word: None,
            }
        })?;
        let mut cpu = Cpu::new(config);
        cpu.load(&program)?;
        // Seed the request buffer with non-trivial data so loads/stores
        // actually switch bits.
        for i in 0..128u32 {
            cpu.mem_mut()
                .write_u8(0x2000 + i, (i.wrapping_mul(37) ^ 0x5c) as u8)?;
        }
        let mut recorder = PowerRecorder::new(LeakageWeights::cortex_a7());
        cpu.run(&mut recorder)?;
        let samples = sampling.expand(recorder.cycle_power());
        Ok(WorkloadProfile { samples, gain: 1.0 })
    }

    /// The Apache-like request-serving profile.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures (none expected for the embedded
    /// source).
    pub fn apache_like(sampling: &SamplingConfig) -> Result<WorkloadProfile, UarchError> {
        WorkloadProfile::from_asm(APACHE_LIKE_ASM, UarchConfig::cortex_a7(), sampling)
    }

    /// The idle/GUI background profile.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures (none expected for the embedded
    /// source).
    pub fn idle_like(sampling: &SamplingConfig) -> Result<WorkloadProfile, UarchError> {
        WorkloadProfile::from_asm(IDLE_LIKE_ASM, UarchConfig::cortex_a7(), sampling)
    }

    /// Profile length in samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sets the mixing gain (relative activity level of the second core).
    #[must_use]
    pub fn with_gain(mut self, gain: f64) -> WorkloadProfile {
        self.gain = gain;
        self
    }

    /// Mean power of the profile (after gain).
    pub fn mean_power(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.gain * self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Adds a randomly-phased window of the profile onto `out`.
    pub fn add_window(&self, rng: &mut StdRng, out: &mut [f64]) {
        if self.samples.is_empty() {
            return;
        }
        let start: usize = rng.gen_range(0..self.samples.len());
        for (i, o) in out.iter_mut().enumerate() {
            *o += self.gain * self.samples[(start + i) % self.samples.len()];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn apache_profile_has_activity() {
        let profile = WorkloadProfile::apache_like(&SamplingConfig::per_cycle()).unwrap();
        assert!(profile.len() > 1000, "profile length {}", profile.len());
        assert!(
            profile.mean_power() > 1.0,
            "mean power {}",
            profile.mean_power()
        );
    }

    #[test]
    fn idle_profile_is_quieter_than_apache() {
        let sampling = SamplingConfig::per_cycle();
        let apache = WorkloadProfile::apache_like(&sampling).unwrap();
        let idle = WorkloadProfile::idle_like(&sampling).unwrap();
        assert!(
            idle.mean_power() < apache.mean_power(),
            "idle {} vs apache {}",
            idle.mean_power(),
            apache.mean_power()
        );
    }

    #[test]
    fn windows_wrap_and_accumulate() {
        let profile = WorkloadProfile {
            samples: vec![1.0, 2.0, 3.0],
            gain: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = vec![0.0; 7];
        profile.add_window(&mut rng, &mut out);
        // Every value must be one of the gained profile values.
        for &v in &out {
            assert!([2.0, 4.0, 6.0].contains(&v), "{v}");
        }
    }

    #[test]
    fn gain_scales_mean() {
        let sampling = SamplingConfig::per_cycle();
        let profile = WorkloadProfile::idle_like(&sampling).unwrap();
        let doubled = profile.clone().with_gain(2.0);
        assert!((doubled.mean_power() - 2.0 * profile.mean_power()).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_harmless() {
        let profile = WorkloadProfile {
            samples: vec![],
            gain: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = vec![1.0; 3];
        profile.add_window(&mut rng, &mut out);
        assert_eq!(out, vec![1.0; 3]);
    }
}
