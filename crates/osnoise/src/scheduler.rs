//! Preemptive-scheduler effects on captured traces.
//!
//! The Figure 4 victim runs as an ordinary userspace process: no CPU
//! affinity, no elevated priority. When the scheduler preempts it
//! mid-encryption, the oscilloscope (triggered on the GPIO) keeps
//! recording — but what it records during the time slice belongs to
//! whatever ran instead. From the fixed-length trace's viewpoint the
//! effect is an inserted foreign segment that pushes the victim's
//! remaining activity later (truncated at the end of the capture).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Preemption model: per-execution probability and slice geometry.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct PreemptionModel {
    /// Probability that a given execution is preempted at least once.
    pub probability: f64,
    /// Smallest inserted slice, in samples.
    pub min_slice: usize,
    /// Largest inserted slice, in samples.
    pub max_slice: usize,
    /// Power level recorded while the foreign task runs (the attacker
    /// sees some other process's activity).
    pub foreign_power: f64,
}

impl PreemptionModel {
    /// No preemption (bare metal / pinned high-priority victim).
    pub fn none() -> PreemptionModel {
        PreemptionModel {
            probability: 0.0,
            min_slice: 0,
            max_slice: 0,
            foreign_power: 0.0,
        }
    }

    /// A loaded interactive system: occasional preemption with slices
    /// much longer than one AES encryption is wide.
    pub fn loaded() -> PreemptionModel {
        PreemptionModel {
            probability: 0.08,
            min_slice: 50,
            max_slice: 400,
            foreign_power: 30.0,
        }
    }

    /// Applies the model to one execution's samples.
    pub fn apply(&self, rng: &mut StdRng, samples: &mut Vec<f64>) {
        if self.probability <= 0.0 || samples.is_empty() {
            return;
        }
        if rng.gen::<f64>() >= self.probability {
            return;
        }
        let len = samples.len();
        let slice = if self.max_slice > self.min_slice {
            rng.gen_range(self.min_slice..=self.max_slice)
        } else {
            self.min_slice
        };
        if slice == 0 {
            return;
        }
        let at = rng.gen_range(0..len);
        // Insert the foreign segment, shift the tail, keep the length.
        let mut shifted: Vec<f64> = Vec::with_capacity(len);
        shifted.extend_from_slice(&samples[..at]);
        shifted.extend(std::iter::repeat_n(self.foreign_power, slice.min(len - at)));
        let remaining = len - shifted.len();
        shifted.extend_from_slice(&samples[at..at + remaining]);
        *samples = shifted;
    }
}

/// Per-execution trigger/clock jitter: the capture window shifts by a few
/// samples between executions (interrupt latency on the GPIO toggle, PLL
/// wander), smearing sharp leakage peaks.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct TraceJitter {
    /// Maximum shift magnitude in samples (uniform in `-max..=max`).
    pub max_shift: usize,
}

impl TraceJitter {
    /// No jitter.
    pub fn none() -> TraceJitter {
        TraceJitter { max_shift: 0 }
    }

    /// Applies a random shift, zero-filling the vacated samples.
    pub fn apply(&self, rng: &mut StdRng, samples: &mut [f64]) {
        if self.max_shift == 0 || samples.is_empty() {
            return;
        }
        let shift = rng.gen_range(-(self.max_shift as isize)..=self.max_shift as isize);
        let n = samples.len();
        match shift.cmp(&0) {
            std::cmp::Ordering::Equal => {}
            std::cmp::Ordering::Greater => {
                let s = (shift as usize).min(n);
                samples.rotate_right(s);
                for v in samples.iter_mut().take(s) {
                    *v = 0.0;
                }
            }
            std::cmp::Ordering::Less => {
                let s = ((-shift) as usize).min(n);
                samples.rotate_left(s);
                for v in samples.iter_mut().skip(n - s) {
                    *v = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn no_preemption_is_identity() {
        let model = PreemptionModel::none();
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples = vec![1.0, 2.0, 3.0];
        model.apply(&mut rng, &mut samples);
        assert_eq!(samples, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn preemption_preserves_length_and_inserts_foreign_power() {
        let model = PreemptionModel {
            probability: 1.0,
            min_slice: 2,
            max_slice: 2,
            foreign_power: 99.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..10).map(f64::from).collect();
        model.apply(&mut rng, &mut samples);
        assert_eq!(samples.len(), 10);
        assert!(samples.iter().filter(|&&s| s == 99.0).count() >= 1);
        // The prefix before the insertion is intact and ordered.
        let first_foreign = samples.iter().position(|&s| s == 99.0).unwrap();
        for i in 1..first_foreign {
            assert!(samples[i] > samples[i - 1]);
        }
    }

    #[test]
    fn preemption_probability_honored_statistically() {
        let model = PreemptionModel {
            probability: 0.3,
            min_slice: 1,
            max_slice: 1,
            foreign_power: -1.0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mut hit = 0;
        for _ in 0..2000 {
            let mut samples = vec![1.0; 4];
            model.apply(&mut rng, &mut samples);
            if samples.contains(&-1.0) {
                hit += 1;
            }
        }
        let rate = f64::from(hit) / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn jitter_shifts_but_preserves_length() {
        let jitter = TraceJitter { max_shift: 2 };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let mut samples: Vec<f64> = (1..=8).map(f64::from).collect();
            jitter.apply(&mut rng, &mut samples);
            assert_eq!(samples.len(), 8);
            // The surviving non-zero run must stay in order.
            let kept: Vec<f64> = samples.iter().copied().filter(|&v| v != 0.0).collect();
            for w in kept.windows(2) {
                assert!(w[1] > w[0], "{samples:?}");
            }
        }
    }

    #[test]
    fn zero_jitter_is_identity() {
        let jitter = TraceJitter::none();
        let mut rng = StdRng::seed_from_u64(6);
        let mut samples = vec![1.0, 2.0];
        jitter.apply(&mut rng, &mut samples);
        assert_eq!(samples, vec![1.0, 2.0]);
    }
}
