//! Property tests for the fair-share scheduler's two contracts:
//!
//! 1. **Fairness** — weighted deficit round-robin gives every backlogged
//!    tenant exactly its weight's worth of slices per round, so no
//!    tenant (and no job) can be starved by another tenant's backlog;
//! 2. **Determinism** — the emission order of
//!    [`FairScheduler::next_slice`] is a pure function of (arrival
//!    order, weights): replaying the same submissions against worker
//!    pools of any size, with slices completing in *any* order the pool
//!    allows, yields the identical emission sequence.
//!
//! The worker pool here is a model, not threads: proptest drives which
//! in-flight slice completes next, which explores exactly the
//! reorderings a real pool's timing could produce — and does it
//! deterministically, so a counterexample replays.

use std::collections::HashMap;

use proptest::prelude::*;
use sca_server::{FairScheduler, JobId, SchedConfig};

/// One scripted scheduler workload: per-tenant weights and a flat
/// arrival list of (tenant index, slices-to-completion).
#[derive(Clone, Debug)]
struct Script {
    weights: Vec<u32>,
    arrivals: Vec<(usize, u64)>,
}

fn arb_script() -> impl Strategy<Value = Script> {
    (
        proptest::collection::vec(1u32..5, 1..5),
        proptest::collection::vec((0usize..4, 1u64..6), 1..13),
    )
        .prop_map(|(weights, raw)| {
            let tenants = weights.len();
            Script {
                arrivals: raw.into_iter().map(|(t, s)| (t % tenants, s)).collect(),
                weights,
            }
        })
}

/// Builds a scheduler with the script's weights set up front and every
/// arrival submitted in order; returns the per-job slice budgets.
fn build(script: &Script) -> (FairScheduler, HashMap<JobId, u64>) {
    let mut sched = FairScheduler::new(SchedConfig {
        queue_limit: usize::MAX,
        default_weight: 1,
    });
    for (i, weight) in script.weights.iter().enumerate() {
        sched.set_weight(&format!("t{i}"), *weight);
    }
    let mut budgets = HashMap::new();
    for (tenant, slices) in &script.arrivals {
        let job = sched
            .submit(&format!("t{tenant}"))
            .expect("unbounded queue");
        budgets.insert(job, *slices);
    }
    (sched, budgets)
}

/// Single-file drain: one worker, each slice completes before the next
/// emission. This is the reference emission order.
fn drain_single(script: &Script) -> Vec<JobId> {
    let (mut sched, budgets) = build(script);
    let mut remaining = budgets;
    let mut order = Vec::new();
    while let Some(job) = sched.next_slice() {
        order.push(job);
        let left = remaining.get_mut(&job).expect("emitted job is live");
        *left -= 1;
        sched.complete(job, *left == 0);
    }
    assert_eq!(sched.live(), 0, "single-file drain left live jobs");
    order
}

/// Worker-pool drain: up to `workers` slices in flight, with `choices`
/// deciding which in-flight slice completes whenever the pool is full
/// or the scheduler imposes a head-of-line wait.
fn drain_pool(script: &Script, workers: usize, choices: &[usize]) -> Vec<JobId> {
    let (mut sched, budgets) = build(script);
    let mut remaining = budgets;
    let mut in_flight: Vec<JobId> = Vec::new();
    let mut order = Vec::new();
    let mut choices = choices.iter().copied().chain(std::iter::repeat(0));
    let cap: u64 = script.arrivals.iter().map(|(_, s)| s).sum::<u64>() * 4 + 16;
    for _ in 0..cap {
        if sched.live() == 0 {
            break;
        }
        if in_flight.len() < workers {
            if let Some(job) = sched.next_slice() {
                order.push(job);
                *remaining.get_mut(&job).expect("emitted job is live") -= 1;
                in_flight.push(job);
                continue;
            }
        }
        // Pool full, or a head-of-line wait: something must complete.
        assert!(
            !in_flight.is_empty(),
            "scheduler stalled with live jobs and an idle pool"
        );
        let pick = choices.next().expect("infinite chain") % in_flight.len();
        let job = in_flight.swap_remove(pick);
        sched.complete(job, remaining[&job] == 0);
    }
    assert_eq!(sched.live(), 0, "pool drain did not converge");
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Determinism: the emission order never depends on the worker count
    /// or on slice completion timing.
    #[test]
    fn emission_order_is_a_pure_function_of_arrivals_and_weights(
        script in arb_script(),
        workers in 2usize..=8,
        choices in proptest::collection::vec(0usize..8, 0..128),
    ) {
        let reference = drain_single(&script);
        let pooled = drain_pool(&script, workers, &choices);
        prop_assert_eq!(reference, pooled);
    }

    /// Liveness: a full drain serves every slice of every job — nothing
    /// is starved or dropped, whatever the weights.
    #[test]
    fn every_submitted_slice_is_eventually_emitted(script in arb_script()) {
        let order = drain_single(&script);
        let total: u64 = script.arrivals.iter().map(|(_, s)| s).sum();
        prop_assert_eq!(order.len() as u64, total);
        for id in 1..=script.arrivals.len() as u64 {
            prop_assert!(order.contains(&JobId(id)), "job {id} never ran");
        }
    }

    /// The deficit bound: while every tenant stays backlogged, each
    /// complete round of `sum(weights)` emissions gives tenant `i`
    /// exactly `weight[i]` slices — proportional service with zero
    /// long-run drift.
    #[test]
    fn backlogged_tenants_get_exactly_weighted_rounds(
        weights in proptest::collection::vec(1u32..5, 1..5),
        rounds in 1u64..=4,
    ) {
        let per_tenant: u64 = rounds * u64::from(*weights.iter().max().unwrap());
        let script = Script {
            weights: weights.clone(),
            // One deep job per tenant, deep enough to stay backlogged
            // for `rounds` full rounds.
            arrivals: (0..weights.len())
                .map(|t| (t, per_tenant * u64::from(weights[t])))
                .collect(),
        };
        let order = drain_single(&script);
        let round_len: usize = weights.iter().map(|&w| w as usize).sum();
        for round in 0..rounds as usize {
            let window = &order[round * round_len..(round + 1) * round_len];
            for (tenant, &weight) in weights.iter().enumerate() {
                let job = JobId(tenant as u64 + 1);
                let got = window.iter().filter(|&&j| j == job).count();
                prop_assert_eq!(
                    got, weight as usize,
                    "round {} gave tenant {} {} slices, weight {}",
                    round, tenant, got, weight
                );
            }
        }
    }

    /// No starvation, quantified: a one-slice probe submitted behind
    /// arbitrarily deep backlogs from every other tenant still runs
    /// within one full round — at most `sum(weights)` emissions after
    /// the drain starts, never proportional to the backlog depth.
    #[test]
    fn quick_probe_waits_at_most_one_round_behind_any_backlog(
        backlog_weights in proptest::collection::vec(1u32..5, 1..4),
        backlog_jobs in proptest::collection::vec(1usize..4, 1..4),
        depth in 20u64..=60,
    ) {
        let tenants = backlog_weights.len().min(backlog_jobs.len());
        let mut arrivals = Vec::new();
        for (t, &jobs) in backlog_jobs.iter().take(tenants).enumerate() {
            for _ in 0..jobs {
                arrivals.push((t, depth));
            }
        }
        // The probe tenant arrives last, weight 1, one slice.
        let mut weights = backlog_weights[..tenants].to_vec();
        weights.push(1);
        arrivals.push((tenants, 1));
        let script = Script { weights: weights.clone(), arrivals };
        let order = drain_single(&script);
        let probe = JobId(script.arrivals.len() as u64);
        let position = order.iter().position(|&j| j == probe).expect("probe ran");
        let round: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        prop_assert!(
            (position as u64) < round,
            "probe waited {} emissions; one round is {}",
            position,
            round
        );
    }
}
