//! Deterministic in-process test harness.
//!
//! Concurrency properties are locked down by tests, not by reading
//! logs: the harness runs a real [`CampaignServer`] with its dispatcher
//! paused, scripts client sessions against it (wire lines, exactly as
//! the socket front end would), then advances a [`VirtualClock`] tick
//! by resuming the workers and waiting for the queue to drain. Every
//! event each session observed is appended to its transcript as a
//! tick-stamped wire line, so a test asserts on byte-exact transcripts
//! — and because scheduler emission order, slice boundaries and
//! campaign seeds are all deterministic, those transcripts are
//! identical at any worker count.

use std::sync::mpsc::Receiver;

use crate::{
    format_event, parse_request, CampaignServer, Clock, Event, Request, ServerConfig, ServerError,
    ServerStats, VirtualClock,
};

/// Index of a scripted client session.
pub type SessionId = usize;

#[derive(Debug, Default)]
struct Session {
    name: String,
    streams: Vec<Receiver<Event>>,
    transcript: Vec<String>,
}

/// A paused [`CampaignServer`] plus scripted client sessions and a
/// virtual clock. See the module docs for the stepping model.
#[derive(Debug)]
pub struct ServerHarness {
    config: ServerConfig,
    server: Option<CampaignServer>,
    clock: VirtualClock,
    sessions: Vec<Session>,
}

impl ServerHarness {
    /// Starts a server (forced to `start_paused`) under the harness.
    #[must_use]
    pub fn new(mut config: ServerConfig) -> ServerHarness {
        config.start_paused = true;
        ServerHarness {
            server: Some(CampaignServer::start(config.clone())),
            config,
            clock: VirtualClock::new(),
            sessions: Vec::new(),
        }
    }

    fn server(&self) -> &CampaignServer {
        self.server.as_ref().expect("server is running")
    }

    /// Opens a scripted client session.
    pub fn client(&mut self, name: &str) -> SessionId {
        self.sessions.push(Session {
            name: name.to_owned(),
            ..Session::default()
        });
        self.sessions.len() - 1
    }

    /// Scripts one wire line from a session, exactly as the socket
    /// front end would handle it. Rejections are recorded in the
    /// session's transcript; acceptance events arrive with the next
    /// [`step`](ServerHarness::step).
    ///
    /// Only `submit` lines are meaningful to a harness session —
    /// `stats`/`shutdown` have dedicated methods.
    pub fn submit_line(&mut self, session: SessionId, line: &str) {
        let tick = self.clock.now_ticks();
        let outcome = match parse_request(line) {
            Ok(Request::Submit { spec, weight }) => {
                self.server().submit(&spec, weight).map(|r| r.1)
            }
            Ok(_) => Err(ServerError::Spec(
                "harness sessions only script submit lines".to_owned(),
            )),
            Err(e) => Err(e),
        };
        match outcome {
            Ok(stream) => self.sessions[session].streams.push(stream),
            Err(e) => self.sessions[session]
                .transcript
                .push(format!("t{tick} rejected {e}")),
        }
    }

    /// One deterministic tick: advance the virtual clock, let the
    /// workers drain every live job, pause again, and append everything
    /// each session observed to its transcript.
    pub fn step(&mut self) {
        let tick = self.clock.advance(1);
        let server = self.server();
        server.resume();
        server.wait_idle();
        server.pause();
        for session in &mut self.sessions {
            for stream in &session.streams {
                while let Ok(event) = stream.try_recv() {
                    session
                        .transcript
                        .push(format!("t{tick} {}", format_event(&event)));
                }
            }
        }
    }

    /// A session's transcript so far: tick-stamped wire lines, in
    /// observation order.
    #[must_use]
    pub fn transcript(&self, session: SessionId) -> &[String] {
        &self.sessions[session].transcript
    }

    /// The session's name (as given to [`client`](ServerHarness::client)).
    #[must_use]
    pub fn session_name(&self, session: SessionId) -> &str {
        &self.sessions[session].name
    }

    /// The bare final verdict lines a session has observed, in order —
    /// the strings to diff byte-for-byte against one-shot portfolio
    /// pins.
    #[must_use]
    pub fn final_verdicts(&self, session: SessionId) -> Vec<String> {
        self.sessions[session]
            .transcript
            .iter()
            .filter_map(|line| {
                let line = line.split_once(' ').map_or(line.as_str(), |(_, rest)| rest);
                crate::final_verdict(line).map(str::to_owned)
            })
            .collect()
    }

    /// Current service counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.server().stats()
    }

    /// Restarts the service against the same corpus root: drains and
    /// stops the current server, then starts a fresh paused one.
    /// Session transcripts survive; undrained event streams do not
    /// (their jobs finished during the drain).
    pub fn restart(&mut self) {
        let server = self.server.take().expect("server is running");
        server.shutdown();
        for session in &mut self.sessions {
            session.streams.clear();
        }
        self.server = Some(CampaignServer::start(self.config.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_sessions_observe_deterministic_lifecycles() {
        let dir = std::env::temp_dir().join(format!("sca-server-harness-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = ServerConfig::new(&dir);
        config.checkpoint_every = 8;
        config.slice_traces = 8;
        config.threads_per_slice = 2;
        let mut harness = ServerHarness::new(config);

        let ci = harness.client("ci");
        let dev = harness.client("dev");
        let spec = "submit tenant=ci target=aes128 analysis=hw traces=16 \
                    executions=1 seed=0xdac2018 noise-sd=2.0 noise-baseline=30.0";
        harness.submit_line(ci, spec);
        // Identical physical spec from another tenant: must coalesce.
        harness.submit_line(dev, &spec.replace("tenant=ci", "tenant=dev"));
        // A malformed line is rejected in place.
        harness.submit_line(dev, "submit tenant=dev target=aes128 analysis=hw");
        harness.step();

        assert_eq!(harness.session_name(ci), "ci");
        let ci_lines = harness.transcript(ci).join("\n");
        assert!(
            ci_lines.contains("accepted job=1 coalesced=false"),
            "{ci_lines}"
        );
        assert!(ci_lines.contains("final job=1"), "{ci_lines}");
        assert!(ci_lines.ends_with("done job=1"), "{ci_lines}");
        let dev_lines = harness.transcript(dev).join("\n");
        assert!(dev_lines.contains("rejected"), "{dev_lines}");
        assert!(
            dev_lines.contains("accepted job=1 coalesced=true"),
            "{dev_lines}"
        );

        // Both sessions saw the same single final verdict.
        assert_eq!(harness.final_verdicts(ci), harness.final_verdicts(dev));
        assert_eq!(harness.final_verdicts(ci).len(), 1);

        // The malformed line died at the wire parser: the server only
        // ever saw the two well-formed submissions.
        let stats = harness.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.completed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
