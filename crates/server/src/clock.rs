//! Time as the harness sees it.
//!
//! Scheduling and verdicts never read a clock — determinism comes from
//! the scheduler's emission order and the campaign seeds. The clock
//! exists for *observability*: the harness stamps each scripted step
//! with a tick so transcripts can assert ordering across sessions, and
//! the `serve` binary reports wall uptime. Keeping it behind a trait
//! means the in-process harness is deterministic by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic tick source.
pub trait Clock: Send + Sync {
    /// Ticks elapsed since the clock's origin.
    fn now_ticks(&self) -> u64;
}

/// A manually-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A clock at tick zero.
    #[must_use]
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advances by `ticks` and returns the new time.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.ticks.fetch_add(ticks, Ordering::SeqCst) + ticks
    }
}

impl Clock for VirtualClock {
    fn now_ticks(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }
}

/// Wall time in milliseconds since construction — what the `serve`
/// binary reports as uptime.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock originating now.
    #[must_use]
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ticks(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_deterministically() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ticks(), 0);
        assert_eq!(clock.advance(3), 3);
        assert_eq!(clock.advance(2), 5);
        assert_eq!(clock.now_ticks(), 5);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_ticks();
        let b = clock.now_ticks();
        assert!(b >= a);
    }
}
