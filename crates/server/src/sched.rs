//! Deterministic fair-share scheduling of job slices.
//!
//! [`FairScheduler`] is a pure state machine — no threads, no clocks —
//! that the server drives under its mutex. It implements weighted
//! deficit round-robin (DRR) over tenants with a cost of one per slice:
//! on each visit a tenant's deficit is recharged by its weight and it
//! may emit that many slices before the round moves on, so a tenant
//! with weight 3 gets three slices for every one a weight-1 tenant
//! gets, and a `--full` sweep can never starve a `--quick` probe — the
//! probe's tenant is visited every round no matter how deep the sweep's
//! backlog is.
//!
//! # Determinism contract
//!
//! The emission order of [`next_slice`](FairScheduler::next_slice) is a pure
//! function of (submission order, weights) — independent of how many
//! workers drain the queue or how long slices take. Two rules buy this:
//!
//! 1. **Rotation at emission.** When a job's slice is emitted the job
//!    is immediately rotated to its tenant's queue tail; completion
//!    ([`complete`](FairScheduler::complete)) only clears the in-flight
//!    flag (or removes the job when finished). Queue order therefore
//!    never depends on completion timing.
//! 2. **Head-of-line honesty.** `next` only ever emits the head of the
//!    DRR order. If that head still has a slice in flight, `next`
//!    returns `None` — it *waits* rather than skipping ahead, because
//!    whether the head will still exist after its slice resolves (last
//!    slice ⇒ removed) is exactly the information a skip would have to
//!    guess. Slices of one job are sequential anyway (each resumes the
//!    previous one's checkpoint), so the head-of-line wait costs
//!    parallelism only when fewer jobs than workers are live.
//!
//! The submission queue is bounded: past
//! [`queue_limit`](SchedConfig::queue_limit) live jobs, `submit`
//! rejects with [`ServerError::QueueFull`] — backpressure at the door,
//! as in simpledb's bounded queue-depth design, instead of an unbounded
//! backlog.

use std::collections::VecDeque;
use std::fmt;

use crate::ServerError;

/// Identity of one accepted job (one spec's campaign).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Scheduler knobs.
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Maximum live (accepted, unfinished) jobs before submissions are
    /// rejected.
    pub queue_limit: usize,
    /// Weight of a tenant that never asked for one.
    pub default_weight: u32,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            queue_limit: 64,
            default_weight: 1,
        }
    }
}

#[derive(Debug)]
struct Tenant {
    name: String,
    weight: u32,
    /// Slices this tenant may still emit in the current round visit.
    burst: u32,
    /// Live jobs, head = next to emit. In-flight jobs stay queued
    /// (rotated to the tail at emission) until they finish.
    queue: VecDeque<JobId>,
}

#[derive(Debug)]
struct JobState {
    tenant: usize,
    in_flight: bool,
}

/// Weighted deficit round-robin over tenants; see the module docs for
/// the fairness and determinism contracts.
#[derive(Debug)]
pub struct FairScheduler {
    config: SchedConfig,
    tenants: Vec<Tenant>,
    /// Index of the tenant the DRR round is currently visiting.
    cursor: usize,
    jobs: std::collections::HashMap<JobId, JobState>,
    next_id: u64,
    emitted: u64,
}

impl FairScheduler {
    /// An empty scheduler.
    #[must_use]
    pub fn new(config: SchedConfig) -> FairScheduler {
        FairScheduler {
            config,
            tenants: Vec::new(),
            cursor: 0,
            jobs: std::collections::HashMap::new(),
            next_id: 1,
            emitted: 0,
        }
    }

    /// Live (accepted, unfinished) jobs.
    #[must_use]
    pub fn live(&self) -> usize {
        self.jobs.len()
    }

    /// Slices emitted over the scheduler's lifetime.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn tenant_index(&mut self, name: &str) -> usize {
        if let Some(i) = self.tenants.iter().position(|t| t.name == name) {
            return i;
        }
        self.tenants.push(Tenant {
            name: name.to_owned(),
            weight: self.config.default_weight,
            burst: 0,
            queue: VecDeque::new(),
        });
        self.tenants.len() - 1
    }

    /// Sets a tenant's weight (minimum 1), creating the tenant if it
    /// has never submitted. Takes effect from its next round visit.
    pub fn set_weight(&mut self, tenant: &str, weight: u32) {
        let i = self.tenant_index(tenant);
        self.tenants[i].weight = weight.max(1);
    }

    /// Accepts a job for `tenant` and returns its id.
    ///
    /// # Errors
    ///
    /// [`ServerError::QueueFull`] when the live-job count is at the
    /// configured limit.
    pub fn submit(&mut self, tenant: &str) -> Result<JobId, ServerError> {
        if self.jobs.len() >= self.config.queue_limit {
            return Err(ServerError::QueueFull);
        }
        let tenant = self.tenant_index(tenant);
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.tenants[tenant].queue.push_back(id);
        self.jobs.insert(
            id,
            JobState {
                tenant,
                in_flight: false,
            },
        );
        Ok(id)
    }

    /// The next slice to dispatch, or `None` when there is nothing
    /// *deterministically* dispatchable right now — either no live jobs
    /// remain, or the head of the DRR order has a slice in flight
    /// (head-of-line wait; call again after a [`complete`]).
    ///
    /// Idempotent while blocked: a `None` return mutates no ordering
    /// state, so polling is harmless.
    ///
    /// [`complete`]: FairScheduler::complete
    pub fn next_slice(&mut self) -> Option<JobId> {
        if self.jobs.is_empty() {
            return None;
        }
        // At most one full lap over the tenants: some queue is
        // non-empty (jobs is non-empty and every live job is queued),
        // so the loop always terminates at a head job or a HOL wait.
        for _ in 0..=self.tenants.len() {
            let tenant = &mut self.tenants[self.cursor];
            if tenant.queue.is_empty() {
                tenant.burst = 0;
                self.cursor = (self.cursor + 1) % self.tenants.len();
                continue;
            }
            if tenant.burst == 0 {
                tenant.burst = tenant.weight;
            }
            let head = *tenant.queue.front().expect("non-empty queue");
            let state = self.jobs.get_mut(&head).expect("queued job is live");
            if state.in_flight {
                // Head-of-line wait: emitting any other job here would
                // make the order depend on slice timing.
                return None;
            }
            state.in_flight = true;
            tenant.queue.rotate_left(1);
            tenant.burst -= 1;
            if tenant.burst == 0 {
                self.cursor = (self.cursor + 1) % self.tenants.len();
            }
            self.emitted += 1;
            return Some(head);
        }
        unreachable!("live jobs but no emittable or in-flight head");
    }

    /// Records that `job`'s in-flight slice resolved. `finished`
    /// removes the job; otherwise it stays queued (already rotated to
    /// its tenant's tail at emission) for its next slice.
    ///
    /// # Panics
    ///
    /// On completing a job that is not in flight — that is a server
    /// bug, not a client error.
    pub fn complete(&mut self, job: JobId, finished: bool) {
        if finished {
            let state = self.jobs.remove(&job).expect("completed job is live");
            assert!(state.in_flight, "completed job had no slice in flight");
            let queue = &mut self.tenants[state.tenant].queue;
            let pos = queue.iter().position(|&j| j == job).expect("queued");
            queue.remove(pos);
        } else {
            let state = self.jobs.get_mut(&job).expect("completed job is live");
            assert!(state.in_flight, "completed job had no slice in flight");
            state.in_flight = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the scheduler single-file, completing each slice
    /// immediately; `slices[job]` = total slices the job needs.
    fn drain(
        sched: &mut FairScheduler,
        slices: &std::collections::HashMap<JobId, u64>,
    ) -> Vec<JobId> {
        let mut done: std::collections::HashMap<JobId, u64> = std::collections::HashMap::new();
        let mut order = Vec::new();
        while let Some(job) = sched.next_slice() {
            order.push(job);
            let ran = done.entry(job).or_insert(0);
            *ran += 1;
            sched.complete(job, *ran >= slices[&job]);
        }
        assert_eq!(sched.live(), 0, "drain left live jobs");
        order
    }

    #[test]
    fn weighted_tenants_get_proportional_service() {
        let mut sched = FairScheduler::new(SchedConfig::default());
        sched.set_weight("heavy", 3);
        let mut slices = std::collections::HashMap::new();
        // One long job each; 12 slices apiece.
        let heavy = sched.submit("heavy").unwrap();
        let light = sched.submit("light").unwrap();
        slices.insert(heavy, 12);
        slices.insert(light, 12);
        let order = drain(&mut sched, &slices);
        // First complete round: heavy×3 then light×1.
        assert_eq!(order[..4], [heavy, heavy, heavy, light]);
        // Over the first 16 emissions the 3:1 ratio holds exactly.
        let heavy_in_16 = order[..16].iter().filter(|&&j| j == heavy).count();
        assert_eq!(heavy_in_16, 12);
    }

    #[test]
    fn full_sweep_cannot_starve_quick_probe() {
        let mut sched = FairScheduler::new(SchedConfig::default());
        let mut slices = std::collections::HashMap::new();
        let sweep = sched.submit("full").unwrap();
        slices.insert(sweep, 100);
        let probe = sched.submit("quick").unwrap();
        slices.insert(probe, 1);
        let order = drain(&mut sched, &slices);
        // The probe's single slice lands on the second emission — one
        // sweep slice ahead of it, not one hundred.
        assert_eq!(order[1], probe);
        assert_eq!(order.len(), 101);
    }

    #[test]
    fn same_tenant_jobs_round_robin() {
        // Rotation at emission means two jobs from one tenant
        // interleave instead of running back-to-back.
        let mut sched = FairScheduler::new(SchedConfig::default());
        let mut slices = std::collections::HashMap::new();
        let a = sched.submit("t").unwrap();
        let b = sched.submit("t").unwrap();
        slices.insert(a, 3);
        slices.insert(b, 3);
        assert_eq!(drain(&mut sched, &slices), vec![a, b, a, b, a, b]);
    }

    #[test]
    fn queue_limit_rejects_and_frees_on_finish() {
        let mut sched = FairScheduler::new(SchedConfig {
            queue_limit: 2,
            default_weight: 1,
        });
        let a = sched.submit("t").unwrap();
        let _b = sched.submit("t").unwrap();
        assert!(matches!(sched.submit("t"), Err(ServerError::QueueFull)));
        let first = sched.next_slice().unwrap();
        assert_eq!(first, a);
        sched.complete(a, true);
        assert!(sched.submit("t").is_ok());
    }

    #[test]
    fn head_of_line_wait_blocks_until_completion() {
        let mut sched = FairScheduler::new(SchedConfig::default());
        let a = sched.submit("t").unwrap();
        assert_eq!(sched.next_slice(), Some(a));
        // a's next slice is the deterministic head but a is in flight:
        // next() must wait, and repeated polls must not disturb state.
        assert_eq!(sched.next_slice(), None);
        assert_eq!(sched.next_slice(), None);
        sched.complete(a, false);
        assert_eq!(sched.next_slice(), Some(a));
        sched.complete(a, true);
        assert_eq!(sched.next_slice(), None);
        assert_eq!(sched.live(), 0);
    }
}
