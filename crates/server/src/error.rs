//! The service's error taxonomy: what a client did wrong
//! (spec/protocol), what the service refused (queue pressure,
//! shutdown), and what failed underneath (campaign faults).

use std::fmt;

use sca_target::TargetError;

/// Anything the campaign service can answer a request with besides a
/// verdict.
#[derive(Debug)]
pub enum ServerError {
    /// The spec is malformed: bad field values, an unregistered target,
    /// or a wire line that does not parse. The message is
    /// client-facing.
    Spec(String),
    /// The bounded submission queue is full — back off and resubmit.
    QueueFull,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// A campaign slice failed underneath (simulator fault, store
    /// I/O/corruption).
    Target(TargetError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Spec(what) => write!(f, "bad spec: {what}"),
            ServerError::QueueFull => write!(f, "submission queue full"),
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::Target(e) => write!(f, "campaign failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Target(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TargetError> for ServerError {
    fn from(e: TargetError) -> ServerError {
        ServerError::Target(e)
    }
}
