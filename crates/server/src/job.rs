//! Stateless execution of one job slice.
//!
//! A slice is the scheduler's unit of cooperative preemption: resume
//! the spec's stored campaign from its last checkpoint, simulate up to
//! a bounded number of new traces (whole checkpoint segments), persist
//! the new checkpoint, and report the *partial* verdict the accumulator
//! holds so far. Slices carry no in-memory state between each other —
//! the store's checkpoint WAL is the only hand-off — so any worker can
//! run any job's next slice, and a server restart loses nothing.
//!
//! Every spec gets its own store directory under the corpus root, named
//! by the spec fingerprint, so distinct specs never contend on a store
//! and identical specs (the dedup case) always land on the same one.

use std::path::{Path, PathBuf};

use sca_campaign::{KillPoint, StoredRunReport, DEFAULT_BATCH};
use sca_power::GaussianNoise;
use sca_target::{
    portfolio, restore_cpa, restore_tvla, store_dir_name, CipherTarget, CpaVerdict, ModelKind,
    TargetCampaign, TargetCampaignConfig, TargetModel, TargetStoreConfig, TvlaVerdict,
};
use sca_uarch::UarchConfig;

use crate::{AnalysisSel, CampaignSpec, ServerError};

/// The analysis verdict a slice computed — partial until the slice that
/// reaches the spec's full trace budget.
#[derive(Clone, Debug)]
pub enum SliceVerdict {
    /// A CPA verdict from the accumulator state so far.
    Cpa(CpaVerdict),
    /// A TVLA verdict; `None` until both populations hold two traces.
    Tvla(Option<TvlaVerdict>),
}

/// What one slice produced.
#[derive(Clone, Debug)]
pub struct SliceOutcome {
    /// The (possibly partial) verdict after this slice.
    pub verdict: SliceVerdict,
    /// The underlying stored-run report: traces resumed/simulated and
    /// the campaign's high-water mark vs its total budget.
    pub report: StoredRunReport,
}

impl SliceOutcome {
    /// Whether the campaign has absorbed its full trace budget.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.report.complete()
    }

    /// The final verdict line, in the exact format the one-shot
    /// `portfolio` binary prints (and the regression tests pin).
    ///
    /// # Panics
    ///
    /// On a TVLA outcome whose populations are still degenerate — a
    /// complete campaign of ≥ 4 traces always has both.
    #[must_use]
    pub fn final_line(&self, target: &str) -> String {
        match &self.verdict {
            SliceVerdict::Cpa(v) => format!("[{target}] {}", v.verdict()),
            SliceVerdict::Tvla(v) => {
                let v = v.as_ref().expect("complete TVLA run has both populations");
                format!(
                    "[{target}] TVLA fixed-vs-random: {}",
                    if v.leaks { "LEAKS" } else { "clean" },
                )
            }
        }
    }
}

/// Executes job slices against a corpus root. One runner is shared by
/// all workers; it holds only configuration.
#[derive(Debug)]
pub struct JobRunner {
    uarch: UarchConfig,
    store_root: PathBuf,
    /// Worker threads per slice. Verdicts are thread-count invariant,
    /// so this is pure throughput policy.
    pub threads: usize,
    /// Lockstep lanes per simulation group.
    pub lanes: usize,
    /// Traces per checkpoint segment — also the slice granularity:
    /// a slice runs whole segments.
    pub checkpoint_every: u64,
}

impl JobRunner {
    /// A runner storing corpora under `store_root`.
    #[must_use]
    pub fn new(store_root: impl Into<PathBuf>) -> JobRunner {
        JobRunner {
            uarch: UarchConfig::cortex_a7(),
            store_root: store_root.into(),
            threads: 4,
            lanes: sca_campaign::DEFAULT_LANES,
            checkpoint_every: 64,
        }
    }

    /// Resolves a spec's target against the portfolio registry,
    /// returning the boxed target and its campaign seed salt (registry
    /// index + 1 — the exact salt the one-shot portfolio applies, which
    /// is what makes server and one-shot verdicts byte-identical).
    ///
    /// # Errors
    ///
    /// [`ServerError::Spec`] for unregistered names.
    pub fn resolve(
        &self,
        spec: &CampaignSpec,
    ) -> Result<(Box<dyn CipherTarget>, u64), ServerError> {
        portfolio()
            .into_iter()
            .enumerate()
            .find(|(_, t)| t.name() == spec.target)
            .map(|(i, t)| (t, i as u64 + 1))
            .ok_or_else(|| ServerError::Spec(format!("unknown target '{}'", spec.target)))
    }

    /// The spec's private store directory under the corpus root.
    #[must_use]
    pub fn spec_dir(&self, spec: &CampaignSpec) -> PathBuf {
        self.store_root
            .join(format!("spec-{:016x}", spec.fingerprint()))
    }

    fn campaign_config(&self, spec: &CampaignSpec, salt: u64) -> TargetCampaignConfig {
        TargetCampaignConfig {
            traces: spec.traces as usize,
            executions_per_trace: spec.executions_per_trace as usize,
            seed: spec.seed ^ (salt << 24),
            threads: self.threads,
            batch: DEFAULT_BATCH,
            lanes: self.lanes,
            noise: GaussianNoise {
                sd: spec.noise.sd,
                baseline: spec.noise.baseline,
            },
        }
    }

    fn store_config(&self, dir: &Path) -> TargetStoreConfig {
        TargetStoreConfig {
            root: dir.to_path_buf(),
            checkpoint_every: self.checkpoint_every,
            resume: true,
            kill: KillPoint::None,
        }
    }

    fn model_for(
        target: &dyn CipherTarget,
        analysis: AnalysisSel,
    ) -> Result<TargetModel, ServerError> {
        let kind = match analysis {
            AnalysisSel::Hw => ModelKind::ValueHw,
            AnalysisSel::Hd => ModelKind::TransitionHd,
            AnalysisSel::Tvla => unreachable!("TVLA selects no model"),
        };
        target
            .models()
            .into_iter()
            .find(|m| m.kind == kind)
            .ok_or_else(|| ServerError::Spec(format!("{} declares no {kind} model", target.name())))
    }

    /// Serves a spec's *final* verdict straight from its store, when the
    /// persisted checkpoints already cover the full trace budget — zero
    /// simulator invocations (not even a window probe). This is the
    /// dedup fast path for resubmissions, including after a restart.
    ///
    /// # Errors
    ///
    /// Spec-resolution failures and store I/O/corruption.
    pub fn try_restore(&self, spec: &CampaignSpec) -> Result<Option<SliceOutcome>, ServerError> {
        let (target, _) = self.resolve(spec)?;
        let dir = self.spec_dir(spec);
        let restored = match spec.analysis {
            AnalysisSel::Hw | AnalysisSel::Hd => {
                let model = JobRunner::model_for(target.as_ref(), spec.analysis)?;
                let store = dir.join(store_dir_name(target.name(), &model.name));
                restore_cpa(&store, &model)?.map(SliceVerdict::Cpa)
            }
            AnalysisSel::Tvla => {
                let store = dir.join(store_dir_name(target.name(), "tvla"));
                restore_tvla(&store, target.as_ref())?.map(|v| SliceVerdict::Tvla(Some(v)))
            }
        };
        Ok(restored.map(|verdict| SliceOutcome {
            verdict,
            report: StoredRunReport {
                resumed_from: spec.traces,
                simulated: 0,
                checkpoints: 0,
                samples: 0,
                high_water: spec.traces,
                total: spec.traces,
            },
        }))
    }

    /// Runs one slice: resume the spec's stored campaign and simulate
    /// up to `max_new_traces` new traces (whole checkpoint segments).
    ///
    /// # Errors
    ///
    /// Spec-resolution failures, simulator faults, and store
    /// I/O/corruption.
    pub fn run_slice(
        &self,
        spec: &CampaignSpec,
        max_new_traces: u64,
    ) -> Result<SliceOutcome, ServerError> {
        let (target, salt) = self.resolve(spec)?;
        let campaign = TargetCampaign::new(
            target.as_ref(),
            &self.uarch,
            self.campaign_config(spec, salt),
        )?;
        let store = self.store_config(&self.spec_dir(spec));
        let (verdict, report) = match spec.analysis {
            AnalysisSel::Hw | AnalysisSel::Hd => {
                let model = JobRunner::model_for(target.as_ref(), spec.analysis)?;
                let (v, report) = campaign.cpa_stored_bounded(&model, &store, max_new_traces)?;
                (SliceVerdict::Cpa(v), report)
            }
            AnalysisSel::Tvla => {
                let (v, report) = campaign.tvla_stored_bounded(&store, max_new_traces)?;
                (SliceVerdict::Tvla(v), report)
            }
        };
        Ok(SliceOutcome { verdict, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_compose_to_the_full_verdict_and_restore_serves_it_back() {
        let dir = std::env::temp_dir().join(format!("sca-server-job-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = CampaignSpec::quick("ci");
        spec.traces = 48;
        let mut runner = JobRunner::new(&dir);
        runner.threads = 2;
        runner.checkpoint_every = 16;

        // 48 traces at 16/segment with 16-trace slices: three slices.
        let mut outcomes = Vec::new();
        loop {
            let outcome = runner.run_slice(&spec, 16).expect("slice runs");
            let done = outcome.complete();
            outcomes.push(outcome);
            if done {
                break;
            }
        }
        assert_eq!(outcomes.len(), 3, "three 16-trace slices cover 48");
        assert!(outcomes[..2].iter().all(|o| !o.complete()));

        // The restore fast path must reproduce the final line exactly.
        let line = outcomes.last().unwrap().final_line(&spec.target);
        let restored = runner
            .try_restore(&spec)
            .expect("restore reads the store")
            .expect("complete campaign restores");
        assert_eq!(restored.final_line(&spec.target), line);
        assert_eq!(restored.report.simulated, 0);

        // An incomplete spec (different fingerprint ⇒ fresh store) does
        // not restore.
        let mut fresh = spec.clone();
        fresh.seed ^= 0x5eed;
        assert!(runner
            .try_restore(&fresh)
            .expect("no store is ok")
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
