//! The long-running campaign service.
//!
//! [`CampaignServer`] owns a [`FairScheduler`], a
//! pool of worker threads, and the dedup map from spec fingerprints to
//! live jobs. Clients [`submit`](CampaignServer::submit) specs and
//! receive an [`Event`] stream on a per-subscription channel:
//! acceptance, incremental progress after every slice (current rank,
//! t-statistic, traces-to-disclosure), and a final verdict line that is
//! byte-identical to the one-shot `portfolio` binary's.
//!
//! # Queue lifecycle and dedup
//!
//! A submitted spec is validated, fingerprinted, and then either
//! *coalesced* — a live job with the same fingerprint exists, the new
//! client just subscribes to it — or *accepted* as a new job in the
//! bounded scheduler queue. Identical concurrent submissions therefore
//! run the simulator exactly once; a resubmission after the job is gone
//! becomes a new job whose first slice hits the store's restore fast
//! path and finishes with zero simulation. Either way the trace store
//! under `spec-<fingerprint>/` is the single source of truth.
//!
//! # Pausing and determinism
//!
//! The whole dispatcher can be paused (workers finish in-flight slices
//! and then idle), which is how the deterministic test harness scripts
//! concurrency: submit while paused, resume, wait for idle. The
//! scheduler's emission order is a pure function of submission order
//! and weights; slice boundaries are checkpoint segments; so every
//! event a client observes is reproducible at any worker count.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use sca_analysis::{estimate_traces_to_disclosure, traces_to_rank0};

use crate::{
    CampaignSpec, FairScheduler, JobId, JobRunner, SchedConfig, ServerError, SliceOutcome,
    SliceVerdict,
};

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the scheduler.
    pub workers: usize,
    /// Bounded live-job limit (backpressure at submission).
    pub queue_limit: usize,
    /// Weight of tenants that never asked for one.
    pub default_weight: u32,
    /// Maximum new traces simulated per slice (rounded up to whole
    /// checkpoint segments by the campaign layer).
    pub slice_traces: u64,
    /// Traces per checkpoint segment in the spec stores.
    pub checkpoint_every: u64,
    /// Campaign engine threads inside one slice.
    pub threads_per_slice: usize,
    /// Lockstep lanes per simulation group.
    pub lanes: usize,
    /// Corpus root; one store directory per spec fingerprint.
    pub store_root: std::path::PathBuf,
    /// Start with the dispatcher paused (the test harness does).
    pub start_paused: bool,
}

impl ServerConfig {
    /// A small-footprint configuration rooted at `store_root`.
    #[must_use]
    pub fn new(store_root: impl Into<std::path::PathBuf>) -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_limit: 64,
            default_weight: 1,
            slice_traces: 64,
            checkpoint_every: 64,
            threads_per_slice: 4,
            lanes: sca_campaign::DEFAULT_LANES,
            store_root: store_root.into(),
            start_paused: false,
        }
    }
}

/// How far the job is from disclosure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Disclosure {
    /// The attack reached rank 0 at this many traces (and has stayed
    /// there since).
    Measured(u64),
    /// Still above rank 0; Mangard's rule-of-thumb forecast from the
    /// current peak correlation.
    Estimated(u64),
    /// No usable correlation yet.
    Pending,
}

/// Analysis-specific progress payload.
#[derive(Clone, Debug)]
pub enum ProgressDetail {
    /// CPA: the correct key's current standing.
    Cpa {
        /// Rank of the true key byte (0 = currently recovered).
        rank: usize,
        /// Peak |correlation| of the true key byte.
        peak: f64,
        /// Traces-to-disclosure, measured or forecast.
        disclosure: Disclosure,
    },
    /// TVLA: the t-statistic trajectory.
    Tvla {
        /// Largest |t| so far; `None` until both populations hold two
        /// traces.
        max_t: Option<f64>,
    },
}

/// One incremental progress snapshot (emitted after every slice).
#[derive(Clone, Debug)]
pub struct ProgressSnapshot {
    /// Traces absorbed so far.
    pub traces: u64,
    /// The spec's total trace budget.
    pub total: u64,
    /// Analysis-specific payload.
    pub detail: ProgressDetail,
}

/// What a subscriber receives about its job.
#[derive(Clone, Debug)]
pub enum Event {
    /// The submission was accepted (or coalesced onto a live job).
    Accepted {
        /// The job the subscription is attached to.
        job: JobId,
        /// Whether an identical live spec absorbed this submission.
        coalesced: bool,
    },
    /// A slice finished; here is the incremental verdict.
    Progress {
        /// The job.
        job: JobId,
        /// The snapshot.
        snapshot: ProgressSnapshot,
    },
    /// The campaign absorbed its full budget; the line is byte-identical
    /// to the one-shot portfolio's verdict line for this spec.
    Final {
        /// The job.
        job: JobId,
        /// The verdict line.
        line: String,
    },
    /// The campaign failed; the job is abandoned.
    Failed {
        /// The job.
        job: JobId,
        /// Client-facing description.
        message: String,
    },
    /// Terminal marker: no more events for this job.
    Done {
        /// The job.
        job: JobId,
    },
}

/// Monotonic service counters (snapshot).
///
/// Since the telemetry rework these are read out of the server's
/// private [`sca_telemetry::Registry`]; the struct remains the stable
/// exact-delta surface the e2e tests assert on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Specs submitted (accepted + coalesced + rejected).
    pub submitted: u64,
    /// Submissions absorbed by a live identical job.
    pub coalesced: u64,
    /// Submissions rejected (validation or queue pressure).
    pub rejected: u64,
    /// Jobs that reached a final verdict.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Slices executed (including restore fast-path hits).
    pub slices: u64,
    /// Jobs whose final verdict came straight from the store with zero
    /// simulation.
    pub store_served: u64,
    /// High-water mark of concurrently live jobs.
    pub queue_peak: u64,
}

/// The server's metric handles, resolved once against a **per-server**
/// [`sca_telemetry::Registry`] — tests run several servers in one
/// process, and their counters must not bleed into each other (the
/// process-global registry keeps the engine/store counters, which *are*
/// process-wide work).
struct ServerMetrics {
    registry: Arc<sca_telemetry::Registry>,
    submitted: Arc<sca_telemetry::Counter>,
    coalesced: Arc<sca_telemetry::Counter>,
    rejected: Arc<sca_telemetry::Counter>,
    completed: Arc<sca_telemetry::Counter>,
    failed: Arc<sca_telemetry::Counter>,
    slices: Arc<sca_telemetry::Counter>,
    store_served: Arc<sca_telemetry::Counter>,
    queue_depth: Arc<sca_telemetry::Gauge>,
    slice_seconds: Arc<sca_telemetry::Histogram>,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Arc::new(sca_telemetry::Registry::new());
        ServerMetrics {
            submitted: registry.counter("server/submitted"),
            coalesced: registry.counter("server/coalesced"),
            rejected: registry.counter("server/rejected"),
            completed: registry.counter("server/completed"),
            failed: registry.counter("server/failed"),
            slices: registry.counter("server/slices"),
            store_served: registry.counter("server/store_served"),
            queue_depth: registry.gauge("server/queue_depth"),
            slice_seconds: registry
                .histogram("server/slice_seconds", &sca_telemetry::LATENCY_BUCKETS),
            registry,
        }
    }

    fn tenant_slices(&self, tenant: &str) -> Arc<sca_telemetry::Counter> {
        self.registry
            .counter(&format!("server/tenant/{tenant}/slices"))
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.get(),
            coalesced: self.coalesced.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            slices: self.slices.get(),
            store_served: self.store_served.get(),
            queue_peak: self.queue_depth.peak().max(0) as u64,
        }
    }
}

struct JobRecord {
    spec: CampaignSpec,
    fingerprint: u64,
    subscribers: Vec<Sender<Event>>,
    /// Whether any slice has run yet (the first one tries the store's
    /// restore fast path).
    started: bool,
    /// First trace count at which rank 0 was observed and held since —
    /// the measured traces-to-disclosure candidate, with the same
    /// stability rule as [`traces_to_rank0`].
    rank0_at: Option<u64>,
    /// Rank trajectory as (traces, rank) — kept so the measured
    /// disclosure point obeys the stability rule exactly.
    curve: Vec<sca_analysis::RankPoint>,
}

struct Inner {
    sched: FairScheduler,
    jobs: HashMap<JobId, JobRecord>,
    by_fingerprint: HashMap<u64, JobId>,
    metrics: ServerMetrics,
    paused: bool,
    shutdown: bool,
    executing: usize,
}

impl Inner {
    fn broadcast(&mut self, job: JobId, event: &Event) {
        if let Some(record) = self.jobs.get(&job) {
            for sub in &record.subscribers {
                // A client that hung up just stops listening; the job
                // still runs to completion (its store entry is the
                // durable result).
                let _ = sub.send(event.clone());
            }
        }
    }
}

/// The campaign service. Dropping it drains and joins the workers.
pub struct CampaignServer {
    state: Arc<(Mutex<Inner>, Condvar)>,
    runner: Arc<JobRunner>,
    config: ServerConfig,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for CampaignServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignServer")
            .field("config", &self.config)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl CampaignServer {
    /// Starts the service: spawns the worker pool and begins (or, with
    /// `start_paused`, arms) dispatching.
    #[must_use]
    pub fn start(config: ServerConfig) -> CampaignServer {
        let mut runner = JobRunner::new(&config.store_root);
        runner.threads = config.threads_per_slice;
        runner.lanes = config.lanes;
        runner.checkpoint_every = config.checkpoint_every;
        let runner = Arc::new(runner);
        let state = Arc::new((
            Mutex::new(Inner {
                sched: FairScheduler::new(SchedConfig {
                    queue_limit: config.queue_limit,
                    default_weight: config.default_weight,
                }),
                jobs: HashMap::new(),
                by_fingerprint: HashMap::new(),
                metrics: ServerMetrics::new(),
                paused: config.start_paused,
                shutdown: false,
                executing: 0,
            }),
            Condvar::new(),
        ));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let runner = Arc::clone(&runner);
                let slice_traces = config.slice_traces;
                std::thread::spawn(move || worker_loop(&state, &runner, slice_traces))
            })
            .collect();
        CampaignServer {
            state,
            runner,
            config,
            workers,
        }
    }

    /// The configuration the server was started with.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The slice runner (for tests that want to inspect store paths).
    #[must_use]
    pub fn runner(&self) -> &JobRunner {
        &self.runner
    }

    /// Submits a spec. Returns the job id, this subscription's event
    /// stream, and whether the submission coalesced onto a live
    /// identical job. The `Accepted` event is already queued on the
    /// stream.
    ///
    /// `weight`, when given, (re)sets the tenant's fair-share weight.
    ///
    /// # Errors
    ///
    /// [`ServerError::Spec`] for invalid specs,
    /// [`ServerError::QueueFull`] under backpressure, and
    /// [`ServerError::ShuttingDown`] during drain. Rejections count in
    /// [`ServerStats::rejected`].
    pub fn submit(
        &self,
        spec: &CampaignSpec,
        weight: Option<u32>,
    ) -> Result<(JobId, Receiver<Event>, bool), ServerError> {
        let (lock, cv) = &*self.state;
        let mut inner = lock.lock().expect("server state poisoned");
        inner.metrics.submitted.inc();
        let accepted = self.accept(&mut inner, spec, weight);
        if accepted.is_err() {
            inner.metrics.rejected.inc();
        }
        cv.notify_all();
        accepted
    }

    fn accept(
        &self,
        inner: &mut Inner,
        spec: &CampaignSpec,
        weight: Option<u32>,
    ) -> Result<(JobId, Receiver<Event>, bool), ServerError> {
        if inner.shutdown {
            return Err(ServerError::ShuttingDown);
        }
        spec.validate()?;
        self.runner.resolve(spec)?;
        if let Some(weight) = weight {
            inner.sched.set_weight(&spec.tenant, weight);
        }
        let fingerprint = spec.fingerprint();
        let (tx, rx) = mpsc::channel();
        if let Some(&job) = inner.by_fingerprint.get(&fingerprint) {
            inner.metrics.coalesced.inc();
            let _ = tx.send(Event::Accepted {
                job,
                coalesced: true,
            });
            inner
                .jobs
                .get_mut(&job)
                .expect("fingerprint-mapped job is live")
                .subscribers
                .push(tx);
            return Ok((job, rx, true));
        }
        let job = inner.sched.submit(&spec.tenant)?;
        let _ = tx.send(Event::Accepted {
            job,
            coalesced: false,
        });
        inner.jobs.insert(
            job,
            JobRecord {
                spec: spec.clone(),
                fingerprint,
                subscribers: vec![tx],
                started: false,
                rank0_at: None,
                curve: Vec::new(),
            },
        );
        inner.by_fingerprint.insert(fingerprint, job);
        inner.metrics.queue_depth.set(inner.sched.live() as i64);
        Ok((job, rx, false))
    }

    /// A snapshot of the service counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.state
            .0
            .lock()
            .expect("server state poisoned")
            .metrics
            .stats()
    }

    /// A merged point-in-time metrics snapshot: this server's registry
    /// (queue, slices, tenants) over the process-global one (simulator,
    /// campaign and store work counters).
    #[must_use]
    pub fn metrics_snapshot(&self) -> sca_telemetry::Snapshot {
        let mut snap = sca_telemetry::global().snapshot();
        let server = self
            .state
            .0
            .lock()
            .expect("server state poisoned")
            .metrics
            .registry
            .snapshot();
        snap.merge(server);
        snap
    }

    /// Live (accepted, unfinished) jobs.
    #[must_use]
    pub fn live_jobs(&self) -> usize {
        self.state
            .0
            .lock()
            .expect("server state poisoned")
            .sched
            .live()
    }

    /// Stops dispatching new slices; in-flight slices finish.
    pub fn pause(&self) {
        let (lock, cv) = &*self.state;
        lock.lock().expect("server state poisoned").paused = true;
        cv.notify_all();
    }

    /// Resumes dispatching.
    pub fn resume(&self) {
        let (lock, cv) = &*self.state;
        lock.lock().expect("server state poisoned").paused = false;
        cv.notify_all();
    }

    /// Blocks until no live jobs remain and no slice is executing.
    /// (With the dispatcher paused this only waits for in-flight slices
    /// — use it after [`resume`](CampaignServer::resume).)
    pub fn wait_idle(&self) {
        let (lock, cv) = &*self.state;
        let mut inner = lock.lock().expect("server state poisoned");
        while !(inner.executing == 0 && (inner.sched.live() == 0 || inner.paused)) {
            inner = cv.wait(inner).expect("server state poisoned");
        }
    }

    /// Drains and stops: rejects new submissions, lets every live job
    /// run to its verdict, then joins the workers. Idempotent.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let (lock, cv) = &*self.state;
        let mut inner = lock.lock().expect("server state poisoned");
        inner.shutdown = true;
        // A paused, shut-down server would deadlock its drain.
        inner.paused = false;
        cv.notify_all();
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Builds the progress snapshot for a slice outcome and updates the
/// job's measured-disclosure bookkeeping.
fn snapshot(record: &mut JobRecord, outcome: &SliceOutcome) -> ProgressSnapshot {
    let detail = match &outcome.verdict {
        SliceVerdict::Cpa(v) => {
            record.curve.push(sca_analysis::RankPoint {
                traces: outcome.report.high_water as usize,
                rank: v.rank,
                correct_peak: v.peak,
                best_wrong_peak: v.best_wrong,
            });
            record.rank0_at = traces_to_rank0(&record.curve).map(|t| t as u64);
            let disclosure = match record.rank0_at {
                Some(at) => Disclosure::Measured(at),
                None => match estimate_traces_to_disclosure(v.peak) {
                    Some(n) => Disclosure::Estimated(n),
                    None => Disclosure::Pending,
                },
            };
            ProgressDetail::Cpa {
                rank: v.rank,
                peak: v.peak,
                disclosure,
            }
        }
        SliceVerdict::Tvla(v) => ProgressDetail::Tvla {
            max_t: v.as_ref().map(|v| v.max_t),
        },
    };
    ProgressSnapshot {
        traces: outcome.report.high_water,
        total: outcome.report.total,
        detail,
    }
}

fn worker_loop(state: &Arc<(Mutex<Inner>, Condvar)>, runner: &Arc<JobRunner>, slice_traces: u64) {
    let (lock, cv) = &**state;
    loop {
        // Acquire the next deterministic slice (or exit on drained
        // shutdown).
        let (job, spec, first) = {
            let mut inner = lock.lock().expect("server state poisoned");
            loop {
                if inner.shutdown && inner.sched.live() == 0 {
                    cv.notify_all();
                    return;
                }
                if !inner.paused {
                    if let Some(job) = inner.sched.next_slice() {
                        let record = inner.jobs.get_mut(&job).expect("scheduled job is live");
                        let spec = record.spec.clone();
                        let first = !record.started;
                        record.started = true;
                        inner.executing += 1;
                        break (job, spec, first);
                    }
                }
                inner = cv.wait(inner).expect("server state poisoned");
            }
        };

        // The expensive part runs without the lock: resume the store,
        // simulate one slice. The very first slice of a job first asks
        // the store whether the verdict is already fully persisted.
        let slice_start = std::time::Instant::now();
        let result = if first {
            match runner.try_restore(&spec) {
                Ok(Some(outcome)) => Ok((outcome, true)),
                Ok(None) => runner.run_slice(&spec, slice_traces).map(|o| (o, false)),
                Err(e) => Err(e),
            }
        } else {
            runner.run_slice(&spec, slice_traces).map(|o| (o, false))
        };
        let slice_seconds = slice_start.elapsed().as_secs_f64();

        let mut inner = lock.lock().expect("server state poisoned");
        inner.executing -= 1;
        inner.metrics.slices.inc();
        inner.metrics.slice_seconds.observe(slice_seconds);
        inner.metrics.tenant_slices(&spec.tenant).inc();
        match result {
            Ok((outcome, restored)) => {
                let record = inner.jobs.get_mut(&job).expect("sliced job is live");
                let snap = snapshot(record, &outcome);
                let finished = outcome.complete();
                inner.broadcast(
                    job,
                    &Event::Progress {
                        job,
                        snapshot: snap,
                    },
                );
                if finished {
                    let line = outcome.final_line(&spec.target);
                    inner.broadcast(job, &Event::Final { job, line });
                    inner.broadcast(job, &Event::Done { job });
                    inner.metrics.completed.inc();
                    if restored {
                        inner.metrics.store_served.inc();
                    }
                    let fingerprint = inner.jobs[&job].fingerprint;
                    inner.jobs.remove(&job);
                    inner.by_fingerprint.remove(&fingerprint);
                }
                inner.sched.complete(job, finished);
            }
            Err(e) => {
                inner.broadcast(
                    job,
                    &Event::Failed {
                        job,
                        message: e.to_string(),
                    },
                );
                inner.broadcast(job, &Event::Done { job });
                inner.metrics.failed.inc();
                let fingerprint = inner.jobs[&job].fingerprint;
                inner.jobs.remove(&job);
                inner.by_fingerprint.remove(&fingerprint);
                inner.sched.complete(job, true);
            }
        }
        inner.metrics.queue_depth.set(inner.sched.live() as i64);
        cv.notify_all();
    }
}
