//! Multi-tenant campaign service: leakage assessment as a long-running
//! server.
//!
//! The ROADMAP's "millions of users" shape is a CI fleet submitting
//! every firmware build for automatic side-channel evaluation. This
//! crate turns the one-shot experiment binaries into that service:
//!
//! * [`spec`] — [`CampaignSpec`]: target × analysis × trace budget ×
//!   seed × noise, fingerprinted over exactly the verdict-determining
//!   fields so identical requests are *provably* the same work.
//! * [`sched`] — [`FairScheduler`]: bounded submission queue and
//!   weighted deficit round-robin over tenants at job-slice
//!   granularity, with a deterministic emission order (a pure function
//!   of arrival order and weights, independent of worker count).
//! * [`job`] — [`JobRunner`]: a slice resumes the spec's stored
//!   campaign from its last checkpoint, simulates a bounded number of
//!   new traces, and reports the partial verdict; the store's
//!   checkpoint WAL is the only state between slices.
//! * [`server`] — [`CampaignServer`]: worker pool, fingerprint-keyed
//!   dedup (concurrent identical submissions coalesce onto one
//!   simulation; resubmissions of finished specs are served from the
//!   store with zero simulation), and per-subscriber event streams of
//!   incremental verdicts ending in a final line byte-identical to the
//!   one-shot `portfolio` binary's.
//! * [`wire`] — the strict `key=value` line protocol shared by the
//!   socket front end (`sca-bench`'s `serve`/`submit`) and the harness.
//! * [`harness`] — [`ServerHarness`]: a real server with a paused
//!   dispatcher, scripted client sessions and a [`VirtualClock`], so
//!   every concurrency property above is asserted on byte-exact
//!   transcripts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod harness;
pub mod job;
pub mod sched;
pub mod server;
pub mod spec;
pub mod wire;

pub use clock::{Clock, VirtualClock, WallClock};
pub use error::ServerError;
pub use harness::{ServerHarness, SessionId};
pub use job::{JobRunner, SliceOutcome, SliceVerdict};
pub use sched::{FairScheduler, JobId, SchedConfig};
pub use server::{
    CampaignServer, Disclosure, Event, ProgressDetail, ProgressSnapshot, ServerConfig, ServerStats,
};
pub use spec::{AnalysisSel, CampaignSpec, MAX_SPEC_EXECUTIONS, MAX_SPEC_TRACES};
pub use wire::{final_verdict, format_event, format_stats, parse_request, Request};
