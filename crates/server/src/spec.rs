//! Campaign specs: what a tenant asks the service to evaluate.
//!
//! A spec pins everything that determines a verdict — target, analysis,
//! trace budget, executions per trace, master seed, noise profile — and
//! nothing that doesn't (tenant identity, scheduling weight, worker
//! threads: verdicts are thread-count invariant by the campaign
//! engine's contract). Two specs with equal [fingerprints](
//! CampaignSpec::fingerprint) therefore denote the *same corpus and the
//! same verdict*, which is what makes store-backed dedup sound:
//! concurrent identical submissions coalesce onto one simulation, and a
//! resubmission after restart is served from the persisted checkpoints.

use std::fmt;

use sca_power::GaussianNoise;
use sca_store::fnv1a64;

use crate::ServerError;

/// Hard ceiling on a spec's trace budget — a tenant typo of `1e9`
/// should be rejected at the door, not simulated for a week.
pub const MAX_SPEC_TRACES: u64 = 1_000_000;

/// Hard ceiling on executions averaged per trace.
pub const MAX_SPEC_EXECUTIONS: u64 = 10_000;

/// Which analysis of the paper's methodology the spec requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AnalysisSel {
    /// Value-level Hamming-weight CPA (the target's first `ValueHw`
    /// model).
    Hw,
    /// Microarchitecture-aware Hamming-distance CPA (the target's first
    /// `TransitionHd` model).
    Hd,
    /// Fixed-vs-random TVLA.
    Tvla,
}

impl AnalysisSel {
    /// Parses the wire token (`hw` / `hd` / `tvla`).
    ///
    /// # Errors
    ///
    /// [`ServerError::Spec`] on anything else.
    pub fn parse(token: &str) -> Result<AnalysisSel, ServerError> {
        match token {
            "hw" => Ok(AnalysisSel::Hw),
            "hd" => Ok(AnalysisSel::Hd),
            "tvla" => Ok(AnalysisSel::Tvla),
            other => Err(ServerError::Spec(format!(
                "unknown analysis '{other}' (expected hw, hd or tvla)"
            ))),
        }
    }
}

impl fmt::Display for AnalysisSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AnalysisSel::Hw => "hw",
            AnalysisSel::Hd => "hd",
            AnalysisSel::Tvla => "tvla",
        })
    }
}

/// One tenant's evaluation request.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Who is asking — scheduling identity only, never part of the
    /// dedup fingerprint.
    pub tenant: String,
    /// Registry name of the cipher target (`aes128`, `speck64128`, …).
    pub target: String,
    /// Which analysis to run.
    pub analysis: AnalysisSel,
    /// Averaged traces in the campaign.
    pub traces: u64,
    /// Executions averaged into each trace.
    pub executions_per_trace: u64,
    /// Master seed; the runner applies the same per-target registry
    /// salt the one-shot portfolio applies, so equal seeds mean equal
    /// verdict lines.
    pub seed: u64,
    /// Measurement noise profile.
    pub noise: GaussianNoise,
}

impl CampaignSpec {
    /// A quick AES-128 HW probe — the smallest useful spec, used as the
    /// base of tests and examples.
    #[must_use]
    pub fn quick(tenant: &str) -> CampaignSpec {
        CampaignSpec {
            tenant: tenant.to_owned(),
            target: "aes128".to_owned(),
            analysis: AnalysisSel::Hw,
            traces: 150,
            executions_per_trace: 2,
            seed: 0xdac_2018,
            noise: GaussianNoise {
                sd: 2.0,
                baseline: 30.0,
            },
        }
    }

    /// Range-checks the numeric fields. Target-name resolution happens
    /// at submission (it needs the registry).
    ///
    /// # Errors
    ///
    /// [`ServerError::Spec`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServerError> {
        if self.tenant.is_empty() {
            return Err(ServerError::Spec("tenant must be non-empty".to_owned()));
        }
        if self.traces == 0 || self.traces > MAX_SPEC_TRACES {
            return Err(ServerError::Spec(format!(
                "traces must be in 1..={MAX_SPEC_TRACES}, got {}",
                self.traces
            )));
        }
        if self.executions_per_trace == 0 || self.executions_per_trace > MAX_SPEC_EXECUTIONS {
            return Err(ServerError::Spec(format!(
                "executions must be in 1..={MAX_SPEC_EXECUTIONS}, got {}",
                self.executions_per_trace
            )));
        }
        if !self.noise.sd.is_finite() || self.noise.sd < 0.0 {
            return Err(ServerError::Spec(format!(
                "noise-sd must be finite and non-negative, got {}",
                self.noise.sd
            )));
        }
        if !self.noise.baseline.is_finite() {
            return Err(ServerError::Spec(format!(
                "noise-baseline must be finite, got {}",
                self.noise.baseline
            )));
        }
        Ok(())
    }

    /// The canonical identity string the fingerprint hashes — every
    /// verdict-determining field, bit-exact (floats as IEEE-754 bit
    /// patterns), and nothing else.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "target={} analysis={} traces={} executions={} seed={:016x} \
             noise-sd={:016x} noise-baseline={:016x}",
            self.target,
            self.analysis,
            self.traces,
            self.executions_per_trace,
            self.seed,
            self.noise.sd.to_bits(),
            self.noise.baseline.to_bits(),
        )
    }

    /// The dedup key: FNV-1a64 of [`canonical`](CampaignSpec::canonical).
    /// Equal fingerprints ⇔ same corpus directory, same verdict.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_ignores_tenant_and_tracks_every_physical_field() {
        let base = CampaignSpec::quick("ci");
        let mut other_tenant = base.clone();
        other_tenant.tenant = "dev".to_owned();
        assert_eq!(base.fingerprint(), other_tenant.fingerprint());

        let mut tweaked = base.clone();
        tweaked.traces += 1;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());

        let mut reseeded = base.clone();
        reseeded.seed ^= 1;
        assert_ne!(base.fingerprint(), reseeded.fingerprint());

        let mut renoised = base.clone();
        renoised.noise.sd += 0.5;
        assert_ne!(base.fingerprint(), renoised.fingerprint());

        let mut reanalyzed = base.clone();
        reanalyzed.analysis = AnalysisSel::Tvla;
        assert_ne!(base.fingerprint(), reanalyzed.fingerprint());
    }

    #[test]
    fn validate_rejects_degenerate_budgets() {
        let mut spec = CampaignSpec::quick("ci");
        assert!(spec.validate().is_ok());
        spec.traces = 0;
        assert!(spec.validate().is_err());
        spec.traces = MAX_SPEC_TRACES + 1;
        assert!(spec.validate().is_err());
        spec.traces = 10;
        spec.executions_per_trace = 0;
        assert!(spec.validate().is_err());
        spec.executions_per_trace = 2;
        spec.noise.sd = f64::NAN;
        assert!(spec.validate().is_err());
        spec.noise.sd = 1.0;
        spec.tenant = String::new();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn analysis_tokens_roundtrip() {
        for sel in [AnalysisSel::Hw, AnalysisSel::Hd, AnalysisSel::Tvla] {
            assert_eq!(AnalysisSel::parse(&sel.to_string()).unwrap(), sel);
        }
        assert!(AnalysisSel::parse("cpa").is_err());
    }
}
