//! The line protocol: one request or event per line, `key=value`
//! fields, strictly parsed.
//!
//! Requests (client → server):
//!
//! ```text
//! submit tenant=ci target=aes128 analysis=hw traces=150 executions=2 \
//!        seed=0xdac2018 noise-sd=2.0 noise-baseline=30.0 weight=3
//! stats
//! shutdown
//! ```
//!
//! `tenant`, `target`, `analysis` and `traces` are required; the rest
//! default to the one-shot portfolio's defaults. Unknown keys,
//! duplicate keys and malformed values are rejected — a CI fleet wants
//! its typos loud.
//!
//! Events (server → client) are formatted by [`format_event`]; the
//! `final` line carries the portfolio-format verdict verbatim after its
//! `job=` field, so clients can diff it byte-for-byte against one-shot
//! pins.

use std::collections::HashMap;

use sca_power::GaussianNoise;

use crate::{
    AnalysisSel, CampaignSpec, Disclosure, Event, ProgressDetail, ServerError, ServerStats,
};

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a campaign spec (with an optional tenant weight).
    Submit {
        /// The spec.
        spec: CampaignSpec,
        /// Fair-share weight for the spec's tenant.
        weight: Option<u32>,
    },
    /// Ask for the stats line.
    Stats,
    /// Ask for the full metrics dump (`metric <name>=<value>` lines,
    /// terminated by `metrics-end`).
    Metrics,
    /// Drain and stop the server.
    Shutdown,
}

fn parse_u64(key: &str, value: &str) -> Result<u64, ServerError> {
    let parsed = if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse()
    };
    parsed.map_err(|_| ServerError::Spec(format!("{key} must be an integer, got '{value}'")))
}

fn parse_f64(key: &str, value: &str) -> Result<f64, ServerError> {
    value
        .parse()
        .map_err(|_| ServerError::Spec(format!("{key} must be a number, got '{value}'")))
}

/// Parses one request line.
///
/// # Errors
///
/// [`ServerError::Spec`] with a client-facing message on any deviation:
/// unknown verb, unknown/duplicate/missing keys, malformed values.
pub fn parse_request(line: &str) -> Result<Request, ServerError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens
        .next()
        .ok_or_else(|| ServerError::Spec("empty request".to_owned()))?;
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| ServerError::Spec(format!("expected key=value, got '{token}'")))?;
        if fields.insert(key, value).is_some() {
            return Err(ServerError::Spec(format!("duplicate key '{key}'")));
        }
    }
    match verb {
        "submit" => parse_submit(&mut fields),
        "stats" | "metrics" | "shutdown" => {
            if let Some(key) = fields.keys().next() {
                return Err(ServerError::Spec(format!(
                    "'{verb}' takes no fields, got '{key}'"
                )));
            }
            Ok(match verb {
                "stats" => Request::Stats,
                "metrics" => Request::Metrics,
                _ => Request::Shutdown,
            })
        }
        other => Err(ServerError::Spec(format!("unknown request '{other}'"))),
    }
}

fn parse_submit(fields: &mut HashMap<&str, &str>) -> Result<Request, ServerError> {
    let mut take = |key: &str| fields.remove(key).map(str::to_owned);
    let required = |key: &str, value: Option<String>| {
        value.ok_or_else(|| ServerError::Spec(format!("missing required key '{key}'")))
    };
    let tenant = required("tenant", take("tenant"))?;
    let target = required("target", take("target"))?;
    let analysis = AnalysisSel::parse(&required("analysis", take("analysis"))?)?;
    let traces = parse_u64("traces", &required("traces", take("traces"))?)?;
    let executions_per_trace = take("executions")
        .map(|v| parse_u64("executions", &v))
        .transpose()?
        .unwrap_or(8);
    let seed = take("seed")
        .map(|v| parse_u64("seed", &v))
        .transpose()?
        .unwrap_or(0xdac_2018);
    let bare = GaussianNoise::bare_metal();
    let sd = take("noise-sd")
        .map(|v| parse_f64("noise-sd", &v))
        .transpose()?
        .unwrap_or(bare.sd);
    let baseline = take("noise-baseline")
        .map(|v| parse_f64("noise-baseline", &v))
        .transpose()?
        .unwrap_or(bare.baseline);
    let weight = take("weight")
        .map(|v| parse_u64("weight", &v))
        .transpose()?
        .map(|w| u32::try_from(w).unwrap_or(u32::MAX));
    if let Some(key) = fields.keys().next() {
        return Err(ServerError::Spec(format!("unknown key '{key}'")));
    }
    Ok(Request::Submit {
        spec: CampaignSpec {
            tenant,
            target,
            analysis,
            traces,
            executions_per_trace,
            seed,
            noise: GaussianNoise { sd, baseline },
        },
        weight,
    })
}

/// Formats one event as its wire line.
#[must_use]
pub fn format_event(event: &Event) -> String {
    match event {
        Event::Accepted { job, coalesced } => {
            format!("accepted job={job} coalesced={coalesced}")
        }
        Event::Progress { job, snapshot } => {
            let head = format!(
                "progress job={job} traces={}/{}",
                snapshot.traces, snapshot.total
            );
            match &snapshot.detail {
                ProgressDetail::Cpa {
                    rank,
                    peak,
                    disclosure,
                } => {
                    let disclosure = match disclosure {
                        Disclosure::Measured(at) => format!("{at}"),
                        Disclosure::Estimated(n) => format!("~{n}"),
                        Disclosure::Pending => "pending".to_owned(),
                    };
                    format!("{head} rank={rank} peak={peak:.6} disclosure={disclosure}")
                }
                ProgressDetail::Tvla { max_t } => match max_t {
                    Some(t) => format!("{head} max-t={t:.6}"),
                    None => format!("{head} max-t=pending"),
                },
            }
        }
        Event::Final { job, line } => format!("final job={job} {line}"),
        Event::Failed { job, message } => format!("failed job={job} {message}"),
        Event::Done { job } => format!("done job={job}"),
    }
}

/// Formats the stats line. New fields are only ever appended, so
/// clients splitting on `key=value` pairs keep working.
#[must_use]
pub fn format_stats(stats: &ServerStats) -> String {
    format!(
        "stats submitted={} coalesced={} rejected={} completed={} failed={} \
         slices={} store-served={} queue-peak={}",
        stats.submitted,
        stats.coalesced,
        stats.rejected,
        stats.completed,
        stats.failed,
        stats.slices,
        stats.store_served,
        stats.queue_peak,
    )
}

/// The bare verdict carried by a `final` event line, if `line` is one —
/// the exact text the one-shot portfolio prints for the same spec.
#[must_use]
pub fn final_verdict(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("final job=")?;
    let (_, verdict) = rest.split_once(' ')?;
    Some(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_roundtrips_with_defaults() {
        let req = parse_request(
            "submit tenant=ci target=aes128 analysis=hw traces=150 \
             executions=2 seed=0xdac2018 noise-sd=2.0 noise-baseline=30.0",
        )
        .expect("valid line");
        let Request::Submit { spec, weight } = req else {
            panic!("not a submit");
        };
        assert_eq!(spec, CampaignSpec::quick("ci"));
        assert_eq!(weight, None);

        // Defaults: portfolio's executions/seed/noise.
        let Request::Submit { spec, .. } =
            parse_request("submit tenant=t target=present80 analysis=tvla traces=20").unwrap()
        else {
            panic!("not a submit");
        };
        assert_eq!(spec.executions_per_trace, 8);
        assert_eq!(spec.seed, 0xdac_2018);
        assert_eq!(spec.noise, GaussianNoise::bare_metal());
    }

    #[test]
    fn strict_parsing_rejects_deviations() {
        for bad in [
            "",
            "submit",
            "submit tenant=t target=aes128 analysis=hw",
            "submit tenant=t target=aes128 analysis=hw traces=abc",
            "submit tenant=t target=aes128 analysis=hw traces=10 traces=20",
            "submit tenant=t target=aes128 analysis=hw traces=10 lanes=2",
            "submit tenant=t target=aes128 analysis=cpa traces=10",
            "submit orphan",
            "stats verbose=yes",
            "metrics format=json",
            "reboot",
        ] {
            assert!(parse_request(bad).is_err(), "accepted: '{bad}'");
        }
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("metrics").unwrap(), Request::Metrics);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
    }

    #[test]
    fn final_lines_carry_the_bare_verdict() {
        let line = "final job=3 [aes128] HW(SubBytes): SUCCESS (recovered 0x7e, true 0x7e, rank 0)";
        assert_eq!(
            final_verdict(line),
            Some("[aes128] HW(SubBytes): SUCCESS (recovered 0x7e, true 0x7e, rank 0)")
        );
        assert_eq!(final_verdict("done job=3"), None);
    }
}
