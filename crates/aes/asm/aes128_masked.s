; First-order Boolean-masked AES-128 for the simulated Cortex-A7-like
; core — the countermeasure the DAC 2018 paper's Section 4.2 reasons
; about, implemented so that it is *provably first-order secure at the
; ISA level*:
;
;   * masked S-box by table re-computation: each encryption draws a
;     table-input mask `min` and a table-output mask `mout` and rebuilds
;     MTAB[y] = SBOX[y ^ min] ^ mout (Herbst et al., CHES 2006 style);
;   * per-row MixColumns masks m0..m3: before MixColumns the state is
;     re-masked row-wise from `mout` to m0..m3, so the 4-way XOR inside
;     the column transform combines bytes carrying *different* masks and
;     its row sums stay masked (a uniform mask would cancel there);
;   * share refresh between rounds: after AddRoundKey the state is
;     re-masked from the MixColumns output masks m0'..m3' (computed by
;     running the column transform once over the mask column) back to
;     the table-input mask `min`.
;
; Every architectural intermediate between the trigger edges is blinded
; by at least one fresh random mask — value-based (ISA-level) first-order
; analysis finds nothing. What this schedule does NOT control is the
; micro-architecture: SubBytes still stores its masked outputs
; back-to-back, and because both bytes of a store pair carry the *same*
; output mask `mout`, the transition on the LSU store-data path (IS/EX
; operand buffer, operand bus, align buffer) is
;     HD(S[x_i] ^ mout, S[x_j] ^ mout)  =  HD(S[x_i], S[x_j])
; — the mask cancels, and the Figure 4 consecutive-store model attacks
; the masked implementation as if it were unprotected. The `masked`
; experiment binary demonstrates exactly that, and the `sca-sched`
; hardening pass (public scrub stores between share stores) removes it.
;
; Memory contract with the Rust harness (crates/aes/src/masked.rs):
;   STATE  0x1000  16-byte block, in/out, FIPS-197 byte order
;   RK     0x1100  176 bytes of expanded round keys
;   SBOX   0x1200  256-byte S-box table (unmasked reference)
;   MASKS  0x1300  6 mask bytes: min, mout, m0, m1, m2, m3
;   DELTA  0x1308  8 derived re-mask bytes (pre-MC row deltas, post-ARK
;                  row deltas) — computed here, not staged
;   MCOL   0x1310  4-byte scratch column for deriving m0'..m3'
;   SCRUB  0x3000  public scrub cell (scheduler contract, see below)
;   MTAB   0x1400  256-byte re-computed masked S-box table
; The harness stages RK/SBOX once and rewrites STATE/MASKS per run.
;
; Scheduler contract: r6 (public zero) and r10 (address of SCRUB) are
; initialized below and never otherwise used, so the `sca-sched`
; hardening passes may insert `strb r6, [r10]` / `eor r6, r6, r6`
; scrub instructions anywhere without changing the computation.

; (DELTA = MASKS + 8 and MCOL = MASKS + 16 are materialized with an
; add, as they are not rotated-8-bit encodable immediates.)
        .equ  STATE, 0x1000
        .equ  RK,    0x1100
        .equ  SBOX,  0x1200
        .equ  MASKS, 0x1300
        .equ  SCRUB, 0x3000
        .equ  MTAB,  0x1400
        .equ  STACK, 0x4000

start:  mov   sp, #STACK
        mov   r6, #0            ; public scrub value (sched contract)
        mov   r10, #SCRUB       ; public scrub cell (sched contract)
        bl    remask_table      ; MTAB[y] = SBOX[y ^ min] ^ mout
        bl    mask_sched        ; derive the row re-mask deltas
        trig  #1
        mov   r4, #STATE
        bl    mask_state        ; state ^= min
        mov   r7, #RK
        bl    addkey            ; whitening key; state masked with min
        mov   r8, #9
round:  bl    subbytes          ; masked table: min -> mout
        bl    shiftrows         ; row permutation, mask unchanged
        bl    premc             ; rows: mout -> m0..m3
        bl    mixcolumns        ; rows: m0..m3 -> m0'..m3'
        bl    addkey
        bl    postmc            ; rows: m0'..m3' -> min (share refresh)
        subs  r8, r8, #1
        bne   round
        bl    subbytes          ; final round: min -> mout
        bl    shiftrows
        bl    addkey
        bl    unmask            ; state ^= mout -> public ciphertext
        trig  #0
        halt

; --- masked table re-computation (outside the trigger window) --------
; MTAB[y] = SBOX[y ^ min] ^ mout for y = 0..255.
remask_table:
        mov   r2, #MASKS
        ldrb  r0, [r2]          ; min
        ldrb  r1, [r2, #1]      ; mout
        mov   r2, #SBOX
        mov   r3, #MTAB
        mov   r5, #0            ; y
rt_loop:
        eor   r9, r5, r0        ; y ^ min
        ldrb  r9, [r2, r9]      ; SBOX[y ^ min]
        eor   r9, r9, r1        ; ^ mout
        strb  r9, [r3, r5]      ; MTAB[y]
        add   r5, r5, #1
        cmp   r5, #0x100
        bne   rt_loop
        bx    lr

; --- mask schedule: m0'..m3' and the two per-row delta tables --------
; Runs the MixColumns column transform once over [m0..m3] (mask bytes
; are public randomness, never combined with the state here), then
; stores DELTA[r] = mout ^ m_r and DELTA[4+r] = m_r' ^ min.
mask_sched:
        push  {lr}
        mov   r2, #MASKS
        mov   r3, #MASKS
        add   r3, r3, #0x10     ; MCOL
        ldrb  r0, [r2, #2]      ; m0
        strb  r0, [r3]
        ldrb  r0, [r2, #3]      ; m1
        strb  r0, [r3, #1]
        ldrb  r0, [r2, #4]      ; m2
        strb  r0, [r3, #2]
        ldrb  r0, [r2, #5]      ; m3
        strb  r0, [r3, #3]
        mov   r12, r3           ; one column, in place
        mov   r9, #1
        bl    mc_cols           ; MCOL <- m0'..m3'
        mov   r2, #MASKS
        ldrb  r0, [r2]          ; min
        ldrb  r1, [r2, #1]      ; mout
        mov   r3, #MASKS
        add   r3, r3, #8        ; DELTA
        mov   r5, #MASKS
        add   r5, r5, #0x10     ; MCOL
        mov   r11, #0           ; row
ds_loop:
        add   r12, r11, #2
        ldrb  r9, [r2, r12]     ; m_r
        eor   r9, r9, r1        ; ^ mout
        strb  r9, [r3, r11]     ; DELTA[r]
        ldrb  r9, [r5, r11]     ; m_r'
        eor   r9, r9, r0        ; ^ min
        add   r12, r11, #4
        strb  r9, [r3, r12]     ; DELTA[4 + r]
        add   r11, r11, #1
        cmp   r11, #4
        bne   ds_loop
        pop   {pc}

; --- uniform state XOR helpers ---------------------------------------
; xor16 XORs the byte in r1 into all 16 state bytes (r4 = state base).
mask_state:
        mov   r2, #MASKS
        ldrb  r1, [r2]          ; min
        b     xor16
unmask:
        mov   r2, #MASKS
        ldrb  r1, [r2, #1]      ; mout
xor16:  mov   r3, r4
        mov   r0, #16
x16_loop:
        ldrb  r5, [r3]
        eor   r5, r5, r1
        strb  r5, [r3], #1
        subs  r0, r0, #1
        bne   x16_loop
        bx    lr

; --- row-wise re-masking ---------------------------------------------
; state[i] ^= DELTA[table + (i & 3)]; the state is column-major, so
; i & 3 is the row index.
premc:  mov   r2, #MASKS
        add   r2, r2, #8        ; DELTA
        b     xorrows
postmc: mov   r2, #MASKS
        add   r2, r2, #12       ; DELTA + 4
xorrows:
        mov   r3, r4
        mov   r0, #0
xr_loop:
        and   r1, r0, #3        ; row
        ldrb  r5, [r2, r1]      ; delta for this row
        ldrb  r9, [r3]
        eor   r9, r9, r5
        strb  r9, [r3], #1
        add   r0, r0, #1
        cmp   r0, #16
        bne   xr_loop
        bx    lr

; --- AddRoundKey: state ^= *r7, word-wise; r7 += 16 ------------------
addkey: ldr   r0, [r4]
        ldr   r1, [r7], #4
        eor   r0, r0, r1
        str   r0, [r4]
        ldr   r0, [r4, #4]
        ldr   r1, [r7], #4
        eor   r0, r0, r1
        str   r0, [r4, #4]
        ldr   r0, [r4, #8]
        ldr   r1, [r7], #4
        eor   r0, r0, r1
        str   r0, [r4, #8]
        ldr   r0, [r4, #12]
        ldr   r1, [r7], #4
        eor   r0, r0, r1
        str   r0, [r4, #12]
        bx    lr

; --- SubBytes: state[i] = MTAB[state[i]], i = 0..15 in order ---------
; Identical schedule to the unprotected implementation: the next input
; byte is fetched before the current table output is stored, and the
; outputs stream through the LSU's store-data path back to back — the
; consecutive-store pair whose transition cancels the shared `mout`.
subbytes:
        mov   r2, #MTAB
        mov   r3, r4            ; read pointer
        mov   r12, r4           ; write pointer
        mov   r0, #7
        ldrb  r1, [r3], #1      ; x0 (masked min)
        ldrb  r1, [r2, r1]      ; s0 = MTAB[x0] (masked mout)
        ldrb  r9, [r3], #1      ; x1
        ldrb  r9, [r2, r9]      ; s1
sb_loop:
        ldrb  r5, [r3], #1      ; x(i+2)
        ldrb  r11, [r3], #1     ; x(i+3)
        strb  r1, [r12], #1     ; store s(i)
        strb  r9, [r12], #1     ; store s(i+1), back to back
        ldrb  r5, [r2, r5]      ; s(i+2)
        ldrb  r11, [r2, r11]    ; s(i+3)
        mov   r1, r5
        mov   r9, r11
        subs  r0, r0, #1
        bne   sb_loop
        strb  r1, [r12], #1     ; store s14
        strb  r9, [r12], #1     ; store s15
        bx    lr

; --- ShiftRows: row r rotates left by r (state is column-major) ------
shiftrows:
        ldrb  r0, [r4, #1]      ; row 1: rotate left 1
        ldrb  r1, [r4, #5]
        ldrb  r2, [r4, #9]
        ldrb  r3, [r4, #13]
        strb  r1, [r4, #1]
        strb  r2, [r4, #5]
        strb  r3, [r4, #9]
        strb  r0, [r4, #13]
        ldrb  r0, [r4, #2]      ; row 2: rotate left 2 (swap pairs)
        ldrb  r1, [r4, #6]
        ldrb  r2, [r4, #10]
        ldrb  r3, [r4, #14]
        strb  r2, [r4, #2]
        strb  r3, [r4, #6]
        strb  r0, [r4, #10]
        strb  r1, [r4, #14]
        ldrb  r0, [r4, #3]      ; row 3: rotate left 3 (= right 1)
        ldrb  r1, [r4, #7]
        ldrb  r2, [r4, #11]
        ldrb  r3, [r4, #15]
        strb  r3, [r4, #3]
        strb  r0, [r4, #7]
        strb  r1, [r4, #11]
        strb  r2, [r4, #15]
        bx    lr

; --- MixColumns: rows carry distinct masks m0..m3 --------------------
; The 4-way XOR `t` combines bytes with four different masks, so it is
; blinded by m0^m1^m2^m3; each xtime input pairs two different row
; masks. mc_cols transforms r9 columns starting at r12 (mask_sched
; reuses it for the one-column mask transform).
mixcolumns:
        push  {lr}
        mov   r12, r4           ; column pointer
        mov   r9, #4            ; column counter
        bl    mc_cols
        pop   {pc}
mc_cols:
        push  {lr}
mc_col: ldrb  r2, [r12]         ; a0
        ldrb  r3, [r12, #1]     ; a1
        ldrb  r5, [r12, #2]     ; a2
        ldrb  r1, [r12, #3]     ; a3
        eor   r11, r2, r3
        eor   r0, r5, r1
        eor   r11, r11, r0      ; t
        eor   r0, r2, r3
        bl    xtime
        eor   r0, r0, r11
        eor   r0, r0, r2        ; new a0
        push  {r0}
        eor   r0, r3, r5
        bl    xtime
        eor   r0, r0, r11
        eor   r0, r0, r3        ; new a1
        push  {r0}
        eor   r0, r5, r1
        bl    xtime
        eor   r0, r0, r11
        eor   r0, r0, r5        ; new a2
        push  {r0}
        eor   r0, r1, r2
        bl    xtime
        eor   r0, r0, r11
        eor   r0, r0, r1        ; new a3
        strb  r0, [r12, #3]
        pop   {r0}
        strb  r0, [r12, #2]
        pop   {r0}
        strb  r0, [r12, #1]
        pop   {r0}
        strb  r0, [r12]
        add   r12, r12, #4
        subs  r9, r9, #1
        bne   mc_col
        pop   {pc}

; --- xtime: GF(2^8) doubling, branchless shift-reduce ----------------
; arg/result in r0; spills its scratch register.
xtime:  push  {r1}
        lsl   r0, r0, #1
        lsr   r1, r0, #8        ; carried-out bit, 0 or 1
        rsb   r1, r1, #0        ; 0x00000000 or 0xffffffff
        and   r1, r1, #0x1b
        eor   r0, r0, r1
        and   r0, r0, #0xff
        pop   {r1}
        bx    lr
