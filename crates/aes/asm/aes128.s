; AES-128 encryption for the simulated Cortex-A7-like core.
;
; Structured like the compiled reference implementation the DAC 2018
; paper attacks:
;   * table-based SubBytes: one load + one store per state byte, walking
;     the state bytes in order 0..15 (the consecutive-store sequence the
;     Figure 4 HD model targets);
;   * ShiftRows composed from one-byte loads and stores;
;   * MixColumns through a non-inlined shift-reduce `xtime` subroutine
;     with stack spills around each call.
;
; The code is constant-time by construction: no data-dependent branches
; or addresses beyond the warm, in-cache S-box lookups, so the only
; input dependence is in the leaked values themselves.
;
; Memory contract with the Rust harness (crates/aes/src/harness.rs):
;   STATE  0x1000  16-byte block, in/out, FIPS-197 byte order
;   RK     0x1100  176 bytes of expanded round keys
;   SBOX   0x1200  256-byte S-box table
; The harness stages RK/SBOX once and rewrites STATE before each run.

        .equ  STATE, 0x1000
        .equ  RK,    0x1100
        .equ  SBOX,  0x1200
        .equ  STACK, 0x4000

start:  mov   sp, #STACK
        trig  #1
        mov   r4, #STATE
        mov   r6, #RK
        bl    addkey            ; whitening key, advances r6 to round 1
        mov   r7, #9
round:  bl    subbytes
        bl    shiftrows
        bl    mixcolumns
        bl    addkey
        subs  r7, r7, #1
        bne   round
        bl    subbytes          ; final round: no MixColumns
        bl    shiftrows
        bl    addkey
        trig  #0
        halt

; --- AddRoundKey: state ^= *r6, word-wise; r6 += 16 ------------------
addkey: ldr   r0, [r4]
        ldr   r1, [r6], #4
        eor   r0, r0, r1
        str   r0, [r4]
        ldr   r0, [r4, #4]
        ldr   r1, [r6], #4
        eor   r0, r0, r1
        str   r0, [r4, #4]
        ldr   r0, [r4, #8]
        ldr   r1, [r6], #4
        eor   r0, r0, r1
        str   r0, [r4, #8]
        ldr   r0, [r4, #12]
        ldr   r1, [r6], #4
        eor   r0, r0, r1
        str   r0, [r4, #12]
        bx    lr

; --- SubBytes: state[i] = SBOX[state[i]], i = 0..15 in order ---------
; Software-pipelined: the next input byte is fetched before the current
; S-box output is stored, so the substituted bytes stream through the
; LSU's store-data path and the align buffer back to back — the
; consecutive-store sequence the Figure 4 HD model targets.
subbytes:
        mov   r2, #SBOX
        mov   r3, r4            ; read pointer
        mov   r12, r4           ; write pointer
        mov   r0, #7
        ldrb  r1, [r3], #1      ; x0
        ldrb  r1, [r2, r1]      ; s0 = SBOX[x0]
        ldrb  r9, [r3], #1      ; x1
        ldrb  r9, [r2, r9]      ; s1
sb_loop:
        ldrb  r5, [r3], #1      ; x(i+2)
        ldrb  r11, [r3], #1     ; x(i+3)
        strb  r1, [r12], #1     ; store s(i)
        strb  r9, [r12], #1     ; store s(i+1), back to back
        ldrb  r5, [r2, r5]      ; s(i+2)
        ldrb  r11, [r2, r11]    ; s(i+3)
        mov   r1, r5
        mov   r9, r11
        subs  r0, r0, #1
        bne   sb_loop
        strb  r1, [r12], #1     ; store s14
        strb  r9, [r12], #1     ; store s15
        bx    lr

; --- ShiftRows: row r rotates left by r (state is column-major) ------
shiftrows:
        ldrb  r0, [r4, #1]      ; row 1: rotate left 1
        ldrb  r1, [r4, #5]
        ldrb  r2, [r4, #9]
        ldrb  r3, [r4, #13]
        strb  r1, [r4, #1]
        strb  r2, [r4, #5]
        strb  r3, [r4, #9]
        strb  r0, [r4, #13]
        ldrb  r0, [r4, #2]      ; row 2: rotate left 2 (swap pairs)
        ldrb  r1, [r4, #6]
        ldrb  r2, [r4, #10]
        ldrb  r3, [r4, #14]
        strb  r2, [r4, #2]
        strb  r3, [r4, #6]
        strb  r0, [r4, #10]
        strb  r1, [r4, #14]
        ldrb  r0, [r4, #3]      ; row 3: rotate left 3 (= right 1)
        ldrb  r1, [r4, #7]
        ldrb  r2, [r4, #11]
        ldrb  r3, [r4, #15]
        strb  r3, [r4, #3]
        strb  r0, [r4, #7]
        strb  r1, [r4, #11]
        strb  r2, [r4, #15]
        bx    lr

; --- MixColumns: per column, b = xtime(a); spills through the stack --
; new0 = a0 ^ t ^ xtime(a0^a1), t = a0^a1^a2^a3, and cyclically on.
mixcolumns:
        push  {lr}
        mov   r8, r4            ; column pointer
        mov   r9, #4            ; column counter
mc_col: ldrb  r2, [r8]          ; a0
        ldrb  r3, [r8, #1]      ; a1
        ldrb  r5, [r8, #2]      ; a2
        ldrb  r10, [r8, #3]     ; a3
        eor   r11, r2, r3
        eor   r12, r5, r10
        eor   r11, r11, r12     ; t
        eor   r0, r2, r3
        bl    xtime
        eor   r0, r0, r11
        eor   r0, r0, r2        ; new a0
        push  {r0}
        eor   r0, r3, r5
        bl    xtime
        eor   r0, r0, r11
        eor   r0, r0, r3        ; new a1
        push  {r0}
        eor   r0, r5, r10
        bl    xtime
        eor   r0, r0, r11
        eor   r0, r0, r5        ; new a2
        push  {r0}
        eor   r0, r10, r2
        bl    xtime
        eor   r0, r0, r11
        eor   r0, r0, r10       ; new a3
        strb  r0, [r8, #3]
        pop   {r0}
        strb  r0, [r8, #2]
        pop   {r0}
        strb  r0, [r8, #1]
        pop   {r0}
        strb  r0, [r8]
        add   r8, r8, #4
        subs  r9, r9, #1
        bne   mc_col
        pop   {pc}

; --- xtime: GF(2^8) doubling, branchless shift-reduce ----------------
; arg/result in r0; spills its scratch register.
xtime:  push  {r1}
        lsl   r0, r0, #1
        lsr   r1, r0, #8        ; carried-out bit, 0 or 1
        rsb   r1, r1, #0        ; 0x00000000 or 0xffffffff
        and   r1, r1, #0x1b
        eor   r0, r0, r1
        and   r0, r0, #0xff
        pop   {r1}
        bx    lr
