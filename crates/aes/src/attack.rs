//! Full-key recovery orchestration.
//!
//! The paper demonstrates single-byte CPA; a practical attacker chains it
//! over the whole key. This module implements the chaining strategy that
//! matches the implementation's store schedule: SubBytes processes the
//! state in byte *pairs* (lookup two, store two back-to-back), so
//!
//! * even bytes are recovered independently with the Hamming-weight model
//!   ([`SubBytesHw`], the Figure 3 model), and
//! * odd bytes are recovered with the consecutive-stores Hamming-distance
//!   model ([`SubBytesStoreHd`], the Figure 4 model), seeded with the
//!   even byte recovered just before.

use sca_analysis::{cpa_attack, CpaConfig, TraceSet};

use crate::{SubBytesHw, SubBytesStoreHd};

/// Outcome of a full-key recovery.
#[derive(Clone, Debug)]
pub struct RecoveredKey {
    /// The 16 recovered key bytes.
    pub key: [u8; 16],
    /// Rank-0 confirmation margin per byte: peak |corr| of the winner
    /// minus peak |corr| of the runner-up.
    pub margins: [f64; 16],
}

impl RecoveredKey {
    /// Number of bytes matching a reference key.
    pub fn correct_bytes(&self, reference: &[u8; 16]) -> usize {
        self.key
            .iter()
            .zip(reference)
            .filter(|(a, b)| a == b)
            .count()
    }
}

/// Recovers all sixteen key bytes from one trace set.
///
/// Runs sixteen CPA attacks: HW-model for even state bytes, chained
/// HD-store-model for odd bytes. The traces should cover the round-1
/// SubBytes (e.g. `TraceSet::truncated` to the first round).
pub fn recover_full_key(traces: &TraceSet, threads: usize) -> RecoveredKey {
    let config = CpaConfig {
        guesses: 256,
        threads,
    };
    let mut key = [0u8; 16];
    let mut margins = [0.0f64; 16];
    for byte in 0..16 {
        let result = if byte % 2 == 0 {
            cpa_attack(traces, &SubBytesHw { byte }, &config)
        } else {
            cpa_attack(
                traces,
                &SubBytesStoreHd {
                    byte,
                    prev_key: key[byte - 1],
                },
                &config,
            )
        };
        let ranking = result.ranking();
        let winner = ranking[0];
        let runner_up = ranking[1];
        key[byte] = winner as u8;
        margins[byte] = result.peak(winner).1.abs() - result.peak(runner_up).1.abs();
    }
    RecoveredKey { key, margins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AesSim;
    use rand::Rng;
    use sca_power::{
        AcquisitionConfig, GaussianNoise, LeakageWeights, SamplingConfig, TraceSynthesizer,
    };
    use sca_uarch::UarchConfig;

    #[test]
    fn recovers_every_byte_of_the_key() {
        let key = *b"\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f";
        let sim = AesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key).expect("builds");
        let acquisition = AcquisitionConfig {
            traces: 300,
            executions_per_trace: 1,
            sampling: SamplingConfig::per_cycle(),
            noise: GaussianNoise {
                sd: 2.0,
                baseline: 10.0,
            },
            seed: 5,
            threads: 4,
        };
        let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), acquisition);
        let traces = synth
            .acquire(
                sim.cpu(),
                sim.entry(),
                |rng, _| {
                    let mut pt = vec![0u8; 16];
                    rng.fill(&mut pt[..]);
                    pt
                },
                AesSim::stage_plaintext,
            )
            .expect("acquires")
            .truncated(380);
        let recovered = recover_full_key(&traces, 4);
        assert_eq!(
            recovered.key,
            key,
            "full key recovery ({}/16 bytes correct)",
            recovered.correct_bytes(&key)
        );
        assert!(recovered.margins.iter().all(|&m| m > 0.0));
    }
}
