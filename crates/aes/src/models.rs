//! The paper's attack-side leakage models for AES.
//!
//! * Figure 3 (bare metal): Hamming weight of a SubBytes output byte —
//!   deliberately microarchitecture-*unaware*, yet effective because the
//!   ALU outputs, MDR and write-back buses all leak HW-shaped signals.
//! * Figure 4 (loaded Linux): Hamming distance between two consecutively
//!   stored SubBytes output bytes — the microarchitecture-aware model
//!   derived from the MDR/align-buffer characterization, which keeps
//!   working at much lower SNR.

use sca_analysis::SelectionFunction;

use crate::sbox::SBOX;

/// `HW(SBOX[pt[byte] ⊕ k])` — the Figure 3 model.
#[derive(Clone, Copy, Debug)]
pub struct SubBytesHw {
    /// Targeted state byte index (0..16).
    pub byte: usize,
}

impl SelectionFunction for SubBytesHw {
    fn predict(&self, input: &[u8], guess: u8) -> f64 {
        f64::from(SBOX[(input[self.byte] ^ guess) as usize].count_ones())
    }

    fn name(&self) -> String {
        format!("HW(SubBytes(pt[{}] ^ k))", self.byte)
    }
}

/// `HD(SBOX[pt[byte-1] ⊕ k_known], SBOX[pt[byte] ⊕ k])` — the Figure 4
/// model: the Hamming distance between two consecutive SubBytes stores.
///
/// The previous byte's key must already be known (recovered first, e.g.
/// with [`SubBytesHw`]); the attack then proceeds byte-by-byte along the
/// state, exactly like the store sequence in the implementation.
#[derive(Clone, Copy, Debug)]
pub struct SubBytesStoreHd {
    /// Targeted state byte index (1..16).
    pub byte: usize,
    /// Already-recovered key byte at `byte - 1`.
    pub prev_key: u8,
}

impl SelectionFunction for SubBytesStoreHd {
    fn predict(&self, input: &[u8], guess: u8) -> f64 {
        let prev = SBOX[(input[self.byte - 1] ^ self.prev_key) as usize];
        let cur = SBOX[(input[self.byte] ^ guess) as usize];
        f64::from((prev ^ cur).count_ones())
    }

    fn name(&self) -> String {
        format!("HD(SubBytes stores {} -> {})", self.byte - 1, self.byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_model_matches_direct_computation() {
        let model = SubBytesHw { byte: 2 };
        let mut input = [0u8; 16];
        input[2] = 0x53;
        // SBOX[0x53 ^ 0x00] = 0xed -> HW 6
        assert_eq!(model.predict(&input, 0x00), 6.0);
        // SBOX[0x53 ^ 0x53] = SBOX[0] = 0x63 -> HW 4
        assert_eq!(model.predict(&input, 0x53), 4.0);
    }

    #[test]
    fn hd_model_uses_both_bytes() {
        let model = SubBytesStoreHd {
            byte: 1,
            prev_key: 0x00,
        };
        let mut input = [0u8; 16];
        input[0] = 0x10;
        input[1] = 0x20;
        let expected = f64::from((SBOX[0x10usize] ^ SBOX[(0x20u8 ^ 0x42) as usize]).count_ones());
        assert_eq!(model.predict(&input, 0x42), expected);
    }

    #[test]
    fn names_identify_bytes() {
        assert!(SubBytesHw { byte: 5 }.name().contains('5'));
        assert!(SubBytesStoreHd {
            byte: 3,
            prev_key: 0
        }
        .name()
        .contains("2 -> 3"));
    }
}
