//! # sca-aes — the attack target
//!
//! AES-128 three ways:
//!
//! * a host-side golden model ([`encrypt_block`], [`expand_key`]) verified
//!   against FIPS-197;
//! * a complete assembly implementation for the simulated superscalar CPU
//!   ([`AesSim`], [`AES128_ASM`]), structured like the compiled reference
//!   code the paper attacks — table-based SubBytes (load + store per
//!   byte), ShiftRows composed with one-byte shifts, MixColumns through a
//!   non-inlined shift-reduce `xtime` with stack spills;
//! * a first-order Boolean-masked implementation ([`MaskedAesSim`],
//!   [`AES128_MASKED_ASM`]): masked S-box by table re-computation,
//!   per-row MixColumns masks, share refresh between rounds — secure
//!   under ISA-level analysis, and the countermeasure target of the
//!   `masked` experiment;
//! * the paper's two attack models ([`SubBytesHw`] for Figure 3,
//!   [`SubBytesStoreHd`] for Figure 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attack;
mod golden;
mod harness;
mod masked;
mod models;
mod sbox;

pub use attack::{recover_full_key, RecoveredKey};
pub use golden::{
    encrypt_block, encrypt_with_round_keys, expand_key, round1_subbytes, xtime, ROUNDS,
    ROUND_KEY_BYTES,
};
pub use harness::{aes128_program, AesSim, AES128_ASM, RK_ADDR, SBOX_ADDR, STATE_ADDR};
pub use masked::{
    aes128_masked_program, MaskedAesSim, AES128_MASKED_ASM, MASKED_INPUT_LEN, MASKS_ADDR,
    MASK_BYTES, MTAB_ADDR, SCRUB_ADDR,
};
pub use models::{SubBytesHw, SubBytesStoreHd};
pub use sbox::{INV_SBOX, SBOX};
