//! Running the first-order masked AES-128 on the simulated CPU.
//!
//! The assembly (`asm/aes128_masked.s`) implements table-recomputation
//! Boolean masking: six fresh mask bytes per encryption (`min`, `mout`
//! for the masked S-box table, `m0..m3` for the per-row MixColumns
//! masks), a re-computed masked table, and a share refresh between
//! rounds. Masking is *output-transparent*: whatever masks are staged,
//! the ciphertext equals plain AES-128 — the correctness tests and a
//! proptest pin that share-randomization invariance.
//!
//! The harness treats a campaign input as `plaintext ‖ masks`
//! ([`MASKED_INPUT_LEN`] bytes): the attack models only ever read the
//! first 16 bytes, exactly like a real attacker who sees plaintexts but
//! not the victim's mask RNG.

use sca_isa::Program;
use sca_uarch::{Cpu, NullObserver, PipelineObserver, UarchConfig, UarchError};

use crate::{expand_key, RK_ADDR, SBOX, SBOX_ADDR, STATE_ADDR};

/// Address of the six staged mask bytes (`min, mout, m0..m3`).
pub const MASKS_ADDR: u32 = 0x1300;
/// Address of the public scrub cell the `sca-sched` hardening passes
/// store to (the program keeps `r10` pointed here).
pub const SCRUB_ADDR: u32 = 0x3000;
/// Address of the re-computed masked S-box table.
pub const MTAB_ADDR: u32 = 0x1400;
/// Mask bytes drawn per encryption.
pub const MASK_BYTES: usize = 6;
/// Campaign input length: 16 plaintext bytes followed by the masks.
pub const MASKED_INPUT_LEN: usize = 16 + MASK_BYTES;

/// The embedded assembly source of the masked implementation.
pub const AES128_MASKED_ASM: &str = include_str!("../asm/aes128_masked.s");

/// Assembles the masked AES-128 program (memoized: assembled once per
/// process, then cloned).
///
/// # Errors
///
/// Propagates assembler errors (which would indicate a packaging bug, as
/// the source is embedded).
pub fn aes128_masked_program() -> Result<Program, sca_isa::IsaError> {
    static CACHE: std::sync::OnceLock<Program> = std::sync::OnceLock::new();
    sca_isa::assemble_cached(AES128_MASKED_ASM, &CACHE)
}

/// A masked AES-128 instance running on the simulated superscalar CPU.
///
/// ```
/// use sca_aes::{encrypt_block, MaskedAesSim};
/// use sca_uarch::UarchConfig;
///
/// let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";
/// let mut sim = MaskedAesSim::new(UarchConfig::cortex_a7(), &key)?;
/// let pt = [0u8; 16];
/// let ct = sim.encrypt_masked(&pt, &[0x5a, 0xc3, 0x11, 0x22, 0x33, 0x44])?;
/// assert_eq!(ct, encrypt_block(&key, &pt)); // masks never change the output
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct MaskedAesSim {
    cpu: Cpu,
    entry: u32,
}

impl MaskedAesSim {
    /// Builds a CPU running the embedded masked implementation.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from loading or the warm-up run.
    pub fn new(config: UarchConfig, key: &[u8; 16]) -> Result<MaskedAesSim, UarchError> {
        let program = aes128_masked_program().expect("embedded masked AES source assembles");
        MaskedAesSim::from_program(config, key, &program)
    }

    /// Builds a CPU running an explicit program image — the hook the
    /// countermeasure experiments use to run a `sca-sched`-hardened
    /// rewrite of the masked implementation under the same harness.
    ///
    /// The program must honour the memory contract of
    /// `asm/aes128_masked.s` (STATE/RK/SBOX/MASKS addresses).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from loading or the warm-up run.
    pub fn from_program(
        config: UarchConfig,
        key: &[u8; 16],
        program: &Program,
    ) -> Result<MaskedAesSim, UarchError> {
        let mut cpu = Cpu::new(config);
        cpu.load(program)?;
        cpu.mem_mut().write_bytes(SBOX_ADDR, &SBOX)?;
        let rk = expand_key(key);
        cpu.mem_mut().write_bytes(RK_ADDR, &rk)?;
        let mut sim = MaskedAesSim {
            cpu,
            entry: program.entry(),
        };
        // Warm-up run (non-trivial masks so the masked-table and delta
        // paths are all exercised and every touched line is cached).
        sim.encrypt_masked(&[0u8; 16], &[0xa5, 0x3c, 0x81, 0x42, 0x24, 0x18])?;
        Ok(sim)
    }

    /// Replaces the key by staging new round keys.
    ///
    /// # Errors
    ///
    /// Propagates memory faults (cannot happen with the fixed layout).
    pub fn set_key(&mut self, key: &[u8; 16]) -> Result<(), UarchError> {
        let rk = expand_key(key);
        self.cpu.mem_mut().write_bytes(RK_ADDR, &rk)
    }

    /// Encrypts one block with explicit masks (no observer).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn encrypt_masked(
        &mut self,
        plaintext: &[u8; 16],
        masks: &[u8; MASK_BYTES],
    ) -> Result<[u8; 16], UarchError> {
        let mut input = [0u8; MASKED_INPUT_LEN];
        input[..16].copy_from_slice(plaintext);
        input[16..].copy_from_slice(masks);
        self.encrypt_observed(&input, &mut NullObserver)
    }

    /// Encrypts one staged `plaintext ‖ masks` input while streaming
    /// pipeline activity to an observer (e.g. a power recorder).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn encrypt_observed(
        &mut self,
        input: &[u8],
        observer: &mut dyn PipelineObserver,
    ) -> Result<[u8; 16], UarchError> {
        self.cpu.restart(self.entry);
        Self::stage_input(&mut self.cpu, input);
        self.cpu.run(observer)?;
        let mut ct = [0u8; 16];
        ct.copy_from_slice(self.cpu.mem().read_bytes(STATE_ADDR, 16)?);
        Ok(ct)
    }

    /// The underlying CPU (e.g. as a template for trace acquisition).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Program entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Stages a `plaintext ‖ masks` input into a (cloned) CPU — the
    /// `stage` closure used with the `sca-campaign` engine.
    ///
    /// # Panics
    ///
    /// Panics if `input` is shorter than [`MASKED_INPUT_LEN`]
    /// (acquisition inputs always carry the full block plus masks).
    pub fn stage_input(cpu: &mut Cpu, input: &[u8]) {
        cpu.mem_mut()
            .write_bytes(STATE_ADDR, &input[..16])
            .expect("state buffer is mapped");
        cpu.mem_mut()
            .write_bytes(MASKS_ADDR, &input[16..MASKED_INPUT_LEN])
            .expect("mask buffer is mapped");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encrypt_block;
    use sca_uarch::RecordingObserver;

    fn key() -> [u8; 16] {
        *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c"
    }

    #[test]
    fn matches_golden_model_fips_vector_for_mask_corner_cases() {
        let mut sim =
            MaskedAesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key()).unwrap();
        let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
        let expected = *b"\x39\x25\x84\x1d\x02\xdc\x09\xfb\xdc\x11\x85\x97\x19\x6a\x0b\x32";
        for masks in [
            [0u8; 6],
            [0xff; 6],
            [0x01, 0x02, 0x04, 0x08, 0x10, 0x20],
            [0xde, 0xad, 0xbe, 0xef, 0x55, 0xaa],
        ] {
            assert_eq!(
                sim.encrypt_masked(&pt, &masks).unwrap(),
                expected,
                "masks {masks:02x?}"
            );
        }
    }

    #[test]
    fn mask_rekeying_never_changes_ciphertext() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x6a5c);
        let mut sim =
            MaskedAesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key()).unwrap();
        for _ in 0..8 {
            let mut pt = [0u8; 16];
            rng.fill(&mut pt);
            let reference = encrypt_block(&key(), &pt);
            let mut masks = [0u8; MASK_BYTES];
            rng.fill(&mut masks);
            assert_eq!(sim.encrypt_masked(&pt, &masks).unwrap(), reference);
            rng.fill(&mut masks);
            assert_eq!(
                sim.encrypt_masked(&pt, &masks).unwrap(),
                reference,
                "re-drawing the masks flipped a ciphertext bit (pt {pt:02x?})"
            );
        }
    }

    #[test]
    fn rekeying_works() {
        let mut sim =
            MaskedAesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key()).unwrap();
        let other = [0x5au8; 16];
        sim.set_key(&other).unwrap();
        let pt = [7u8; 16];
        assert_eq!(
            sim.encrypt_masked(&pt, &[0x31; 6]).unwrap(),
            encrypt_block(&other, &pt)
        );
    }

    #[test]
    fn timing_is_mask_and_input_independent() {
        // The masked implementation must stay constant-time: loops have
        // fixed trip counts and all tables are warm after construction.
        let mut sim = MaskedAesSim::new(UarchConfig::cortex_a7(), &key()).unwrap();
        let mut cycles = Vec::new();
        for (pt, masks) in [
            ([0u8; 16], [0u8; 6]),
            ([0xff; 16], [0x77; 6]),
            ([0x5a; 16], [0xd1, 0x0e, 0x99, 0x42, 0x07, 0xee]),
        ] {
            let mut input = [0u8; MASKED_INPUT_LEN];
            input[..16].copy_from_slice(&pt);
            input[16..].copy_from_slice(&masks);
            let mut obs = RecordingObserver::new();
            sim.encrypt_observed(&input, &mut obs).unwrap();
            assert_eq!(obs.triggers.len(), 2);
            cycles.push(obs.triggers[1].0 - obs.triggers[0].0);
        }
        assert_eq!(cycles[0], cycles[1]);
        assert_eq!(cycles[1], cycles[2]);
    }

    #[test]
    fn warm_caches_after_construction() {
        let sim = MaskedAesSim::new(UarchConfig::cortex_a7(), &key()).unwrap();
        let mut sim2 = sim.clone();
        let mut obs = RecordingObserver::new();
        let mut input = [0u8; MASKED_INPUT_LEN];
        input[..16].copy_from_slice(&[1u8; 16]);
        input[16..].copy_from_slice(&[0x9c, 0x3f, 0x08, 0x71, 0xaa, 0x02]);
        sim2.encrypt_observed(&input, &mut obs).unwrap();
        assert_eq!(sim2.cpu().stats().dcache_misses, 0, "D-cache warm");
        assert_eq!(sim2.cpu().stats().icache_misses, 0, "I-cache warm");
    }
}
