//! Running the assembly AES-128 on the simulated CPU.

use sca_isa::Program;
use sca_uarch::{Cpu, NullObserver, PipelineObserver, UarchConfig, UarchError};

use crate::{expand_key, ROUND_KEY_BYTES, SBOX};

/// Address of the 16-byte state block in simulator memory.
pub const STATE_ADDR: u32 = 0x1000;
/// Address of the expanded round keys.
pub const RK_ADDR: u32 = 0x1100;
/// Address of the in-memory S-box table.
pub const SBOX_ADDR: u32 = 0x1200;

/// The embedded assembly source of the AES-128 implementation.
pub const AES128_ASM: &str = include_str!("../asm/aes128.s");

/// Assembles the AES-128 program (memoized: the embedded source is
/// assembled once per process, then cloned — campaign workers and
/// repeated target builds stage the image without re-running the
/// assembler).
///
/// # Errors
///
/// Propagates assembler errors (which would indicate a packaging bug, as
/// the source is embedded).
pub fn aes128_program() -> Result<Program, sca_isa::IsaError> {
    static CACHE: std::sync::OnceLock<Program> = std::sync::OnceLock::new();
    sca_isa::assemble_cached(AES128_ASM, &CACHE)
}

/// An AES-128 instance running on the simulated superscalar CPU.
///
/// ```
/// use sca_aes::{encrypt_block, AesSim};
/// use sca_uarch::UarchConfig;
///
/// let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";
/// let mut sim = AesSim::new(UarchConfig::cortex_a7(), &key)?;
/// let pt = [0u8; 16];
/// let ct = sim.encrypt(&pt)?;
/// assert_eq!(ct, encrypt_block(&key, &pt));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct AesSim {
    cpu: Cpu,
    entry: u32,
}

impl AesSim {
    /// Builds a CPU, loads the AES program, stages the S-box and the
    /// expanded `key`, and runs one warm-up encryption so the caches are
    /// hot (the paper measures "the executions following the first one").
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from loading or the warm-up run.
    pub fn new(config: UarchConfig, key: &[u8; 16]) -> Result<AesSim, UarchError> {
        let program = aes128_program().expect("embedded AES source assembles");
        let mut cpu = Cpu::new(config);
        cpu.load(&program)?;
        cpu.mem_mut().write_bytes(SBOX_ADDR, &SBOX)?;
        let rk = expand_key(key);
        cpu.mem_mut().write_bytes(RK_ADDR, &rk)?;
        let mut sim = AesSim {
            cpu,
            entry: program.entry(),
        };
        // Warm-up run.
        sim.encrypt(&[0u8; 16])?;
        Ok(sim)
    }

    /// Replaces the key by staging new round keys.
    ///
    /// # Errors
    ///
    /// Propagates memory faults (cannot happen with the fixed layout).
    pub fn set_key(&mut self, key: &[u8; 16]) -> Result<(), UarchError> {
        let rk = expand_key(key);
        self.cpu.mem_mut().write_bytes(RK_ADDR, &rk)
    }

    /// Raw round keys currently staged.
    ///
    /// # Errors
    ///
    /// Propagates memory faults (cannot happen with the fixed layout).
    pub fn round_keys(&self) -> Result<[u8; ROUND_KEY_BYTES], UarchError> {
        let bytes = self.cpu.mem().read_bytes(RK_ADDR, ROUND_KEY_BYTES as u32)?;
        let mut rk = [0u8; ROUND_KEY_BYTES];
        rk.copy_from_slice(bytes);
        Ok(rk)
    }

    /// Encrypts one block on the simulator (no observer).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn encrypt(&mut self, plaintext: &[u8; 16]) -> Result<[u8; 16], UarchError> {
        self.encrypt_observed(plaintext, &mut NullObserver)
    }

    /// Encrypts one block while streaming pipeline activity to an
    /// observer (e.g. a power recorder).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn encrypt_observed(
        &mut self,
        plaintext: &[u8; 16],
        observer: &mut dyn PipelineObserver,
    ) -> Result<[u8; 16], UarchError> {
        self.cpu.restart(self.entry);
        self.cpu.mem_mut().write_bytes(STATE_ADDR, plaintext)?;
        self.cpu.run(observer)?;
        let mut ct = [0u8; 16];
        ct.copy_from_slice(self.cpu.mem().read_bytes(STATE_ADDR, 16)?);
        Ok(ct)
    }

    /// The underlying CPU (e.g. as a template for trace acquisition).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Program entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Stages a plaintext into a (cloned) CPU — the `stage` closure used
    /// with `sca_power::TraceSynthesizer`.
    ///
    /// # Panics
    ///
    /// Panics if `plaintext` is shorter than 16 bytes (acquisition inputs
    /// are always full blocks).
    pub fn stage_plaintext(cpu: &mut Cpu, plaintext: &[u8]) {
        cpu.mem_mut()
            .write_bytes(STATE_ADDR, &plaintext[..16])
            .expect("state buffer is mapped");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encrypt_block;
    use sca_uarch::RecordingObserver;

    fn key() -> [u8; 16] {
        *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c"
    }

    #[test]
    fn matches_golden_model_fips_vector() {
        let mut sim = AesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key()).unwrap();
        let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
        let ct = sim.encrypt(&pt).unwrap();
        assert_eq!(
            ct,
            *b"\x39\x25\x84\x1d\x02\xdc\x09\xfb\xdc\x11\x85\x97\x19\x6a\x0b\x32"
        );
    }

    #[test]
    fn matches_golden_model_on_random_blocks() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let mut sim = AesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key()).unwrap();
        for _ in 0..12 {
            let mut pt = [0u8; 16];
            rng.fill(&mut pt);
            assert_eq!(
                sim.encrypt(&pt).unwrap(),
                encrypt_block(&key(), &pt),
                "pt {pt:02x?}"
            );
        }
    }

    #[test]
    fn rekeying_works() {
        let mut sim = AesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key()).unwrap();
        let other = [0x5au8; 16];
        sim.set_key(&other).unwrap();
        let pt = [7u8; 16];
        assert_eq!(sim.encrypt(&pt).unwrap(), encrypt_block(&other, &pt));
    }

    #[test]
    fn encryption_runs_inside_trigger_window() {
        let mut sim = AesSim::new(UarchConfig::cortex_a7().with_ideal_memory(), &key()).unwrap();
        let mut obs = RecordingObserver::new();
        sim.encrypt_observed(&[0u8; 16], &mut obs).unwrap();
        assert_eq!(obs.triggers.len(), 2);
        let window = obs.triggers[1].0 - obs.triggers[0].0;
        // One full AES-128: a few thousand cycles on this core.
        assert!(window > 1000, "window {window} cycles");
        assert!(window < 20_000, "window {window} cycles");
    }

    #[test]
    fn timing_is_input_independent() {
        // Table lookups hit warm caches: the implementation should be
        // constant-time in this model (no timing channel confound).
        let mut sim = AesSim::new(UarchConfig::cortex_a7(), &key()).unwrap();
        let mut cycles = Vec::new();
        for pt in [[0u8; 16], [0xff; 16], [0x5a; 16]] {
            let mut obs = RecordingObserver::new();
            sim.encrypt_observed(&pt, &mut obs).unwrap();
            cycles.push(obs.triggers[1].0 - obs.triggers[0].0);
        }
        assert_eq!(cycles[0], cycles[1]);
        assert_eq!(cycles[1], cycles[2]);
    }

    #[test]
    fn warm_caches_after_construction() {
        let sim = AesSim::new(UarchConfig::cortex_a7(), &key()).unwrap();
        let mut sim2 = sim.clone();
        let mut obs = RecordingObserver::new();
        sim2.encrypt_observed(&[1u8; 16], &mut obs).unwrap();
        assert_eq!(sim2.cpu().stats().dcache_misses, 0, "D-cache warm");
        assert_eq!(sim2.cpu().stats().icache_misses, 0, "I-cache warm");
    }
}
