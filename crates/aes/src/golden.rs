//! Host-side AES-128 golden model (FIPS-197).
//!
//! Used to verify the assembly implementation running on the simulated
//! CPU, to expand round keys staged into simulator memory, and by the
//! attack selection functions.

use crate::sbox::SBOX;

/// Number of 32-bit words in an AES-128 key.
const NK: usize = 4;
/// Number of rounds for AES-128.
pub const ROUNDS: usize = 10;
/// Round-key bytes for AES-128 (11 round keys × 16 bytes).
pub const ROUND_KEY_BYTES: usize = 16 * (ROUNDS + 1);

/// Multiplication by `x` in GF(2⁸) with the AES polynomial.
#[inline]
pub fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// AES-128 key schedule: expands a 16-byte key into 176 round-key bytes.
pub fn expand_key(key: &[u8; 16]) -> [u8; ROUND_KEY_BYTES] {
    const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
    let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        w[i].copy_from_slice(chunk);
    }
    for i in NK..4 * (ROUNDS + 1) {
        let mut temp = w[i - 1];
        if i % NK == 0 {
            temp.rotate_left(1);
            for b in &mut temp {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / NK - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - NK][j] ^ temp[j];
        }
    }
    let mut out = [0u8; ROUND_KEY_BYTES];
    for (i, word) in w.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(word);
    }
    out
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

/// Shift row `r` of the column-major state left by `r` positions.
fn shift_rows(state: &mut [u8; 16]) {
    let original = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = original[r + 4 * ((c + r) % 4)];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        let a0 = col[0];
        let mut i = 0;
        while i < 4 {
            let next = if i == 3 { a0 } else { col[i + 1] };
            col[i] ^= t ^ xtime(col[i] ^ next);
            i += 1;
        }
    }
}

/// Encrypts one block with AES-128.
///
/// ```
/// let key = [0u8; 16];
/// let ct = sca_aes::encrypt_block(&key, &[0u8; 16]);
/// assert_eq!(ct[0], 0x66); // FIPS-197-derived known answer
/// ```
pub fn encrypt_block(key: &[u8; 16], plaintext: &[u8; 16]) -> [u8; 16] {
    let rk = expand_key(key);
    encrypt_with_round_keys(&rk, plaintext)
}

/// Encrypts one block given pre-expanded round keys (as staged into the
/// simulator's memory).
pub fn encrypt_with_round_keys(rk: &[u8; ROUND_KEY_BYTES], plaintext: &[u8; 16]) -> [u8; 16] {
    let mut state = *plaintext;
    add_round_key(&mut state, &rk[0..16]);
    for round in 1..ROUNDS {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, &rk[16 * round..16 * round + 16]);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &rk[16 * ROUNDS..]);
    state
}

/// The state after round 1's SubBytes for a given key/plaintext — the
/// intermediate the paper's Figure 3 model targets.
pub fn round1_subbytes(key: &[u8; 16], plaintext: &[u8; 16]) -> [u8; 16] {
    let mut state = *plaintext;
    let rk = expand_key(key);
    add_round_key(&mut state, &rk[0..16]);
    sub_bytes(&mut state);
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex");
        }
        out
    }

    #[test]
    fn fips197_appendix_b() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = hex("3243f6a8885a308d313198a2e0370734");
        let ct = encrypt_block(&key, &pt);
        assert_eq!(ct, hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let pt = hex("00112233445566778899aabbccddeeff");
        let ct = encrypt_block(&key, &pt);
        assert_eq!(ct, hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn key_expansion_known_words() {
        // FIPS-197 Appendix A.1 expansion of the Appendix B key.
        let rk = expand_key(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        assert_eq!(&rk[16..20], &[0xa0, 0xfa, 0xfe, 0x17], "w[4]");
        assert_eq!(&rk[172..176], &[0xb6, 0x63, 0x0c, 0xa6], "w[43]");
    }

    #[test]
    fn xtime_known_values() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x80), 0x1b);
        assert_eq!(xtime(0x01), 0x02);
    }

    #[test]
    fn round1_subbytes_matches_manual_computation() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = hex("3243f6a8885a308d313198a2e0370734");
        let state = round1_subbytes(&key, &pt);
        for i in 0..16 {
            assert_eq!(state[i], SBOX[(pt[i] ^ key[i]) as usize]);
        }
    }

    #[test]
    fn encrypt_with_precomputed_keys_matches() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let pt = hex("00112233445566778899aabbccddeeff");
        let rk = expand_key(&key);
        assert_eq!(encrypt_with_round_keys(&rk, &pt), encrypt_block(&key, &pt));
    }

    #[test]
    fn shift_rows_geometry() {
        let mut state = [0u8; 16];
        for (i, s) in state.iter_mut().enumerate() {
            *s = i as u8;
        }
        shift_rows(&mut state);
        // Row 0 unchanged, row 1 rotated by 1 column.
        assert_eq!(state[0], 0);
        assert_eq!(state[1], 5);
        assert_eq!(state[2], 10);
        assert_eq!(state[3], 15);
        assert_eq!(state[13], 1);
    }
}
