//! The Figure 4 scenario in miniature: attack AES running as a userspace
//! process on a loaded Linux system — Apache at 1000 requests/s on the
//! other core, scheduler preemption, trigger jitter — using the
//! microarchitecture-aware consecutive-stores model.
//!
//! Run with: `cargo run --release --example os_noise_attack`

use superscalar_sca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = *b"\xa0\xa1\xa2\xa3\xa4\xa5\xa6\xa7\xa8\xa9\xaa\xab\xac\xad\xae\xaf";
    let sim = AesSim::new(UarchConfig::cortex_a7(), &key)?;

    let sampling = SamplingConfig::picoscope_500msps_120mhz();
    let environment = LinuxEnvironment::loaded_apache(&sampling)?;
    println!("environment: Apache-like workload on core 2, preemptive scheduler, trigger jitter");

    let acquisition = AcquisitionConfig {
        // The paper needs 100k traces in this environment; the simulated
        // rail is kinder, but the loaded-system campaign still wants a
        // few thousand.
        traces: 3000,
        executions_per_trace: 16, // the paper's averaging factor
        sampling,
        noise: GaussianNoise::bare_metal(),
        seed: 7,
        threads: 8,
    };
    let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), acquisition);
    let traces = synth.acquire_with(
        sim.cpu(),
        sim.entry(),
        |rng, _| {
            use rand::Rng;
            let mut pt = vec![0u8; 16];
            rng.fill(&mut pt[..]);
            pt
        },
        AesSim::stage_plaintext,
        |rng, samples| environment.apply(rng, samples),
    )?;
    // Focus on the SubBytes region (the byte-1 store lands ~sample 200);
    // a narrow window keeps the wrong-guess noise floor low, exactly as
    // the paper's 0.7 us Figure 4 span does.
    let traces = traces.window(100, 600);
    println!(
        "acquired {} traces (each an average of 16 executions)\n",
        traces.len()
    );

    // Chained attack: byte 0 is assumed already recovered (e.g. from a
    // quieter phase); byte 1 falls to the HD-between-stores model.
    let model = SubBytesStoreHd {
        byte: 1,
        prev_key: key[0],
    };
    let result = cpa_attack(&traces, &model, &CpaConfig::key_byte());
    let guess = result.best_guess() as u8;
    let (_, corr) = result.peak(usize::from(guess));
    let confidence = result.success_confidence(usize::from(key[1]));

    println!("recovered byte 1: 0x{guess:02x} (true 0x{:02x})", key[1]);
    println!(
        "peak correlation {corr:+.3}; rank of true key: {}",
        result.rank_of(usize::from(key[1]))
    );
    println!("distinguishing confidence {:.1}%", confidence * 100.0);
    println!(
        "\nthe microarchitecture-aware model survives an environment where both cores are busy \
         and the victim is an ordinary, unpinned process"
    );
    Ok(())
}
