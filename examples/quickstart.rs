//! Quickstart: assemble a kernel, run it on the simulated Cortex-A7,
//! watch dual-issue happen, and capture a power trace.
//!
//! Run with: `cargo run --release --example quickstart`

use superscalar_sca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a tiny benchmark in the A32-like assembly dialect. The
    //    `trig` pseudo-instruction toggles the simulated GPIO pin the
    //    measurement rig uses as its trigger, exactly as the paper does.
    let program = assemble(
        "
        start:  trig #1
                nop
                nop
                mov  r0, r1        ; these two movs are hazard-free:
                mov  r2, r3        ;   the A7 dual-issues them (CPI 0.5)
                add  r4, r1, r3    ; reg-reg add + imm add also pair
                add  r5, r1, #7
                mul  r6, r1, r3    ; the multiplier never pairs with ALU ops
                nop
                nop
                trig #0
                halt
    ",
    )?;

    // 2. Run it on the modeled core with ideal (warm) memory.
    let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
    cpu.set_reg(Reg::R1, 0xdead_beef);
    cpu.set_reg(Reg::R3, 0x0123_4567);
    cpu.load(&program)?;

    // 3. Observe the run twice: once for raw node activity, once for a
    //    synthesized power trace.
    let mut recorder = RecordingObserver::new();
    let stats = cpu.run(&mut recorder)?;
    println!(
        "executed {} instructions in {} cycles (CPI {:.2})",
        stats.instructions,
        stats.cycles,
        stats.cpi()
    );
    println!("dual-issue cycles: {}", stats.dual_issue_cycles);
    println!(
        "operand-bus events observed: {}",
        recorder.events_on(Node::OperandBus(0)).len()
    );

    cpu.restart(program.entry());
    let mut power = PowerRecorder::new(LeakageWeights::cortex_a7());
    cpu.run(&mut power)?;
    let window = power.windowed_power();
    println!(
        "\npower inside the trigger window ({} cycles): total {:.1}, peak {:.1}",
        window.len(),
        window.iter().sum::<f64>(),
        window.iter().copied().fold(0.0, f64::max)
    );

    // 4. The same infrastructure scales to full campaigns — see the
    //    attack_aes example and the sca-bench binaries.
    Ok(())
}
