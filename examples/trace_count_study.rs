//! How many traces does the attack need? The measurement-to-disclosure
//! curve for both of the paper's models, computed in one streaming pass.
//!
//! Run with: `cargo run --release --example trace_count_study`

use superscalar_sca::analysis::{rank_evolution, traces_to_rank0};
use superscalar_sca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";
    let sim = AesSim::new(UarchConfig::cortex_a7(), &key)?;

    let acquisition = AcquisitionConfig {
        traces: 2400,
        executions_per_trace: 2,
        sampling: SamplingConfig::picoscope_500msps_120mhz(),
        noise: GaussianNoise {
            sd: 10.0,
            baseline: 40.0,
        },
        seed: 21,
        threads: 8,
    };
    let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), acquisition);
    let traces = synth
        .acquire(
            sim.cpu(),
            sim.entry(),
            |rng, _| {
                use rand::Rng;
                let mut pt = vec![0u8; 16];
                rng.fill(&mut pt[..]);
                pt
            },
            AesSim::stage_plaintext,
        )?
        .truncated(1600);

    let checkpoints = [50, 100, 200, 400, 800, 1600, 2400];
    for (name, curve) in [
        (
            "HW(SubBytes out)        [Figure 3 model]",
            rank_evolution(&traces, &SubBytesHw { byte: 0 }, key[0], &checkpoints),
        ),
        (
            "HD(consecutive stores)  [Figure 4 model]",
            rank_evolution(
                &traces,
                &SubBytesStoreHd {
                    byte: 1,
                    prev_key: key[0],
                },
                key[1],
                &checkpoints,
            ),
        ),
    ] {
        println!("model: {name}");
        println!(
            "{:>8} {:>6} {:>14} {:>14}",
            "traces", "rank", "correct peak", "best wrong"
        );
        for point in &curve {
            println!(
                "{:>8} {:>6} {:>14.4} {:>14.4}",
                point.traces, point.rank, point.correct_peak, point.best_wrong_peak
            );
        }
        match traces_to_rank0(&curve) {
            Some(n) => println!("-> stable rank 0 from {n} traces\n"),
            None => println!("-> rank 0 not reached within this budget\n"),
        }
    }
    Ok(())
}
