//! End-to-end CPA attack against the AES-128 implementation running on
//! the simulated superscalar CPU (the paper's Section 5 validation).
//!
//! Recovers two key bytes: the first with the microarchitecture-unaware
//! Hamming-weight model (Figure 3 style), the second with the
//! microarchitecture-aware consecutive-stores model (Figure 4 style),
//! chained off the first.
//!
//! Run with: `cargo run --release --example attack_aes`

use superscalar_sca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = *b"\x13\x37\xc0\xde\xca\xfe\xba\xbe\x00\x11\x22\x33\x44\x55\x66\x77";
    println!("victim key (pretend we don't know it): {key:02x?}\n");

    // Build the victim: AES-128 on the simulated Cortex-A7, caches warm.
    let sim = AesSim::new(UarchConfig::cortex_a7(), &key)?;

    // Acquire 800 averaged traces with random plaintexts — the attacker
    // controls/observes plaintexts and the power probe only.
    let acquisition = AcquisitionConfig {
        traces: 800,
        executions_per_trace: 4,
        sampling: SamplingConfig::picoscope_500msps_120mhz(),
        noise: GaussianNoise {
            sd: 6.0,
            baseline: 40.0,
        },
        seed: 1,
        threads: 8,
    };
    let synth = TraceSynthesizer::new(LeakageWeights::cortex_a7(), acquisition);
    let traces = synth.acquire(
        sim.cpu(),
        sim.entry(),
        |rng, _| {
            use rand::Rng;
            let mut pt = vec![0u8; 16];
            rng.fill(&mut pt[..]);
            pt
        },
        AesSim::stage_plaintext,
    )?;
    // Focus on round 1 (the first ~1500 samples cover ARK+SB).
    let traces = traces.truncated(1500);
    println!(
        "acquired {} traces x {} samples\n",
        traces.len(),
        traces.samples_per_trace()
    );

    // Step 1: recover key byte 0 with HW(SubBytes out) — no
    // microarchitectural knowledge needed.
    let hw_model = SubBytesHw { byte: 0 };
    let result = cpa_attack(&traces, &hw_model, &CpaConfig::key_byte());
    let k0 = result.best_guess() as u8;
    let (sample, corr) = result.peak(usize::from(k0));
    println!(
        "byte 0 via HW(SubBytes): guess 0x{k0:02x} (true 0x{:02x}) — corr {corr:+.3} at sample {sample}",
        key[0]
    );
    assert_eq!(k0, key[0], "attack should recover byte 0");

    // Step 2: recover key byte 1 with the microarchitecture-aware model:
    // HD between the two consecutively stored SubBytes outputs — the
    // MDR/align-buffer leak the paper characterizes in Table 2.
    let hd_model = SubBytesStoreHd {
        byte: 1,
        prev_key: k0,
    };
    let result = cpa_attack(&traces, &hd_model, &CpaConfig::key_byte());
    let k1 = result.best_guess() as u8;
    let (sample, corr) = result.peak(usize::from(k1));
    println!(
        "byte 1 via HD(stores):   guess 0x{k1:02x} (true 0x{:02x}) — corr {corr:+.3} at sample {sample}",
        key[1]
    );
    assert_eq!(k1, key[1], "attack should recover byte 1");

    println!("\nboth key bytes recovered; chaining over the remaining bytes works the same way");
    Ok(())
}
