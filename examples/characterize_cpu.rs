//! Characterize an unknown CPU from the outside, as Section 3 of the
//! paper does: measure instruction-pair CPIs, derive the dual-issue
//! matrix (Table 1), and deduce the pipeline structure (Figure 2) —
//! then do it again for a scalar core and compare.
//!
//! Run with: `cargo run --release --example characterize_cpu`

use superscalar_sca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Characterizing the Cortex-A7-like core ==\n");

    // Spot-measure a few interesting pairs.
    let a7 = UarchConfig::cortex_a7();
    for (older, younger) in [
        (InsnClass::Mov, InsnClass::Mov),
        (InsnClass::Alu, InsnClass::Alu),
        (InsnClass::Alu, InsnClass::AluImm),
        (InsnClass::Mov, InsnClass::LdSt),
        (InsnClass::AluImm, InsnClass::LdSt),
        (InsnClass::Shift, InsnClass::Mov),
    ] {
        let bench = CpiBenchmark::hazard_free(older, younger);
        let m = measure_cpi(&bench, &a7)?;
        println!(
            "  {older:<10} + {younger:<10}  CPI {:.2}  -> {}",
            m.cpi,
            if m.dual_issued() {
                "dual-issued"
            } else {
                "single-issued"
            }
        );
    }

    // The full deduction chain.
    println!("\n{}", PipelineHypothesis::infer(&a7)?);

    println!("\n== Same measurement against a scalar core ==\n");
    let scalar = UarchConfig::scalar();
    let hypothesis = PipelineHypothesis::infer(&scalar)?;
    println!("{hypothesis}");
    println!("\nThe method distinguishes the two microarchitectures from timing alone.");
    Ok(())
}
