//! Audit a masked implementation for microarchitectural leakage — the
//! developer-tool use case the paper motivates (Sections 2 and 4.2).
//!
//! A first-order Boolean masking splits a secret `s` into shares
//! `s0 = s ^ m` and `s1 = m`. ISA-level reasoning says the two shares are
//! never combined; the pipeline disagrees: if two instructions reading
//! the shares issue back-to-back, the shares meet on the shared operand
//! bus and their Hamming distance — which equals `HW(s)`! — leaks.
//!
//! The audit detects this, and shows two of the paper's countermeasure
//! ideas working: scheduling distance between the shares, and
//! dual-issuing the two share computations so they ride different buses.
//!
//! Run with: `cargo run --release --example masking_audit`

use superscalar_sca::analysis::input_word;
use superscalar_sca::core::AuditReport;
use superscalar_sca::prelude::*;

fn share_models() -> [SecretModel; 1] {
    [SecretModel::new(
        "HD(share0, share1) = HW(secret)",
        |input: &[u8]| f64::from((input_word(input, 0) ^ input_word(input, 1)).count_ones()),
    )]
}

fn stage(cpu: &mut Cpu, input: &[u8]) {
    cpu.set_reg(Reg::R0, input_word(input, 0)); // share 0 = s ^ m
    cpu.set_reg(Reg::R1, input_word(input, 1)); // share 1 = m
    cpu.set_reg(Reg::R4, 0x0f0f_0f0f); // public round constant
    cpu.set_reg(Reg::R5, 0x3c3c_3c3c); // another public constant
    cpu.set_reg(Reg::R7, 0x5555_aaaa); // unrelated public value
}

fn operand_path_leaks(report: &AuditReport) -> usize {
    report
        .findings
        .iter()
        .filter(|f| matches!(f.node, Node::OperandBus(_) | Node::IsExOp { .. }))
        .count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let uarch = UarchConfig::cortex_a7().with_ideal_memory();
    let config = AuditConfig {
        executions: 500,
        ..AuditConfig::default()
    };

    // Vulnerable: both share-processing instructions place their share
    // in the same source-operand position. Two reg-reg ALU ops never
    // dual-issue on the A7 (Table 1), so they execute back-to-back on
    // the same pipe and the shares meet on operand bus 0: the bus
    // transition is HD(s0, s1) = HW(secret).
    let vulnerable = assemble(
        "
        nop
        eor r2, r0, r4     ; share 0 in position 0
        eor r3, r1, r5     ; share 1 in position 0 -> same bus!
        nop
        halt
    ",
    )?;
    let report = audit_program(&uarch, &vulnerable, 8, stage, &share_models(), &config)?;
    println!("== vulnerable schedule (shares in the same operand position) ==");
    println!("{}", report.render());
    assert!(
        operand_path_leaks(&report) > 0,
        "the recombination must be detected"
    );

    // Hardening 1: unrelated public-value work separates the two shares
    // in time, scrubbing the shared buses between them — the
    // instruction-scheduling countermeasure of Section 4.2.
    let spaced = assemble(
        "
        nop
        eor r2, r0, r4     ; share 0
        mov r6, r7         ; public spacer rewrites bus 0
        mov r6, r7
        eor r3, r1, r5     ; share 1 — bus no longer holds share 0
        nop
        halt
    ",
    )?;
    let report = audit_program(&uarch, &spaced, 8, stage, &share_models(), &config)?;
    println!("== hardened schedule 1: spacer instructions ==");
    println!("{}", report.render());
    assert_eq!(
        operand_path_leaks(&report),
        0,
        "scheduling distance removes the recombination"
    );

    // Hardening 2: swap the (commutative) operands of the second eor so
    // the shares sit in different positions — the flip side of the
    // paper's operand-swap warning: a swap can create *or* remove
    // leakage, and nothing at the ISA level tells you which.
    let swapped = assemble(
        "
        nop
        eor r2, r0, r4     ; share 0 in position 0
        eor r3, r5, r1     ; share 1 moved to position 1
        nop
        halt
    ",
    )?;
    let report = audit_program(&uarch, &swapped, 8, stage, &share_models(), &config)?;
    println!("== hardened schedule 2: operand swap ==");
    println!("{}", report.render());
    assert_eq!(
        operand_path_leaks(&report),
        0,
        "different positions, different buses"
    );

    println!(
        "audit demonstrates: semantics-preserving reordering or operand swaps change \
         side-channel security, invisibly to ISA-level reasoning"
    );
    Ok(())
}
