//! Audit a masked implementation for microarchitectural leakage — the
//! developer-tool use case the paper motivates (Sections 2 and 4.2).
//!
//! A first-order Boolean masking splits a secret `s` into shares
//! `s0 = s ^ m` and `s1 = m`. ISA-level reasoning says the two shares are
//! never combined; the pipeline disagrees: if two instructions reading
//! the shares issue back-to-back, the shares meet on the shared operand
//! bus and their Hamming distance — which equals `HW(s)`! — leaks.
//!
//! The scenarios live in `sca_core::masking_scenarios`, shared with the
//! integration tests (`tests/masking_audit.rs`) that enforce every
//! verdict printed here: the vulnerable schedule, the paper's two
//! hand-written countermeasures (scheduling distance and operand swap),
//! and the same two derived automatically by the `sca-sched` rewriters.
//!
//! Run with: `cargo run --release --example masking_audit`

use superscalar_sca::core::{audit_scenario, masking_scenarios, operand_path_leaks, AuditConfig};
use superscalar_sca::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let uarch = UarchConfig::cortex_a7().with_ideal_memory();
    let config = AuditConfig {
        executions: 500,
        ..AuditConfig::default()
    };

    for scenario in masking_scenarios() {
        let report = audit_scenario(&scenario, &uarch, &config)?;
        println!("== {}: {} ==", scenario.name, scenario.description);
        println!("{}", report.render());
        let leaks = operand_path_leaks(&report);
        if scenario.expect_operand_path_leak {
            assert!(leaks > 0, "the recombination must be detected");
        } else {
            assert_eq!(
                leaks, 0,
                "schedule '{}' must not recombine the shares",
                scenario.name
            );
        }
    }

    println!(
        "audit demonstrates: semantics-preserving reordering or operand swaps change \
         side-channel security, invisibly to ISA-level reasoning — and the sca-sched \
         rewriters apply the safe direction automatically"
    );
    Ok(())
}
