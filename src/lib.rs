//! # superscalar-sca
//!
//! A full reproduction of **"Side-channel security of superscalar CPUs:
//! Evaluating the Impact of Micro-architectural Features"** (Barenghi &
//! Pelosi, DAC 2018) as a Rust library: a cycle-level Cortex-A7-like
//! superscalar simulator with first-class leakage tracking, the paper's
//! CPI-based microarchitecture-inference method, its per-component
//! leakage characterization, and the CPA attacks that validate the model
//! against an AES-128 implementation — on bare metal and under a
//! simulated loaded Linux.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `sca-isa` | A32-inspired ISA, assembler, program images |
//! | [`uarch`] | `sca-uarch` | the dual-issue pipeline simulator and its leakage nodes |
//! | [`power`] | `sca-power` | leakage weights, noise, trace synthesis |
//! | [`analysis`] | `sca-analysis` | Pearson CPA, significance statistics, t-test, SNR |
//! | [`campaign`] | `sca-campaign` | sharded streaming campaign engine and sinks |
//! | [`aes`] | `sca-aes` | golden AES-128 + the assembly implementations under attack (unprotected and first-order masked) |
//! | [`target`] | `sca-target` | the cipher portfolio: `CipherTarget` trait, SPECK64/128, PRESENT-80, target-generic campaigns |
//! | [`server`] | `sca-server` | multi-tenant campaign service: fair-share slice scheduling, store-backed dedup, streamed verdicts |
//! | [`osnoise`] | `sca-osnoise` | scheduler/workload/jitter environment models |
//! | [`sched`] | `sca-sched` | countermeasure scheduling: share-distance scrubs, lane pinning |
//! | [`lint`] | `sca-lint` | static secret-taint leakage linter, cross-validated against the dynamic characterization |
//! | [`core`] | `sca-core` | CPI characterization, Table 2 benchmarks, leakage audit |
//! | [`telemetry`] | `sca-telemetry` | always-on work counters, span phase timing, metric exporters |
//!
//! ## Quickstart
//!
//! ```
//! use superscalar_sca::prelude::*;
//!
//! // Assemble a kernel, run it on the simulated Cortex-A7, inspect CPI.
//! let program = assemble("
//!     trig #1
//!     mov  r0, r1
//!     mov  r2, r3
//!     trig #0
//!     halt
//! ")?;
//! let mut cpu = Cpu::new(UarchConfig::cortex_a7().with_ideal_memory());
//! cpu.load(&program)?;
//! let stats = cpu.run(&mut NullObserver)?;
//! assert!(stats.dual_issue_cycles >= 1); // the two movs paired
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The paper's tables and figures regenerate through the `sca-bench`
//! binaries (`cargo run --release -p sca-bench --bin table1`, …); see
//! `EXPERIMENTS.md` at the repository root for the index and the
//! paper-versus-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Instruction-set substrate (re-export of `sca-isa`).
pub mod isa {
    pub use sca_isa::*;
}

/// Cycle-level superscalar CPU simulator (re-export of `sca-uarch`).
pub mod uarch {
    pub use sca_uarch::*;
}

/// Power modeling and trace synthesis (re-export of `sca-power`).
pub mod power {
    pub use sca_power::*;
}

/// Side-channel analysis statistics (re-export of `sca-analysis`).
pub mod analysis {
    pub use sca_analysis::*;
}

/// Sharded streaming campaign engine (re-export of `sca-campaign`).
pub mod campaign {
    pub use sca_campaign::*;
}

/// AES-128 target (re-export of `sca-aes`).
pub mod aes {
    pub use sca_aes::*;
}

/// Countermeasure scheduling: share-distance scrub insertion and
/// lane pinning (re-export of `sca-sched`).
pub mod sched {
    pub use sca_sched::*;
}

/// Static secret-taint leakage linter: rule-based predictions of the
/// paper's pipeline leakage nodes from the program text alone,
/// cross-validated against the dynamic characterization (re-export of
/// `sca-lint`).
pub mod lint {
    pub use sca_lint::*;
}

/// The cipher-target portfolio: the `CipherTarget` trait, the
/// SPECK64/128 and PRESENT-80 implementations, and the target-generic
/// campaign, characterization and window layers (re-export of
/// `sca-target`).
pub mod target {
    pub use sca_target::*;
}

/// Persistent trace corpus: checksummed pages, the pinning buffer
/// pool, and the write-ahead checkpoint log behind crash-safe
/// resumable campaigns (re-export of `sca-store`).
pub mod store {
    pub use sca_store::*;
}

/// Multi-tenant campaign service: fair-share scheduling over
/// checkpoint-sized job slices, fingerprint-keyed dedup against the
/// trace store, and streamed incremental verdicts (re-export of
/// `sca-server`).
pub mod server {
    pub use sca_server::*;
}

/// Operating-system noise environments (re-export of `sca-osnoise`).
pub mod osnoise {
    pub use sca_osnoise::*;
}

/// Dependency-free metrics registry and span timing used across the
/// stack: counters are always on (the exact-delta determinism tests
/// are written against them), span timing is gated by the
/// `SCA_TELEMETRY` environment variable, and nothing here ever writes
/// to stdout or touches an RNG (re-export of `sca-telemetry`).
pub mod telemetry {
    pub use sca_telemetry::*;
}

/// The paper's methodology: characterization and audit (re-export of
/// `sca-core`).
pub mod core {
    pub use sca_core::*;
}

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use sca_aes::{encrypt_block, AesSim, MaskedAesSim, SubBytesHw, SubBytesStoreHd};
    pub use sca_analysis::{
        cpa_attack, model_correlation, pearson, significance_threshold, CpaAccumulator, CpaConfig,
        FnSelection, InputModel, TraceSet,
    };
    pub use sca_campaign::{Campaign, CampaignConfig, CampaignSink, CorrSink, CpaSink, ShardPlan};
    pub use sca_core::{
        audit_program, characterize, measure_cpi, table2_benchmarks, AuditConfig,
        CharacterizationConfig, CpiBenchmark, DualIssueMap, PipelineHypothesis, SecretModel,
    };
    pub use sca_isa::{assemble, Insn, InsnClass, Program, ProgramBuilder, Reg};
    pub use sca_osnoise::LinuxEnvironment;
    pub use sca_power::{
        AcquisitionConfig, GaussianNoise, LeakageWeights, PowerRecorder, SamplingConfig,
        TraceSynthesizer,
    };
    pub use sca_sched::{harden_program, pin_lanes, HardenConfig, SharePolicy};
    pub use sca_target::{
        portfolio, CipherTarget, PresentSim, SpeckSim, TargetCampaign, TargetCampaignConfig,
    };
    pub use sca_uarch::{
        Cpu, DualIssuePolicy, Node, NodeKind, NullObserver, PipelineObserver, RecordingObserver,
        UarchConfig,
    };
}
